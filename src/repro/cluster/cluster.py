"""The replicated Netmark cluster: membership, failover, zero-loss ingest.

N logical Netmark nodes in one process, joined by the simulated network
(:class:`~repro.resilience.netsim.Network`) and replicating through WAL
shipping (:mod:`repro.cluster.ship`).  One node is the **write
coordinator** — the only one holding a live, WAL-attached
:class:`~repro.store.xmlstore.XmlStore`; every other live node is a
**follower** applying the coordinator's shipped records.

The commit rule is what buys the headline guarantee (an acknowledged
ingest survives any single failure, and any failure pattern that leaves
a majority alive):

1. quorum is checked *before* the write — a coordinator that cannot
   reach a majority refuses rather than accept a write it may not be
   able to keep;
2. the write commits locally (the ordinary durable store path);
3. the new records ship synchronously to every in-sync follower, each
   of which makes them durable *before* acking;
4. the client is acknowledged only if the coordinator plus the acked
   followers still form a strict majority — otherwise the ingest raises
   and is *not* recorded on the committed ledger.

Failover then cannot lose an acknowledged ingest: elections
(:mod:`repro.cluster.election`) only admit in-sync candidates and prefer
the highest acked LSN, and every acknowledged write is, by rule 3, on
every in-sync replica.  A promoted coordinator finishes the story by
recovering its own log and journaling explicit ROLLBACK records for any
transaction the dead coordinator left unfinished — shipped onward, those
converge every follower that had applied the orphan's mutations.

This class is the OS stand-in for its nodes: it is the one place allowed
to catch :class:`~repro.errors.CrashError` (an injected SIGKILL on one
node's device), which it translates into that node's death — the cluster
survives; the node does not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.errors import (
    ClusterError,
    CorruptLogError,
    CrashError,
    NoQuorumError,
    ReplicaQuarantinedError,
    ReproError,
    SourceUnavailableError,
)
from repro.federation.router import ReadBalancer
from repro.federation.sources import NetmarkSource
from repro.ordbms.recovery import recover
from repro.ordbms.wal import LogDevice, MemoryLogDevice
from repro.query.results import SectionMatch
from repro.resilience.clock import LogicalClock
from repro.resilience.heartbeat import HeartbeatMonitor
from repro.resilience.netsim import Network
from repro.sgml.config import DEFAULT_CONFIG, NodeTypeConfig
from repro.store.xmlstore import XmlStore

from repro.cluster.election import ElectionRecord, elect
from repro.cluster.replica import FollowerReplica
from repro.cluster.ship import LogShipper

COORDINATOR = "coordinator"
FOLLOWER = "follower"


@dataclass(frozen=True)
class IngestReceipt:
    """Proof of one acknowledged ingest — the unit of the zero-loss
    guarantee.  Everything on the ledger must survive any failover."""

    file_name: str
    doc_id: int
    lsn: int
    coordinator: str
    #: Nodes that held the write durably when the client was acked.
    witnesses: tuple[str, ...]


class ClusterNode:
    """One node's slot in the membership: its device plus live state.

    The device is the node's "disk" and survives kills; ``store`` (the
    coordinator's writable state) and ``replica`` (a follower's applied
    state) are the "process memory" and are dropped on death.
    """

    def __init__(self, name: str, device: LogDevice) -> None:
        self.name = name
        self.device = device
        self.role = FOLLOWER
        self.store: XmlStore | None = None
        self.replica: FollowerReplica | None = None
        #: On the replication fast path (acks every write synchronously)?
        self.in_sync = False
        #: Why this node was isolated, or None (healthy).
        self.quarantine: str | None = None
        #: Next catch-up must be a full bundle resync (set when the node
        #: died holding the coordinator role — its log may contain a
        #: durable-but-unshipped suffix no one else has).
        self.needs_resync = False
        #: Role held at the moment of death (kill bookkeeping).
        self.killed_as: str | None = None
        self.last_error: str | None = None

    @property
    def acked_lsn(self) -> int:
        """Highest durably-held LSN (0 when the node has no live state)."""
        if self.store is not None and self.store.database.wal is not None:
            return self.store.database.wal.last_lsn
        if self.replica is not None:
            return self.replica.acked_lsn
        return 0


@dataclass
class ClusterStats:
    """Counters the failover harness asserts on."""

    ingests_acked: int = 0
    ingests_refused: int = 0
    failovers: int = 0
    demotions: int = 0
    quarantines: int = 0
    catchups: int = 0
    failed_elections: int = 0
    node_deaths: int = 0


class NetmarkCluster:
    """Membership, replication and failover over N logical nodes."""

    def __init__(
        self,
        names: list[str],
        heartbeat_timeout: int = 3,
        config: NodeTypeConfig = DEFAULT_CONFIG,
        clock: LogicalClock | None = None,
        devices: dict[str, LogDevice] | None = None,
    ) -> None:
        if len(names) < 2:
            raise ClusterError(
                f"a cluster needs at least 2 nodes, got {names}"
            )
        self.clock = clock if clock is not None else LogicalClock()
        self.config = config
        self.heartbeat_timeout = heartbeat_timeout
        self.network = Network(self.clock, list(names))
        self.monitors = {
            name: HeartbeatMonitor(
                self.clock, heartbeat_timeout, observer=name
            )
            for name in names
        }
        self.balancer = ReadBalancer()
        self.elections: list[ElectionRecord] = []
        self.ledger: list[IngestReceipt] = []
        self.stats = ClusterStats()
        provided = devices or {}
        self.nodes: dict[str, ClusterNode] = {
            name: ClusterNode(name, provided.get(name, MemoryLogDevice()))
            for name in names
        }
        # Bootstrap: the first node seeds the store (schema + baseline
        # checkpoint), everyone else joins from its bundle.
        first = names[0]
        head = self.nodes[first]
        head.store = XmlStore.open(head.device, config)
        head.role = COORDINATOR
        head.in_sync = True
        self.coordinator: str | None = first
        bundle = self._shipper().bundle()
        for name in names[1:]:
            node = self.nodes[name]
            node.replica = FollowerReplica.bootstrap(
                name, node.device, bundle, config
            )
            node.in_sync = True
        self._note_lag()

    # -- membership views ----------------------------------------------------

    @property
    def majority(self) -> int:
        return len(self.network.nodes) // 2 + 1

    def describe(self) -> list[dict[str, str]]:
        """Membership table, one row per node (HTTP's /cluster view)."""
        rows = []
        for name in self.network.nodes:
            node = self.nodes[name]
            rows.append(
                {
                    "name": name,
                    "role": self.role_of(name),
                    "alive": "true" if self.network.alive(name) else "false",
                    "in-sync": "true" if node.in_sync else "false",
                    "acked-lsn": str(node.acked_lsn),
                    "quarantined": (
                        "true" if node.quarantine is not None else "false"
                    ),
                }
            )
        return rows

    def view(self, name: str) -> "NodeView":
        """One node's duck-typed membership view (``api.cluster``)."""
        if name not in self.nodes:
            raise ClusterError(f"unknown node {name!r}")
        return NodeView(self, name)

    def role_of(self, name: str) -> str:
        """A node's effective role right now (see :data:`COORDINATOR`)."""
        node = self.nodes[name]
        if node.quarantine is not None:
            return "quarantined"
        if not self.network.alive(name):
            return "offline"
        return COORDINATOR if name == self.coordinator else FOLLOWER

    def replication_lag(self) -> dict[str, int]:
        """Per-follower records-behind-coordinator (live followers)."""
        if self.coordinator is None:
            return {}
        head = self.nodes[self.coordinator].acked_lsn
        return {
            name: head - node.acked_lsn
            for name, node in self.nodes.items()
            if name != self.coordinator
            and self.network.alive(name)
            and node.quarantine is None
            and node.replica is not None
        }

    def dumps(self) -> dict[str, str]:
        """Snapshot text per live, un-quarantined node.

        Converged replicas dump byte-identically (snapshots embed no
        node name) — the harness's convergence assertion.
        """
        out: dict[str, str] = {}
        for name, node in self.nodes.items():
            if not self.network.alive(name) or node.quarantine is not None:
                continue
            if node.store is not None:
                out[name] = node.store.dump()
            elif node.replica is not None:
                out[name] = node.replica.dump()
        return out

    # -- time ----------------------------------------------------------------

    def tick(self, ticks: int = 1) -> None:
        """Advance logical time: heartbeats flow, failures get detected.

        Each tick every live node beats to every reachable peer; then the
        coordinator re-checks its quorum (self-demoting when partitioned
        into a minority) and followers that have stopped hearing from a
        coordinator start an election.
        """
        for _ in range(ticks):
            self.clock.advance(1)
            for src in self.network.nodes:
                if (
                    not self.network.alive(src)
                    or self.nodes[src].quarantine is not None
                ):
                    continue
                for dst in self.network.peers_of(src):
                    if self.nodes[dst].quarantine is None:
                        self.monitors[dst].beat(src)
            self._supervise()
        self._note_lag()

    def _supervise(self) -> None:
        name = self.coordinator
        if name is not None:
            if not self.network.alive(name):
                self.coordinator = None
            elif self._reach_of(name) < self.majority:
                # A coordinator in a minority partition steps down: it
                # could not commit anything anyway, and staying "leader"
                # there is how split-brain starts.
                self._demote(name)
        if self.coordinator is None:
            self._try_elect()
            return
        if self.clock.now() <= self.heartbeat_timeout:
            return  # grace period: first beats are still propagating
        for follower in self._eligible():
            if follower == self.coordinator:
                continue
            if not self.monitors[follower].alive(self.coordinator):
                if self._try_elect(initiator=follower) is not None:
                    break

    def _reach_of(self, name: str) -> int:
        """Members ``name`` can currently reach, itself included."""
        peers = [
            peer
            for peer in self.network.peers_of(name)
            if self.nodes[peer].quarantine is None
        ]
        return len(peers) + 1

    # -- elections ----------------------------------------------------------

    def _eligible(self) -> list[str]:
        """Nodes allowed to stand for (or trigger) election: live,
        in-sync, un-quarantined, with recovered local state."""
        return [
            name
            for name in self.network.nodes
            if self.network.alive(name)
            and self.nodes[name].quarantine is None
            and self.nodes[name].in_sync
            and (
                self.nodes[name].replica is not None
                or self.nodes[name].store is not None
            )
        ]

    def _try_elect(self, initiator: str | None = None) -> ElectionRecord | None:
        eligible = self._eligible()
        if not eligible:
            return None
        priorities = {
            name: (self.nodes[name].acked_lsn, name) for name in eligible
        }
        # With no explicit initiator, every eligible node tries in turn —
        # under a partition each side detects the vacancy independently,
        # and only an initiator on the majority side can succeed.
        initiators = [initiator] if initiator is not None else sorted(eligible)
        record: ElectionRecord | None = None
        for candidate in initiators:
            try:
                record = elect(self.network, candidate, priorities)
                break
            except NoQuorumError:
                self.stats.failed_elections += 1
        if record is None:
            return None
        self.elections.append(record)
        if record.winner != self.coordinator:
            self._promote(record.winner)
        return record

    def _promote(self, winner: str) -> None:
        """Turn an in-sync follower into the write coordinator.

        Full crash recovery on its own device attaches a resumed WAL and
        discards any transaction the dead coordinator left unfinished;
        explicit ROLLBACK records are then journaled for those losers so
        followers that already applied the orphan mutations converge
        through ordinary shipping instead of diverging silently.
        """
        node = self.nodes[winner]
        try:
            result = recover(node.device, name=winner)
        except CorruptLogError as error:
            self._quarantine(winner, str(error))
            self._try_elect()
            return
        database = result.database
        if result.losers_discarded and database.wal is not None:
            for txid in result.losers_discarded:
                database.wal.log_rollback(txid)
            database.wal.device.sync()
        node.store = XmlStore.adopt(database, self.config)
        node.replica = None
        node.role = COORDINATOR
        node.in_sync = True
        for other in self.nodes.values():
            if other is not node and other.role == COORDINATOR:
                other.role = FOLLOWER
        self.coordinator = winner
        self.stats.failovers += 1
        obs.inc("repro_cluster_failovers_total")

    def _demote(self, name: str) -> None:
        """Step a quorum-less coordinator down to follower.

        Lossless by construction: quorum is checked before every write,
        so a coordinator that just lost quorum has shipped everything it
        ever committed — its log is the shared history, and reopening it
        as a follower drops nothing.
        """
        node = self.nodes[name]
        node.store = None
        node.role = FOLLOWER
        self.coordinator = None
        self._reopen(name)
        self.stats.demotions += 1
        obs.inc("repro_cluster_demotions_total")

    # -- failure script hooks ------------------------------------------------

    def kill(self, name: str) -> None:
        """Kill one node (SIGKILL semantics: memory gone, device stays)."""
        self._node_died(name)

    def revive(self, name: str) -> None:
        """Restart a killed node as an out-of-sync follower.

        The node recovers what its device durably holds (torn tail
        trimmed, in-flight transactions left open for the stream to
        resolve) but stays off the replication fast path until
        :meth:`catch_up` brings it back in sync.  A node that died
        holding the coordinator role is flagged for a full resync: its
        log may contain a durable-but-unshipped suffix nobody else has,
        and that suffix was never acknowledged to any client.
        """
        node = self.nodes[name]
        self.network.revive(name)
        if node.killed_as == COORDINATOR:
            node.needs_resync = True
        node.killed_as = None
        node.role = FOLLOWER
        node.in_sync = False
        if not node.needs_resync:
            self._reopen(name)

    def partition(self, *groups: list[str]) -> None:
        self.network.partition(*groups)

    def heal(self) -> None:
        self.network.heal()

    def _node_died(self, name: str) -> None:
        node = self.nodes[name]
        node.killed_as = (
            COORDINATOR if name == self.coordinator else FOLLOWER
        )
        node.store = None
        node.replica = None
        node.in_sync = False
        if self.network.alive(name):
            self.network.kill(name)
        if name == self.coordinator:
            self.coordinator = None
        self.stats.node_deaths += 1
        obs.inc("repro_cluster_node_deaths_total")

    def _reopen(self, name: str) -> None:
        """Recover a node's follower state from its device, quarantining
        on mid-log corruption instead of letting it poison the cluster."""
        node = self.nodes[name]
        try:
            node.replica = FollowerReplica(name, node.device, self.config)
        except CorruptLogError as error:
            self._quarantine(name, str(error))

    def _quarantine(self, name: str, reason: str) -> None:
        node = self.nodes[name]
        node.quarantine = reason
        node.in_sync = False
        node.replica = None
        node.store = None
        if name == self.coordinator:
            self.coordinator = None
        self.stats.quarantines += 1
        obs.inc("repro_cluster_quarantines_total")

    # -- catch-up and rejoin -------------------------------------------------

    def catch_up(self, name: str) -> int:
        """Bring a lagging or rejoining follower back in sync.

        Tail-ships when the coordinator's live log still covers the gap;
        installs a full checkpoint bundle when it does not (the
        coordinator checkpointed past this follower) or when the node's
        own history cannot be trusted to be a prefix (it died as
        coordinator).  Re-shipped overlap is skipped idempotently.
        """
        if self.coordinator is None:
            raise ClusterError("no coordinator to catch up from")
        if name == self.coordinator:
            raise ClusterError(f"{name} is the coordinator")
        node = self.nodes[name]
        if node.quarantine is not None:
            raise ReplicaQuarantinedError(
                f"replica {name} is quarantined ({node.quarantine}); "
                f"rejoin() it for a full resync"
            )
        if not self.network.alive(name):
            raise ClusterError(f"cannot catch up dead node {name}")
        self.network.check(name, self.coordinator)
        shipper = self._shipper()
        if node.replica is None and not node.needs_resync:
            self._reopen(name)
            if node.quarantine is not None:
                raise ReplicaQuarantinedError(
                    f"replica {name} was quarantined while rejoining "
                    f"({node.quarantine})"
                )
        if node.needs_resync or not shipper.can_ship_from(
            node.replica.acked_lsn if node.replica else 0
        ):
            if node.replica is None:
                node.replica = FollowerReplica.bootstrap(
                    name, node.device, shipper.bundle(), self.config
                )
            else:
                node.replica.install_bundle(shipper.bundle())
            node.needs_resync = False
        else:
            node.replica.apply_batch(
                shipper.batch_after(node.replica.acked_lsn)
            )
        node.in_sync = True
        node.last_error = None
        self.stats.catchups += 1
        obs.inc("repro_cluster_catchups_total", replica=name)
        self._note_lag()
        return node.replica.acked_lsn

    def rejoin(self, name: str) -> int:
        """Clear a quarantine with a full resync from the coordinator.

        The quarantined log is *replaced*, never recovered — mid-log
        corruption means the local history cannot be trusted at all.
        """
        node = self.nodes[name]
        if node.quarantine is None:
            raise ClusterError(f"{name} is not quarantined")
        node.quarantine = None
        node.needs_resync = True
        node.replica = None
        return self.catch_up(name)

    # -- the write path ------------------------------------------------------

    def ingest(self, file_name: str, content: str) -> IngestReceipt:
        """Store one document cluster-wide; ack only when it cannot be
        lost.  See the module docstring for the four-step commit rule."""
        name = self.coordinator
        if name is None or not self.network.alive(name):
            self.stats.ingests_refused += 1
            raise NoQuorumError(
                "cluster has no live coordinator; retry after failover"
            )
        node = self.nodes[name]
        if node.store is None:
            self.stats.ingests_refused += 1
            raise NoQuorumError(
                f"coordinator {name} has no recovered store yet"
            )
        if self._reach_of(name) < self.majority:
            self.stats.ingests_refused += 1
            raise NoQuorumError(
                f"coordinator {name} reaches {self._reach_of(name)} of "
                f"{len(self.network.nodes)} members (majority is "
                f"{self.majority}); refusing the write up front"
            )
        try:
            result = node.store.store_text(content, file_name)
        except CrashError:
            # The OS boundary: the node died, the cluster did not.
            self._node_died(name)
            self.stats.ingests_refused += 1
            raise SourceUnavailableError(
                f"coordinator {name} died mid-ingest; the write was "
                f"never acknowledged"
            ) from None
        lsn = node.acked_lsn
        acks = self._replicate()
        witnesses = [name] + sorted(
            peer for peer, acked in acks.items() if acked >= lsn
        )
        if len(witnesses) < self.majority:
            self.stats.ingests_refused += 1
            raise NoQuorumError(
                f"write at LSN {lsn} is durable on only "
                f"{len(witnesses)} of {len(self.network.nodes)} nodes "
                f"(majority is {self.majority}); not acknowledged"
            )
        receipt = IngestReceipt(
            file_name=file_name,
            doc_id=result.doc_id,
            lsn=lsn,
            coordinator=name,
            witnesses=tuple(witnesses),
        )
        self.ledger.append(receipt)
        self.stats.ingests_acked += 1
        obs.inc("repro_cluster_ingests_total", outcome="acked")
        return receipt

    def _replicate(self) -> dict[str, int]:
        """Ship the coordinator's new records to every in-sync follower.

        Followers that fail drop off the fast path (they stop counting
        toward acks until :meth:`catch_up`); a follower whose device
        crash-faults dies like any other process.
        """
        assert self.coordinator is not None
        shipper = self._shipper()
        acks: dict[str, int] = {}
        for name in self.network.nodes:
            if name == self.coordinator:
                continue
            node = self.nodes[name]
            if (
                node.quarantine is not None
                or not node.in_sync
                or node.replica is None
                or not self.network.alive(name)
            ):
                continue
            try:
                self.network.check(self.coordinator, name)
                acks[name] = node.replica.apply_batch(
                    shipper.batch_after(node.replica.acked_lsn)
                )
            except CrashError:
                self._node_died(name)
            except ReproError as error:
                node.in_sync = False
                node.last_error = f"{type(error).__name__}: {error}"
                obs.inc(
                    "repro_cluster_replication_errors_total", replica=name
                )
        self._note_lag()
        return acks

    def checkpoint(self) -> int:
        """Checkpoint the coordinator's store (truncates its live log —
        followers lagging past this point will need a bundle resync)."""
        name = self.coordinator
        if name is None or self.nodes[name].store is None:
            raise ClusterError("no live coordinator to checkpoint")
        try:
            return self.nodes[name].store.checkpoint()
        except CrashError:
            self._node_died(name)
            raise SourceUnavailableError(
                f"coordinator {name} died mid-checkpoint"
            ) from None

    # -- the read path -------------------------------------------------------

    def readable_sources(self) -> list[NetmarkSource]:
        """One federation source per live, in-sync, un-quarantined node,
        in stable name order (the balancer's rotation domain)."""
        sources: list[NetmarkSource] = []
        for name in self.network.nodes:
            node = self.nodes[name]
            if not self.network.alive(name) or node.quarantine is not None:
                continue
            if node.store is not None:
                sources.append(NetmarkSource(name, node.store))
            elif node.replica is not None and node.in_sync:
                sources.append(NetmarkSource(name, node.replica.store))
        return sources

    def search(self, query: str) -> list[SectionMatch]:
        """Answer a read from one replica, rotating across the in-sync
        membership; fails over replica-by-replica before giving up."""
        matches, _served_by = self.balancer.execute(
            query, self.readable_sources()
        )
        return matches

    # -- internals -----------------------------------------------------------

    def _shipper(self) -> LogShipper:
        assert self.coordinator is not None
        return LogShipper(
            self.nodes[self.coordinator].device,
            component=self.coordinator,
        )

    def _note_lag(self) -> None:
        for name, lag in self.replication_lag().items():
            obs.set_gauge(
                "repro_cluster_replication_lag", lag, replica=name
            )


class NodeView:
    """One node's membership view, duck-typed for the HTTP layer.

    ``api.cluster`` wants three things and no imports: the node's
    current role, the coordinator's name (for redirects), and the
    membership table (for ``GET /cluster``).
    """

    def __init__(self, cluster: NetmarkCluster, name: str) -> None:
        self._cluster = cluster
        self.name = name

    @property
    def role(self) -> str:
        return self._cluster.role_of(self.name)

    @property
    def coordinator(self) -> str | None:
        return self._cluster.coordinator

    @property
    def is_coordinator(self) -> bool:
        return (
            self._cluster.coordinator == self.name
            and self._cluster.network.alive(self.name)
        )

    def describe(self) -> list[dict[str, str]]:
        return self._cluster.describe()
