"""Bully-style coordinator election over the simulated network.

The classic algorithm, specialised for replication safety: a node's
priority is ``(acked_lsn, name)`` rather than a static id, so the winner
is always the most caught-up reachable candidate — the property that
makes failover lossless (every client-acknowledged write was replicated
to all in-sync replicas, and the winner has the highest acked LSN among
them, so it holds every acknowledged write).

The election itself is the textbook message exchange, run to completion
synchronously on the logical clock: the initiator challenges every
higher-priority candidate it can reach; any challenger that answers
``ALIVE`` takes the election over; the node that hears no answer wins
and broadcasts ``COORDINATOR``.  Every message is recorded on the
:class:`ElectionRecord` so a failover trace replays bit-for-bit.

Split-brain is prevented by a quorum gate, not by the bully exchange:
the winner must reach a strict majority of the *total* membership
(dead, quarantined and partitioned-away nodes count against it), or the
election fails with :class:`~repro.errors.NoQuorumError` — a minority
partition can elect nobody, no matter who it contains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.errors import ClusterError, NoQuorumError
from repro.resilience.netsim import Network

#: A candidate's priority: acknowledged LSN first, name as tie-break.
Priority = tuple[int, str]


@dataclass(frozen=True)
class ElectionRecord:
    """One completed election: who won, and the full message trace."""

    tick: int
    initiator: str
    winner: str
    #: ``"src->dst KIND"`` lines, in send order.
    messages: tuple[str, ...]
    #: Nodes the winner could reach when it claimed the role (itself
    #: included) — the quorum that legitimised it.
    quorum: tuple[str, ...]


def elect(
    network: Network,
    initiator: str,
    priorities: dict[str, Priority],
) -> ElectionRecord:
    """Run one bully election; returns the record or raises.

    ``priorities`` maps every *eligible* candidate (live, in-sync, not
    quarantined — the caller curates the slate) to its priority.  The
    initiator must be eligible itself: a node that cannot become
    coordinator has no business starting elections.

    Raises :class:`~repro.errors.NoQuorumError` when the winner cannot
    reach a strict majority of the full membership.
    """
    if initiator not in priorities:
        raise ClusterError(
            f"election initiator {initiator!r} is not an eligible "
            f"candidate ({sorted(priorities)})"
        )
    messages: list[str] = []
    current = initiator
    # Challenge upward until a node hears no ALIVE from above.
    while True:
        higher = sorted(
            peer
            for peer in priorities
            if peer != current
            and priorities[peer] > priorities[current]
            and network.reachable(current, peer)
        )
        for peer in higher:
            messages.append(f"{current}->{peer} ELECTION")
            messages.append(f"{peer}->{current} ALIVE")
        if not higher:
            break
        current = max(higher, key=lambda peer: priorities[peer])
    winner = current
    reachable = sorted(network.peers_of(winner))
    quorum = tuple(sorted([winner, *reachable]))
    majority = len(network.nodes) // 2 + 1
    if len(quorum) < majority:
        obs.inc("repro_cluster_elections_total", outcome="no-quorum")
        raise NoQuorumError(
            f"candidate {winner} reaches only {len(quorum)} of "
            f"{len(network.nodes)} members (majority is {majority}); "
            f"refusing to elect a minority coordinator"
        )
    for peer in reachable:
        messages.append(f"{winner}->{peer} COORDINATOR")
    obs.inc("repro_cluster_elections_total", outcome="won")
    return ElectionRecord(
        tick=network.clock.now(),
        initiator=initiator,
        winner=winner,
        messages=tuple(messages),
        quorum=quorum,
    )
