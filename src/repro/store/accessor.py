"""Batched, memoized node access for the read path.

The paper's traversal story (§2.1.4) is ROWID hops — each parent /
sibling / child step is an O(1) physical fetch.  Correct, but the seed
implementation paid one *point* ``Table.fetch`` per hop and re-fetched
the same rows again and again while walking overlapping sections.  A
:class:`NodeAccessor` is the per-query fix:

* **batching** — rowid lists (index postings, child sets, subtree
  frontiers) are pulled through :meth:`~repro.ordbms.table.Table.fetch_many`
  in one call instead of N;
* **memoization** — node rows, child sets, governing contexts, section
  scopes and titles are computed once per accessor and reused across
  every operator of a query plan (and across the lazy
  :class:`~repro.query.results.SectionMatch` resolutions that follow);
* **invalidation** — every cache is guarded by the XML table's
  write-generation counter; any insert/update/delete/restore moves the
  counter and the next read through the accessor drops all cached state
  before answering.  A stale answer is therefore impossible: laziness
  never outlives a write.
* **snapshot pinning** — constructed with a
  :class:`~repro.ordbms.mvcc.Snapshot`, the accessor reads *through* the
  pin instead: every row resolves to its version as of the snapshot's
  commit LSN, index probes are patched with the rows that changed since
  (generation-aware probing), and the caches never invalidate — the
  pinned view cannot go stale because it never moves.  This is what lets
  a whole query (plan operators plus lazy match resolution) execute
  against one consistent generation while ingest runs concurrently.
* **shared lifts** — constructed with a
  :class:`~repro.store.liftcache.LiftCache` (cache-enabled query
  engines pass the store's), the five structural memos additionally
  read through the cross-query pool, so a lift one query computed is a
  hit for the next.  The pool is keyed by the *same* write-generation
  counter that guards the private memos (live mode) or by the pinned
  commit LSN (snapshot mode), so shared state can never outlive a write
  the private memos would have noticed — one source of truth, two cache
  tiers.

Accessors are cheap to construct; the query engine makes one per query,
and the legacy :mod:`repro.store.traversal` functions make an ephemeral
one per call so every caller shares a single traversal implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.errors import RowIdError
from repro.ordbms import Database, RowId, Snapshot
from repro.ordbms.table import ROWID_PSEUDO
from repro.ordbms.textindex import TextIndex
from repro.sgml.nodetypes import NodeType
from repro.store.liftcache import MISS as _SHARED_MISS
from repro.store.liftcache import LiftCache
from repro.store.schema import XML_TABLE

Row = dict[str, Any]

#: Cache-miss sentinel (``None`` is a legal memoized value).
_MISS: Any = object()


@dataclass
class AccessorStats:
    """Work counters for one accessor — the bench's hop/fetch evidence."""

    point_fetches: int = 0
    batch_fetches: int = 0
    rows_fetched: int = 0
    cache_hits: int = 0
    parent_hops: int = 0
    sibling_hops: int = 0
    child_lookups: int = 0
    invalidations: int = 0
    #: Cross-query :class:`~repro.store.liftcache.LiftCache` traffic
    #: (zero unless the accessor was built with a shared pool).
    shared_hits: int = 0
    shared_misses: int = 0

    def reset(self) -> None:
        for field_name in self.__dataclass_fields__:
            setattr(self, field_name, 0)


class NodeAccessor:
    """Memoizing, batch-fetching view over one store's XML table."""

    def __init__(
        self,
        database: Database,
        snapshot: Snapshot | None = None,
        lifts: LiftCache | None = None,
    ) -> None:
        self.database = database
        self.table = database.table(XML_TABLE)
        self.stats = AccessorStats()
        #: Pinned MVCC snapshot; None means "live" (generation-guarded).
        self.snapshot = snapshot
        #: Cross-query lift pool; None means "private memos only".
        self._lifts = lifts
        self._generation = (
            snapshot.lsn if snapshot is not None else self.table.generation
        )
        self._rows: dict[RowId, Row] = {}
        self._children: dict[int, tuple[RowId, ...]] = {}
        self._governing: dict[RowId, RowId | None] = {}
        self._ancestor: dict[RowId, RowId | None] = {}
        self._scopes: dict[RowId, tuple[RowId, ...]] = {}
        self._titles: dict[RowId, str] = {}
        self._texts: dict[RowId, str] = {}

    # -- generation guard ---------------------------------------------------

    def _sync(self) -> None:
        """Drop every cache if the table has been written to since."""
        if self.snapshot is not None:
            return  # the pinned view never moves, so caches never stale
        generation = self.table.generation
        if generation != self._generation:
            self._generation = generation
            self.stats.invalidations += 1
            self._rows.clear()
            self._children.clear()
            self._governing.clear()
            self._ancestor.clear()
            self._scopes.clear()
            self._titles.clear()
            self._texts.clear()
            if self._lifts is not None:
                # Same tripwire, same counter: if the store's write hooks
                # already advanced the shared pool this is a no-op; a
                # write that bypassed the facade clears it wholesale.
                self._lifts.observe(generation, self.database.mvcc.lsn)

    @property
    def generation(self) -> int:
        """The table write generation this accessor's caches reflect."""
        return self._generation

    # -- shared lift pool ---------------------------------------------------

    def _lift_token(self) -> tuple[str, int]:
        """The version this accessor's reads are valid at (see LiftCache)."""
        if self.snapshot is not None:
            return ("lsn", self.snapshot.lsn)
        return ("gen", self._generation)

    def _lift_get(self, row: Row, kind: str, rowid: RowId) -> Any:
        if self._lifts is None:
            return _SHARED_MISS
        value = self._lifts.get(
            row["DOC_ID"], kind, rowid, self._lift_token()
        )
        if value is _SHARED_MISS:
            self.stats.shared_misses += 1
        else:
            self.stats.shared_hits += 1
        return value

    def _lift_put(self, row: Row, kind: str, rowid: RowId, value: Any) -> None:
        if self._lifts is not None:
            self._lifts.put(
                row["DOC_ID"], kind, rowid, value, self._lift_token()
            )

    # -- row access ---------------------------------------------------------

    def node(self, rowid: RowId) -> Row:
        """One node row by physical ROWID, memoized."""
        self._sync()
        row = self._rows.get(rowid)
        if row is not None:
            self.stats.cache_hits += 1
            return row
        if self.snapshot is not None:
            pinned = self.table.visible_row(rowid, self.snapshot.lsn)
            if pinned is None:
                raise RowIdError(
                    f"ROWID {rowid} is not visible at LSN "
                    f"{self.snapshot.lsn}"
                )
            row = pinned
        else:
            row = self.database.fetch(XML_TABLE, rowid)
        self.stats.point_fetches += 1
        self.stats.rows_fetched += 1
        self._rows[rowid] = row
        return row

    def _fetch_batch(self, rowids: list[RowId]) -> list[Row]:
        """One batched fetch, through the pin when one is set."""
        if self.snapshot is not None:
            return self.table.visible_many(rowids, self.snapshot.lsn)
        return self.database.fetch_many(XML_TABLE, rowids)

    def nodes(self, rowids: Sequence[RowId]) -> list[Row]:
        """Rows for ``rowids`` in order; missing ones come in ONE batch."""
        self._sync()
        missing = [rowid for rowid in rowids if rowid not in self._rows]
        if missing:
            fetched = self._fetch_batch(missing)
            self.stats.batch_fetches += 1
            self.stats.rows_fetched += len(fetched)
            for row in fetched:
                self._rows[row[ROWID_PSEUDO]] = row
        self.stats.cache_hits += len(rowids) - len(missing)
        return [self._rows[rowid] for rowid in rowids]

    def prefetch_ancestors(self, rows: Sequence[Row]) -> None:
        """Warm the cache with every proper ancestor of ``rows``.

        One batched fetch per tree *level* instead of one point fetch per
        parent hop: the lifts call this before walking a whole candidate
        set upward, so the subsequent per-row walks run entirely against
        cached rows.  Purely a cache warmer — results are unaffected.
        """
        self._sync()
        frontier = {
            row["PARENTROWID"]
            for row in rows
            if row["PARENTROWID"] is not None
        }
        while frontier:
            missing = [
                rowid for rowid in frontier if rowid not in self._rows
            ]
            if missing:
                fetched = self._fetch_batch(missing)
                self.stats.batch_fetches += 1
                self.stats.rows_fetched += len(fetched)
                for row in fetched:
                    self._rows[row[ROWID_PSEUDO]] = row
            frontier = {
                self._rows[rowid]["PARENTROWID"]
                for rowid in frontier
                if self._rows[rowid]["PARENTROWID"] is not None
            }

    # -- single hops ---------------------------------------------------------

    def parent(self, row: Row) -> Row | None:
        """Follow ``PARENTROWID`` up one level (None at the root)."""
        parent_rowid = row["PARENTROWID"]
        if parent_rowid is None:
            return None
        self.stats.parent_hops += 1
        return self.node(parent_rowid)

    def next_sibling(self, row: Row) -> Row | None:
        """Follow ``SIBLINGID`` across one hop (None for the last child)."""
        sibling_rowid = row["SIBLINGID"]
        if sibling_rowid is None:
            return None
        self.stats.sibling_hops += 1
        return self.node(sibling_rowid)

    def children(self, row: Row) -> list[Row]:
        """Direct children in document order — one batched fetch."""
        self._sync()
        node_id = row["NODEID"]
        cached = self._children.get(node_id)
        if cached is not None:
            self.stats.cache_hits += 1
            return [self._rows[rowid] for rowid in cached]
        self.stats.child_lookups += 1
        if self.snapshot is not None:
            child_rows = self.table.snapshot_search(
                "PARENTNODEID", node_id, self.snapshot.lsn
            )
        else:
            index = self.table.index_on("PARENTNODEID")
            if index is not None:
                child_rows = self.nodes(index.search(node_id))
            else:  # schema always creates the index; scan is the safety net
                child_rows = [
                    child
                    for child in self.table.scan()
                    if child["PARENTNODEID"] == node_id
                ]
        child_rows.sort(key=lambda child: child["ORDINAL"])
        for child in child_rows:
            self._rows[child[ROWID_PSEUDO]] = child
        self._children[node_id] = tuple(
            child[ROWID_PSEUDO] for child in child_rows
        )
        return child_rows

    # -- generation-aware probes (MVCC) -----------------------------------------

    def probe_text(
        self,
        lookup: Callable[[TextIndex], Iterable[RowId]],
        predicate: Callable[[str], bool],
    ) -> list[RowId]:
        """A text-index probe whose result is correct *as of the pin*.

        ``lookup`` runs the raw probe against the live NODEDATA index;
        ``predicate`` re-evaluates the probe's semantics against a row's
        visible NODEDATA.  Live mode: exactly the raw probe.  Snapshot
        mode: rows unchanged since the pin keep the index's verdict,
        while every row that changed after the pin (updated, deleted, or
        inserted — whether or not it is still in the postings) is
        re-judged on its pinned text.  The probe runs before the
        changed-set read, so a racing statement either lands in the
        postings we read or in the changed set we read after — never in
        neither.
        """
        index = self.table.text_index_on("NODEDATA")
        if index is None:
            return []
        if self.snapshot is None:
            return list(lookup(index))
        pin = self.snapshot.lsn
        current = self.table.stable_read(lambda: set(lookup(index)))
        changed = self.table.changed_rowids_since(pin)
        visible = sorted(current - changed)
        for rowid in sorted(changed):
            row = self.table.visible_row(rowid, pin)
            if row is None:
                continue
            data = row.get("NODEDATA")
            if isinstance(data, str) and data and predicate(data):
                visible.append(rowid)
        visible.sort()  # physical order: deterministic regardless of races
        return visible

    def lookup_rows(self, column: str, value: Any) -> list[Row]:
        """Equality lookup through the pin (live mode: ``Table.lookup``)."""
        if self.snapshot is None:
            return self.table.lookup(column, value)
        rows = self.table.snapshot_search(column, value, self.snapshot.lsn)
        for row in rows:
            self._rows[row[ROWID_PSEUDO]] = row
        return rows

    # -- node predicates -------------------------------------------------------

    @staticmethod
    def is_context(row: Row) -> bool:
        return row["NODETYPE"] == int(NodeType.CONTEXT)

    @staticmethod
    def is_text(row: Row) -> bool:
        return row["NODETYPE"] == int(NodeType.TEXT)

    # -- traversal (paper §2.1.4), memoized ------------------------------------

    def context_ancestor(self, row: Row) -> Row | None:
        """Nearest *proper ancestor* CONTEXT element (else None)."""
        self._sync()
        rowid = row[ROWID_PSEUDO]
        memo = self._ancestor.get(rowid, _MISS)
        if memo is not _MISS:
            self.stats.cache_hits += 1
            return None if memo is None else self.node(memo)
        shared = self._lift_get(row, "ancestor", rowid)
        if shared is not _SHARED_MISS:
            self._ancestor[rowid] = shared
            return None if shared is None else self.node(shared)
        current = row
        found: Row | None = None
        while True:
            parent = self.parent(current)
            if parent is None:
                break
            if self.is_context(parent):
                found = parent
                break
            current = parent
        memo = None if found is None else found[ROWID_PSEUDO]
        self._ancestor[rowid] = memo
        self._lift_put(row, "ancestor", rowid, memo)
        return found

    def governing_context(self, row: Row) -> Row | None:
        """Nearest enclosing/preceding CONTEXT for any node row.

        Walk up parent links; at each level, an enclosing CONTEXT wins,
        else the latest *preceding* CONTEXT sibling does.  None for
        front matter preceding every context.
        """
        self._sync()
        rowid = row[ROWID_PSEUDO]
        memo = self._governing.get(rowid, _MISS)
        if memo is not _MISS:
            self.stats.cache_hits += 1
            return None if memo is None else self.node(memo)
        shared = self._lift_get(row, "governing", rowid)
        if shared is not _SHARED_MISS:
            self._governing[rowid] = shared
            return None if shared is None else self.node(shared)
        current = row
        found: Row | None = None
        while True:
            parent = self.parent(current)
            if parent is None:
                break
            if self.is_context(parent):
                found = parent
                break
            best: Row | None = None
            for sibling in self.children(parent):
                if sibling["ORDINAL"] >= current["ORDINAL"]:
                    break
                if self.is_context(sibling):
                    best = sibling
            if best is not None:
                found = best
                break
            current = parent
        memo = None if found is None else found[ROWID_PSEUDO]
        self._governing[rowid] = memo
        self._lift_put(row, "governing", rowid, memo)
        return found

    def subtree(self, row: Row) -> list[Row]:
        """All descendant rows in document order (children batched)."""
        result: list[Row] = []
        for child in self.children(row):
            result.append(child)
            result.extend(self.subtree(child))
        return result

    def section_scope(self, context_row: Row) -> list[Row]:
        """Rows of the section governed by ``context_row``.

        Every following sibling (plus its subtree) up to, but not
        including, the next CONTEXT sibling — the paper's "traversing
        back down the tree structure via the sibling node".
        """
        self._sync()
        rowid = context_row[ROWID_PSEUDO]
        cached = self._scopes.get(rowid)
        if cached is not None:
            self.stats.cache_hits += 1
            return [self._rows[scope_rowid] for scope_rowid in cached]
        shared = self._lift_get(context_row, "scope", rowid)
        if shared is not _SHARED_MISS:
            # Shared entries carry rowids only (immutable, thread-safe);
            # the rows themselves come through this accessor's own
            # fetch path, so snapshot pinning still applies.
            self._scopes[rowid] = shared
            return self.nodes(list(shared))
        scope: list[Row] = []
        sibling = self.next_sibling(context_row)
        while sibling is not None:
            if self.is_context(sibling):
                break
            scope.append(sibling)
            scope.extend(self.subtree(sibling))
            sibling = self.next_sibling(sibling)
        rowids = tuple(scope_row[ROWID_PSEUDO] for scope_row in scope)
        self._scopes[rowid] = rowids
        self._lift_put(context_row, "scope", rowid, rowids)
        return scope

    def scope_rowids(self, context_row: Row) -> set[RowId]:
        """Physical rowids of a section scope (containment tests)."""
        return {
            scope_row[ROWID_PSEUDO]
            for scope_row in self.section_scope(context_row)
        }

    def section_text(self, context_row: Row) -> str:
        """Concatenated TEXT data of the scope — the "content portion"."""
        self._sync()
        rowid = context_row[ROWID_PSEUDO]
        cached = self._texts.get(rowid)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        shared = self._lift_get(context_row, "text", rowid)
        if shared is not _SHARED_MISS:
            self._texts[rowid] = shared
            return shared
        text = _joined_text(
            scope_row
            for scope_row in self.section_scope(context_row)
            if self.is_text(scope_row)
        )
        self._texts[rowid] = text
        self._lift_put(context_row, "text", rowid, text)
        return text

    def context_title(self, context_row: Row) -> str:
        """Heading text of a CONTEXT element (its TEXT descendants)."""
        self._sync()
        rowid = context_row[ROWID_PSEUDO]
        cached = self._titles.get(rowid)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        shared = self._lift_get(context_row, "title", rowid)
        if shared is not _SHARED_MISS:
            self._titles[rowid] = shared
            return shared
        title = _joined_text(
            descendant
            for descendant in self.subtree(context_row)
            if self.is_text(descendant)
        )
        self._titles[rowid] = title
        self._lift_put(context_row, "title", rowid, title)
        return title


def _joined_text(rows) -> str:
    pieces = [
        (row["NODEDATA"] or "").strip()
        for row in rows
        if row["NODEDATA"]
    ]
    return " ".join(piece for piece in pieces if piece)
