"""The NETMARK XML Store facade.

One object owning the generated schema, the decomposer and the
reconstruction path.  Everything above (query engine, server, federation)
talks to an :class:`XmlStore`; everything below is the ORDBMS substrate.

Typical use::

    store = XmlStore()
    result = store.store_text(open("budget.ndoc").read(), "budget.ndoc")
    document = store.document(result.doc_id)      # reconstructed DOM
    for ctx in store.contexts(result.doc_id):     # CONTEXT rows
        ...
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Any, Iterator

from repro.converters import convert
from repro.errors import DocumentNotFoundError
from repro.ordbms import Database, RowId, Snapshot, Table
from repro.sgml.config import DEFAULT_CONFIG, NodeTypeConfig
from repro.sgml.dom import Document, Element
from repro.store.accessor import NodeAccessor
from repro.store.compose import compose_document, compose_section
from repro.store.liftcache import LiftCache
from repro.store.decompose import DecomposeResult, Decomposer
from repro.store.schema import (
    DOC_TABLE,
    XML_TABLE,
    create_netmark_schema,
    decode_metadata,
)
from repro.store.traversal import iter_contexts

Row = dict[str, Any]


@dataclass(frozen=True)
class StoredDocument:
    """Catalog entry for one stored document (a DOC-table row, typed)."""

    doc_id: int
    file_name: str
    file_date: _dt.datetime | None
    file_size: int | None
    format: str
    metadata: dict[str, str]


class XmlStore:
    """Schema-less document storage over the ORDBMS substrate."""

    def __init__(
        self,
        database: Database | None = None,
        config: NodeTypeConfig = DEFAULT_CONFIG,
        materialize_paths: bool = False,
    ) -> None:
        self.database = database or Database()
        self.config = config
        self._doc_table, self._xml_table = create_netmark_schema(self.database)
        self._decomposer = Decomposer(self.database, config)
        self._accessor = NodeAccessor(self.database)
        #: Cross-query structural-lift memo pool; cache-enabled query
        #: engines read through it (see :mod:`repro.store.liftcache`).
        self.lift_cache = LiftCache(
            generation=self._xml_table.generation,
            lsn=self.database.mvcc.lsn,
        )
        #: With ``materialize_paths`` every ingest pre-computes the new
        #: document's context paths (titles, scopes, governing lifts)
        #: straight into :attr:`lift_cache`, so the first query over a
        #: fresh document already runs against warm lifts.  Off by
        #: default: it trades ingest latency for first-query latency,
        #: and it deliberately lives in the lift cache rather than a
        #: third table — the FIG5 claim (``table_count == 2``) holds.
        self.materialize_paths = materialize_paths
        #: Set by :meth:`open` when the store came back from a crash.
        self.last_recovery = None

    # -- persistence ----------------------------------------------------------

    def dump(self) -> str:
        """Serialise the whole store (see :mod:`repro.ordbms.snapshot`)."""
        from repro.ordbms.snapshot import dump_database

        return dump_database(self.database)

    @classmethod
    def restore(
        cls, snapshot_text: str, config: NodeTypeConfig = DEFAULT_CONFIG
    ) -> "XmlStore":
        """Rebuild a store from :meth:`dump` output.

        Physical ROWIDs are restored exactly (they are stored inside node
        rows), and the id allocators resume past the highest restored
        ids, so new documents never collide with old ones.
        """
        from repro.ordbms.snapshot import load_database

        return cls._adopt(load_database(snapshot_text), config)

    @classmethod
    def open(
        cls, device: object, config: NodeTypeConfig = DEFAULT_CONFIG
    ) -> "XmlStore":
        """Open (or create) a *durable* store on a WAL ``LogDevice``.

        First open (empty device): creates the NETMARK schema and writes
        the baseline checkpoint — from then on every committed document
        is durable the moment ``store_*`` returns.  Reopen (device holds
        a checkpoint/log): runs crash recovery, which replays committed
        work, discards any in-flight transaction, and resumes the log;
        the :class:`~repro.ordbms.recovery.RecoveryResult` is kept on
        :attr:`last_recovery`.
        """
        from repro.ordbms.recovery import recover

        if device.load_checkpoint() is None and not device.read_log():
            store = cls(config=config)
            store.database.enable_wal(device)
            return store
        result = recover(device)
        store = cls._adopt(result.database, config)
        store.last_recovery = result
        return store

    def checkpoint(self) -> int:
        """Fold the store into a fresh checkpoint and truncate its log."""
        return self.database.checkpoint()

    @classmethod
    def adopt(
        cls, database: Database, config: NodeTypeConfig = DEFAULT_CONFIG
    ) -> "XmlStore":
        """Wire a store view around a database that already has the schema.

        The entry point for databases materialised elsewhere — crash
        recovery output, a replication follower's applied state — where
        the NETMARK tables exist but no :class:`XmlStore` does yet.
        """
        return cls._adopt(database, config)

    @classmethod
    def _adopt(
        cls, database: Database, config: NodeTypeConfig
    ) -> "XmlStore":
        """Wire a store around a database that already has the schema."""
        store = cls.__new__(cls)
        store.database = database
        store.config = config
        store._doc_table = database.table(DOC_TABLE)
        store._xml_table = database.table(XML_TABLE)
        store._decomposer = Decomposer(database, config)
        store._accessor = NodeAccessor(database)
        store.lift_cache = LiftCache(
            generation=store._xml_table.generation,
            lsn=database.mvcc.lsn,
        )
        store.materialize_paths = False
        store.last_recovery = None
        max_doc = max(
            (row["DOC_ID"] for row in store._doc_table.scan()), default=0
        )
        max_node = max(
            (row["NODEID"] for row in store._xml_table.scan()), default=0
        )
        store._decomposer.resume(max_doc + 1, max_node + 1)
        return store

    # -- ingestion ------------------------------------------------------------

    def store_document(
        self, document: Document, file_date: _dt.datetime | None = None
    ) -> DecomposeResult:
        """Store an already-parsed DOM document."""
        result = self._decomposer.load(document, file_date=file_date)
        # Announce the commit to the shared lift pool: only this doc's
        # entries drop (it is brand new, so none exist) and the pool's
        # write position catches up with the table generation — the one
        # counter the per-query accessor memos are guarded by too.
        self._note_write(result.doc_id)
        if self.materialize_paths:
            self._materialize_context_paths(result.doc_id)
        return result

    def store_text(
        self,
        text: str,
        name: str,
        file_date: _dt.datetime | None = None,
    ) -> DecomposeResult:
        """Convert raw file content through the upmark registry and store it."""
        return self.store_document(convert(text, name), file_date=file_date)

    def replace_text(
        self,
        text: str,
        name: str,
        file_date: _dt.datetime | None = None,
    ) -> DecomposeResult:
        """Store ``text`` as the new revision of the document named ``name``.

        If a document with that file name exists it is superseded: its
        nodes are removed and the replacement carries a ``revision``
        metadata counter one higher.  With no prior document this is
        exactly :meth:`store_text` (revision 1).  Either way the new
        content is parsed *before* anything is deleted, so a conversion
        failure leaves the old revision untouched.
        """
        document = convert(text, name)
        revision = 1
        existing = self.lookup_by_name(name)
        if existing is not None:
            try:
                revision = int(existing.metadata.get("revision", "1")) + 1
            except ValueError:
                revision = 2
            self.delete_document(existing.doc_id)
        document.metadata["revision"] = revision
        return self.store_document(document, file_date=file_date)

    def delete_document(self, doc_id: int) -> int:
        """Remove a document and all its nodes; returns nodes removed."""
        from repro.ordbms.table import ROWID_PSEUDO

        doc_rows = self._doc_table.lookup("DOC_ID", doc_id)
        if not doc_rows:
            raise DocumentNotFoundError(f"no document with id {doc_id}")
        node_rows = self._xml_table.lookup("DOC_ID", doc_id)
        with self.database.begin():
            for node_row in node_rows:
                self.database.delete(XML_TABLE, node_row[ROWID_PSEUDO])
            self.database.delete(DOC_TABLE, doc_rows[0][ROWID_PSEUDO])
        self._note_write(doc_id)
        return len(node_rows)

    def _note_write(self, doc_id: int) -> None:
        """Advance the shared lift pool past a committed document write."""
        self.lift_cache.note_write(
            self._xml_table.generation, self.database.mvcc.lsn, doc_id
        )

    def _materialize_context_paths(self, doc_id: int) -> None:
        """Pre-compute a fresh document's context paths into the pool.

        One pass over the new document's CONTEXT rows warms the title,
        scope, section-text and governing/ancestor lifts that context
        and content queries will ask for, so the index probes that
        consult them hit instead of walking.  Runs through a shared
        accessor, so admission (generation tokens) applies exactly as it
        would for a query — a racing write simply drops the warmup.
        """
        accessor = self.new_accessor(lifts=self.lift_cache)
        for context_row in self._xml_table.lookup("DOC_ID", doc_id):
            if not NodeAccessor.is_context(context_row):
                continue
            accessor.context_title(context_row)
            accessor.section_text(context_row)
            for scope_row in accessor.section_scope(context_row):
                if NodeAccessor.is_text(scope_row):
                    accessor.governing_context(scope_row)
                    accessor.context_ancestor(scope_row)

    # -- snapshots (MVCC) -----------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Pin a consistent read view over DOC + XML (context manager).

        Every read taken through the handle — catalog lookups, query
        execution via ``engine.execute(query, snapshot=snap)``, lazy
        match resolution — sees the store exactly as of the pin, no
        matter what the daemon ingests meanwhile, and never blocks::

            with store.snapshot() as snap:
                results = engine.execute(query, snapshot=snap)
        """
        return self.database.open_snapshot()

    # -- catalog ------------------------------------------------------------

    def documents(
        self, snapshot: Snapshot | None = None
    ) -> list[StoredDocument]:
        """All stored documents, in DOC_ID order."""
        if snapshot is not None:
            rows = self._doc_table.snapshot_scan(snapshot.lsn)
        else:
            rows = self._doc_table.scan()
        entries = [self._to_stored(row) for row in rows]
        entries.sort(key=lambda entry: entry.doc_id)
        return entries

    def describe(
        self, doc_id: int, snapshot: Snapshot | None = None
    ) -> StoredDocument:
        if snapshot is not None:
            rows = self._doc_table.snapshot_search(
                "DOC_ID", doc_id, snapshot.lsn
            )
        else:
            rows = self._doc_table.lookup("DOC_ID", doc_id)
        if not rows:
            raise DocumentNotFoundError(f"no document with id {doc_id}")
        return self._to_stored(rows[0])

    def lookup_by_name(self, file_name: str) -> StoredDocument | None:
        for row in self._doc_table.scan():
            if row["FILE_NAME"] == file_name:
                return self._to_stored(row)
        return None

    def __len__(self) -> int:
        return len(self._doc_table)

    @property
    def node_count(self) -> int:
        return len(self._xml_table)

    @property
    def table_count(self) -> int:
        """Tables in the database — stays at 2 forever (the FIG5 claim)."""
        return len(self.database.catalog)

    # -- retrieval -----------------------------------------------------------

    def document(
        self, doc_id: int, snapshot: Snapshot | None = None
    ) -> Document:
        """Reconstruct the full DOM of a stored document."""
        entry = self.describe(doc_id, snapshot=snapshot)
        accessor = (
            self.new_accessor(snapshot)
            if snapshot is not None
            else self._accessor
        )
        return compose_document(
            self.database, doc_id, name=entry.file_name,
            accessor=accessor,
        )

    def section(self, context_row: Row) -> Element:
        """Reconstruct the section governed by a CONTEXT row."""
        return compose_section(self.database, context_row, self._accessor)

    @property
    def accessor(self) -> NodeAccessor:
        """The store's long-lived accessor (generation-guarded caches)."""
        return self._accessor

    def new_accessor(
        self,
        snapshot: Snapshot | None = None,
        lifts: LiftCache | None = None,
    ) -> NodeAccessor:
        """A fresh per-query accessor (optionally pinned to a snapshot).

        Pass ``lifts=store.lift_cache`` to let the accessor share
        structural walks across queries; cache-enabled query engines do.
        """
        return NodeAccessor(self.database, snapshot=snapshot, lifts=lifts)

    def contexts(self, doc_id: int) -> Iterator[Row]:
        """CONTEXT element rows of one document."""
        self.describe(doc_id)  # raises if unknown
        return iter_contexts(self.database, doc_id)

    def fetch_node(self, rowid: RowId) -> Row:
        return self.database.fetch(XML_TABLE, rowid)

    # -- table access for the query layer -------------------------------------

    @property
    def xml_table(self) -> Table:
        return self._xml_table

    @property
    def doc_table(self) -> Table:
        return self._doc_table

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _to_stored(row: Row) -> StoredDocument:
        return StoredDocument(
            doc_id=row["DOC_ID"],
            file_name=row["FILE_NAME"],
            file_date=row["FILE_DATE"],
            file_size=row["FILE_SIZE"],
            format=row["FORMAT"] or "unknown",
            metadata=decode_metadata(row["METADATA"]),
        )
