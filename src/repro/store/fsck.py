"""fsck for the NETMARK two-table store: verify and repair invariants.

The schema-less design buys its generality by pushing structure out of
DDL and into row values — ``PARENTROWID``/``SIBLINGID`` links, ORDINAL
ordering, the five-way NODETYPE vocabulary.  Nothing in the ORDBMS can
enforce those, so this module does, after the fact:

* every ``PARENTROWID`` resolves to a live XML row of the same document,
  whose ``NODEID`` matches the child's ``PARENTNODEID``, and the parent
  chain is acyclic (reaches a root);
* each document has exactly one root, and every parent's children form
  one well-formed sibling chain: distinct ORDINALs, each ``SIBLINGID``
  pointing at the next child in ``(ORDINAL, NODEID)`` order, the last
  child ending the chain with NULL;
* every ``NODETYPE`` is one of the five NETMARK types;
* DOC↔XML referential integrity both ways (no orphaned nodes, no empty
  documents);
* derived state agrees with the rows: every B+tree and text index on
  DOC/XML matches a fresh rebuild from the heap.

Violations found in the data are *reported*, never raised — fsck's job
is to describe damage (:class:`FsckReport`), and crashes are reserved
for misuse (:class:`~repro.errors.FsckError`, e.g. a database without
the NETMARK schema).  :func:`repair_store` rebuilds the derived subset
of that state — indexes, sibling chains, ``PARENTNODEID`` — and leaves
genuinely lost data (dangling parents, orphans) to be reported.

Command line::

    python -m repro.store.fsck <wal-base-path> [--repair] [--format json]

recovers the store from ``<wal-base-path>.wal``/``.ckpt`` and checks it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import FsckError
from repro.ordbms import ROWID_PSEUDO, Database, RowId, Table, TextIndex
from repro.sgml.nodetypes import NodeType
from repro.store.schema import DOC_TABLE, XML_TABLE

Row = dict[str, Any]

#: Violation codes, in check order.  Codes marked repairable concern
#: derived state that :func:`repair_store` can rebuild from the rows.
CODES = (
    "bad-node-type",
    "orphan-node",
    "empty-document",
    "missing-root",
    "multiple-roots",
    "dangling-parent",
    "foreign-parent",
    "parent-id-mismatch",  # repairable
    "parent-cycle",
    "dangling-sibling",
    "foreign-sibling",
    "duplicate-ordinal",
    "sibling-chain",  # repairable
    "btree-drift",  # repairable
    "text-index-drift",  # repairable
)

REPAIRABLE = frozenset(
    {"parent-id-mismatch", "sibling-chain", "btree-drift",
     "text-index-drift", "dangling-sibling", "foreign-sibling"}
)


@dataclass(frozen=True)
class Violation:
    """One invariant breach at one site."""

    code: str
    table: str
    rowid: str  # text form of the offending row's address ("" = table-level)
    doc_id: int | None
    detail: str


@dataclass
class FsckReport:
    """Everything one check pass saw."""

    violations: list[Violation] = field(default_factory=list)
    documents_checked: int = 0
    nodes_checked: int = 0
    indexes_checked: int = 0
    #: Repair actions performed before this report's check pass (only
    #: set on reports returned by :func:`repair_store`).
    repaired: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def count(self, code: str) -> int:
        return sum(1 for violation in self.violations if violation.code == code)

    def codes(self) -> set[str]:
        return {violation.code for violation in self.violations}

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (the CI artifact format)."""
        return {
            "ok": self.ok,
            "documents_checked": self.documents_checked,
            "nodes_checked": self.nodes_checked,
            "indexes_checked": self.indexes_checked,
            "repaired": self.repaired,
            "violations": [
                {
                    "code": violation.code,
                    "table": violation.table,
                    "rowid": violation.rowid,
                    "doc_id": violation.doc_id,
                    "detail": violation.detail,
                }
                for violation in self.violations
            ],
        }

    def render_text(self) -> str:
        """Human-readable report."""
        lines = [
            f"fsck: {self.documents_checked} documents, "
            f"{self.nodes_checked} nodes, {self.indexes_checked} indexes"
        ]
        if self.repaired:
            lines.append(f"fsck: {self.repaired} repair actions applied")
        if self.ok:
            lines.append("fsck: clean")
        for violation in self.violations:
            where = violation.rowid or violation.table
            doc = f" doc={violation.doc_id}" if violation.doc_id is not None else ""
            lines.append(
                f"{violation.code}: {where}{doc}: {violation.detail}"
            )
        return "\n".join(lines) + "\n"


def check_store(database: Database) -> FsckReport:
    """Run every invariant check; never mutates the database."""
    doc_table, xml_table = _netmark_tables(database)
    report = FsckReport()
    doc_ids = {row["DOC_ID"] for row in doc_table.scan()}
    report.documents_checked = len(doc_ids)
    nodes = list(xml_table.scan())
    report.nodes_checked = len(nodes)
    by_rowid: dict[RowId, Row] = {row[ROWID_PSEUDO]: row for row in nodes}
    _check_node_fields(report, nodes, by_rowid, doc_ids)
    _check_roots(report, nodes, doc_ids)
    _check_parent_chains(report, nodes, by_rowid)
    _check_sibling_chains(report, nodes, by_rowid)
    report.indexes_checked = _check_indexes(report, (doc_table, xml_table))
    return report


def repair_store(database: Database) -> FsckReport:
    """Rebuild derived state, then re-check.

    Repairs, in order: ``PARENTNODEID`` values that disagree with the
    row their ``PARENTROWID`` addresses, sibling chains (re-derived from
    ``(ORDINAL, NODEID)`` order per parent, which also clears dangling
    or foreign ``SIBLINGID`` values), and every index (rebuilt from the
    heap).  Structural losses — dangling parents, orphaned nodes,
    missing roots — cannot be re-derived and remain in the report.
    """
    doc_table, xml_table = _netmark_tables(database)
    actions = 0
    nodes = list(xml_table.scan())
    by_rowid: dict[RowId, Row] = {row[ROWID_PSEUDO]: row for row in nodes}
    for row in nodes:
        parent_rowid = row["PARENTROWID"]
        parent = by_rowid.get(parent_rowid) if parent_rowid is not None else None
        if parent is not None and row["PARENTNODEID"] != parent["NODEID"]:
            database.update(
                XML_TABLE, row[ROWID_PSEUDO],
                {"PARENTNODEID": parent["NODEID"]},
            )
            actions += 1
    for _, _, chain in _family_chains(nodes):
        for row, expected_next in chain:
            if row["SIBLINGID"] != expected_next:
                database.update(
                    XML_TABLE, row[ROWID_PSEUDO], {"SIBLINGID": expected_next}
                )
                actions += 1
    doc_table.rebuild_indexes()
    xml_table.rebuild_indexes()
    actions += 2
    report = check_store(database)
    report.repaired = actions
    return report


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------


def _netmark_tables(database: Database) -> tuple[Table, Table]:
    try:
        return database.table(DOC_TABLE), database.table(XML_TABLE)
    except Exception as error:  # lint: allow-broad-except(any lookup failure means the schema is absent)
        raise FsckError(
            f"database {database.name!r} does not carry the NETMARK "
            f"schema: {error}"
        ) from error


def _check_node_fields(
    report: FsckReport,
    nodes: list[Row],
    by_rowid: dict[RowId, Row],
    doc_ids: set[int],
) -> None:
    valid_types = {int(node_type) for node_type in NodeType}
    for row in nodes:
        rowid = row[ROWID_PSEUDO]
        if row["NODETYPE"] not in valid_types:
            report.violations.append(Violation(
                "bad-node-type", XML_TABLE, str(rowid), row["DOC_ID"],
                f"NODETYPE {row['NODETYPE']!r} is not one of "
                f"{sorted(valid_types)}",
            ))
        if row["DOC_ID"] not in doc_ids:
            report.violations.append(Violation(
                "orphan-node", XML_TABLE, str(rowid), row["DOC_ID"],
                f"DOC_ID {row['DOC_ID']} has no DOC row",
            ))
        parent_rowid = row["PARENTROWID"]
        if parent_rowid is not None:
            parent = by_rowid.get(parent_rowid)
            if parent is None:
                report.violations.append(Violation(
                    "dangling-parent", XML_TABLE, str(rowid), row["DOC_ID"],
                    f"PARENTROWID {parent_rowid} is not a live XML row",
                ))
            elif parent["DOC_ID"] != row["DOC_ID"]:
                report.violations.append(Violation(
                    "foreign-parent", XML_TABLE, str(rowid), row["DOC_ID"],
                    f"parent at {parent_rowid} belongs to document "
                    f"{parent['DOC_ID']}",
                ))
            elif parent["NODEID"] != row["PARENTNODEID"]:
                report.violations.append(Violation(
                    "parent-id-mismatch", XML_TABLE, str(rowid),
                    row["DOC_ID"],
                    f"PARENTNODEID {row['PARENTNODEID']} but parent row "
                    f"at {parent_rowid} has NODEID {parent['NODEID']}",
                ))
        sibling_rowid = row["SIBLINGID"]
        if sibling_rowid is not None:
            sibling = by_rowid.get(sibling_rowid)
            if sibling is None:
                report.violations.append(Violation(
                    "dangling-sibling", XML_TABLE, str(rowid), row["DOC_ID"],
                    f"SIBLINGID {sibling_rowid} is not a live XML row",
                ))
            elif sibling["DOC_ID"] != row["DOC_ID"]:
                report.violations.append(Violation(
                    "foreign-sibling", XML_TABLE, str(rowid), row["DOC_ID"],
                    f"sibling at {sibling_rowid} belongs to document "
                    f"{sibling['DOC_ID']}",
                ))


def _check_roots(
    report: FsckReport, nodes: list[Row], doc_ids: set[int]
) -> None:
    roots: dict[int, list[Row]] = {}
    populated: set[int] = set()
    for row in nodes:
        populated.add(row["DOC_ID"])
        if row["PARENTROWID"] is None:
            roots.setdefault(row["DOC_ID"], []).append(row)
    for doc_id in sorted(doc_ids):
        if doc_id not in populated:
            report.violations.append(Violation(
                "empty-document", DOC_TABLE, "", doc_id,
                "document has no XML nodes at all",
            ))
        elif doc_id not in roots:
            report.violations.append(Violation(
                "missing-root", XML_TABLE, "", doc_id,
                "document has nodes but none is a root "
                "(every PARENTROWID is set)",
            ))
        elif len(roots[doc_id]) > 1:
            report.violations.append(Violation(
                "multiple-roots", XML_TABLE, "", doc_id,
                f"{len(roots[doc_id])} root nodes "
                f"(NODEIDs {sorted(r['NODEID'] for r in roots[doc_id])})",
            ))


def _check_parent_chains(
    report: FsckReport, nodes: list[Row], by_rowid: dict[RowId, Row]
) -> None:
    #: rowids proven to reach a root (or known-broken, already reported).
    resolved: set[RowId] = set()
    for row in nodes:
        rowid = row[ROWID_PSEUDO]
        if rowid in resolved:
            continue
        path: list[RowId] = []
        seen: set[RowId] = set()
        current: Row | None = row
        while current is not None:
            current_rowid = current[ROWID_PSEUDO]
            if current_rowid in resolved:
                break
            if current_rowid in seen:
                report.violations.append(Violation(
                    "parent-cycle", XML_TABLE, str(current_rowid),
                    current["DOC_ID"],
                    "PARENTROWID chain revisits this node without "
                    "reaching a root",
                ))
                break
            seen.add(current_rowid)
            path.append(current_rowid)
            parent_rowid = current["PARENTROWID"]
            if parent_rowid is None:
                break
            current = by_rowid.get(parent_rowid)  # None = dangling (reported)
        resolved.update(path)


def _family_chains(
    nodes: list[Row],
) -> list[tuple[int, RowId | None, list[tuple[Row, RowId | None]]]]:
    """Children grouped by parent, each paired with its expected SIBLINGID.

    The canonical chain orders a parent's children by ``(ORDINAL,
    NODEID)`` — NODEID breaks ordinal ties deterministically — and links
    each child to the next, ending with NULL.
    """
    families: dict[tuple[int, RowId | None], list[Row]] = {}
    for row in nodes:
        families.setdefault(
            (row["DOC_ID"], row["PARENTROWID"]), []
        ).append(row)
    chains = []
    for (doc_id, parent_rowid), children in sorted(
        families.items(), key=lambda item: (item[0][0], str(item[0][1]))
    ):
        children.sort(key=lambda row: (row["ORDINAL"], row["NODEID"]))
        chain = [
            (row, children[position + 1][ROWID_PSEUDO]
             if position + 1 < len(children) else None)
            for position, row in enumerate(children)
        ]
        chains.append((doc_id, parent_rowid, chain))
    return chains


def _check_sibling_chains(
    report: FsckReport, nodes: list[Row], by_rowid: dict[RowId, Row]
) -> None:
    for doc_id, _, chain in _family_chains(nodes):
        ordinals_seen: dict[int, int] = {}
        for row, expected_next in chain:
            ordinal = row["ORDINAL"]
            if ordinal in ordinals_seen:
                report.violations.append(Violation(
                    "duplicate-ordinal", XML_TABLE, str(row[ROWID_PSEUDO]),
                    doc_id,
                    f"ORDINAL {ordinal} already used by NODEID "
                    f"{ordinals_seen[ordinal]} under the same parent",
                ))
            else:
                ordinals_seen[ordinal] = row["NODEID"]
            actual = row["SIBLINGID"]
            if actual != expected_next and (
                actual is None or actual in by_rowid
            ):
                # Dangling/foreign SIBLINGIDs were already reported with
                # their own codes; this one is live but mis-linked.
                report.violations.append(Violation(
                    "sibling-chain", XML_TABLE, str(row[ROWID_PSEUDO]),
                    doc_id,
                    f"SIBLINGID is {actual}, expected {expected_next} "
                    f"(next child by ORDINAL order)",
                ))


def _check_indexes(report: FsckReport, tables: tuple[Table, ...]) -> int:
    checked = 0
    for table in tables:
        for column in table.index_columns:
            checked += 1
            index = table.index_on(column)
            assert index is not None
            position = table.schema.position(column)
            expected = sorted(
                (row[position], rowid)
                for rowid, row in table._heap.scan()  # noqa: SLF001
                if row[position] is not None
            )
            actual = sorted(index.items())
            if actual != expected:
                report.violations.append(Violation(
                    "btree-drift", table.schema.name, "", None,
                    f"index on {column} has {len(actual)} entries, heap "
                    f"implies {len(expected)}; contents disagree",
                ))
        for column in (
            col.name for col in table.schema.columns
            if table.text_index_on(col.name) is not None
        ):
            checked += 1
            text_index = table.text_index_on(column)
            assert text_index is not None
            fresh = TextIndex(text_index.name)
            position = table.schema.position(column)
            for rowid, row in table._heap.scan():  # noqa: SLF001
                value = row[position]
                if isinstance(value, str) and value:
                    fresh.add(rowid, value)
            if fresh.signature() != text_index.signature():
                report.violations.append(Violation(
                    "text-index-drift", table.schema.name, "", None,
                    f"text index on {column} disagrees with a fresh "
                    f"rebuild from the heap",
                ))
    return checked


# ---------------------------------------------------------------------------
# Command line
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.store.fsck <wal-base> [--repair] [--format json]``"""
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        prog="repro.store.fsck",
        description="Recover a durable NETMARK store and check invariants.",
    )
    parser.add_argument(
        "base", help="WAL base path (the store's <base>.wal/<base>.ckpt)"
    )
    parser.add_argument(
        "--repair", action="store_true",
        help="rebuild derived state (indexes, sibling chains, parent ids)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    args = parser.parse_args(argv)

    from repro.ordbms.recovery import recover
    from repro.ordbms.wal import FileLogDevice

    device = FileLogDevice(args.base)
    try:
        result = recover(device)
        database = result.database
        report = (
            repair_store(database) if args.repair else check_store(database)
        )
        if args.format == "json":
            sys.stdout.write(json.dumps(report.as_dict(), indent=2) + "\n")
        else:
            sys.stdout.write(report.render_text())
        return 0 if report.ok else 1
    finally:
        device.close()


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())  # lint: allow-raise-foreign(process exit code is the CLI contract)
