"""Document reconstruction: XML-table rows -> DOM tree.

The inverse of :mod:`repro.store.decompose`.  Reconstruction is used by
document retrieval (HTTP GET of a stored document) and by result
composition, which lifts individual *sections* back into DOM fragments
before XSLT formatting.

The decompose→compose round trip preserves structure, attributes, text
and node order exactly; the property-based tests drive random trees
through it.
"""

from __future__ import annotations

from typing import Any

from repro.ordbms import Database
from repro.sgml.dom import Document, Element, Text
from repro.sgml.nodetypes import NodeType
from repro.store.schema import XML_TABLE, decode_attributes
from repro.store.traversal import children_of

Row = dict[str, Any]


def compose_node(database: Database, row: Row) -> Element | Text:
    """Rebuild the DOM subtree rooted at ``row``."""
    if row["NODETYPE"] == int(NodeType.TEXT):
        return Text(row["NODEDATA"] or "")
    element = Element(row["NODENAME"] or "node", decode_attributes(row["ATTRS"]))
    element.synthetic = row["NODETYPE"] == int(NodeType.SIMULATION)
    for child_row in children_of(database, row):
        element.append(compose_node(database, child_row))
    return element


def compose_document(database: Database, doc_id: int, name: str = "") -> Document:
    """Rebuild the full DOM of document ``doc_id``."""
    xml_table = database.table(XML_TABLE)
    roots = [
        row
        for row in xml_table.lookup("DOC_ID", doc_id)
        if row["PARENTROWID"] is None
    ]
    if len(roots) != 1:
        from repro.errors import StoreError

        raise StoreError(
            f"document {doc_id} has {len(roots)} root nodes, expected 1"
        )
    root = compose_node(database, roots[0])
    if isinstance(root, Text):  # a bare text root cannot occur via decompose
        wrapper = Element("document", synthetic=True)
        wrapper.append(root)
        root = wrapper
    return Document(root, name=name)


def compose_section(database: Database, context_row: Row) -> Element:
    """Rebuild one section as ``<section><context>…</context>…</section>``.

    The section element is synthetic — it represents the *query result*
    shape, not necessarily a stored element.  Content is every sibling
    subtree up to the next context, reconstructed in full.
    """
    from repro.store.traversal import next_sibling_of

    section = Element("section", synthetic=True)
    section.append(compose_node(database, context_row))
    sibling = next_sibling_of(database, context_row)
    while sibling is not None:
        if sibling["NODETYPE"] == int(NodeType.CONTEXT):
            break
        section.append(compose_node(database, sibling))
        sibling = next_sibling_of(database, sibling)
    return section
