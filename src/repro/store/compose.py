"""Document reconstruction: XML-table rows -> DOM tree.

The inverse of :mod:`repro.store.decompose`.  Reconstruction is used by
document retrieval (HTTP GET of a stored document) and by result
composition, which lifts individual *sections* back into DOM fragments
before XSLT formatting.

All row access funnels through a :class:`~repro.store.accessor.NodeAccessor`
so child sets come back in batched fetches and repeated composition of
overlapping fragments (a section and the document containing it) reuses
cached rows.  Callers may pass their own accessor to share its caches;
otherwise an ephemeral one is made per call.

The decompose→compose round trip preserves structure, attributes, text
and node order exactly; the property-based tests drive random trees
through it.
"""

from __future__ import annotations

from typing import Any

from repro.ordbms import Database
from repro.sgml.dom import Document, Element, Text
from repro.sgml.nodetypes import NodeType
from repro.store.accessor import NodeAccessor
from repro.store.schema import decode_attributes

Row = dict[str, Any]


def compose_node(
    database: Database, row: Row, accessor: NodeAccessor | None = None
) -> Element | Text:
    """Rebuild the DOM subtree rooted at ``row``."""
    accessor = accessor or NodeAccessor(database)
    if row["NODETYPE"] == int(NodeType.TEXT):
        return Text(row["NODEDATA"] or "")
    element = Element(row["NODENAME"] or "node", decode_attributes(row["ATTRS"]))
    element.synthetic = row["NODETYPE"] == int(NodeType.SIMULATION)
    for child_row in accessor.children(row):
        element.append(compose_node(database, child_row, accessor))
    return element


def compose_document(
    database: Database,
    doc_id: int,
    name: str = "",
    accessor: NodeAccessor | None = None,
) -> Document:
    """Rebuild the full DOM of document ``doc_id``."""
    accessor = accessor or NodeAccessor(database)
    roots = [
        row
        for row in accessor.lookup_rows("DOC_ID", doc_id)
        if row["PARENTROWID"] is None
    ]
    if len(roots) != 1:
        from repro.errors import StoreError

        raise StoreError(
            f"document {doc_id} has {len(roots)} root nodes, expected 1"
        )
    root = compose_node(database, roots[0], accessor)
    if isinstance(root, Text):  # a bare text root cannot occur via decompose
        wrapper = Element("document", synthetic=True)
        wrapper.append(root)
        root = wrapper
    return Document(root, name=name)


def compose_section(
    database: Database, context_row: Row, accessor: NodeAccessor | None = None
) -> Element:
    """Rebuild one section as ``<section><context>…</context>…</section>``.

    The section element is synthetic — it represents the *query result*
    shape, not necessarily a stored element.  Content is every sibling
    subtree up to the next context, reconstructed in full.
    """
    accessor = accessor or NodeAccessor(database)
    section = Element("section", synthetic=True)
    section.append(compose_node(database, context_row, accessor))
    sibling = accessor.next_sibling(context_row)
    while sibling is not None:
        if sibling["NODETYPE"] == int(NodeType.CONTEXT):
            break
        section.append(compose_node(database, sibling, accessor))
        sibling = accessor.next_sibling(sibling)
    return section
