"""ROWID-based tree traversal (paper §2.1.4, "Processing Queries Internally").

The paper's evaluation strategy for context/content search:

    "Each node returned from the index search is then processed based on
    its designated unique ROWID.  The processing of the node involves
    traversing up the tree structure via its parent or sibling node until
    the first context is found. [...] Once a particular CONTEXT is found,
    traversing back down the tree structure via the sibling node retrieves
    the corresponding content text."

These functions implement exactly that, against the XML table:

* :func:`governing_context` — from any node row, hop up ``PARENTROWID``
  links; at each level scan *preceding* siblings for the nearest CONTEXT
  element.  This resolves both canonical ``<section>`` shapes (the context
  is the first child, content its following siblings) and flat HTML (an
  ``<h2>`` heading precedes its paragraphs as a sibling).
* :func:`section_scope` — from a CONTEXT row, walk forward through
  ``SIBLINGID`` links (and down into subtrees) until the next CONTEXT at
  the same level, collecting the section's rows.
* :func:`section_text` — the concatenated TEXT data of a scope, i.e. the
  "content portion" a context query returns.

All hops are O(1) physical fetches; the ablation bench counts them against
the key-join alternative.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.ordbms import Database, RowId
from repro.ordbms.table import ROWID_PSEUDO
from repro.sgml.nodetypes import NodeType
from repro.store.schema import XML_TABLE

Row = dict[str, Any]


def fetch_node(database: Database, rowid: RowId) -> Row:
    """O(1) fetch of an XML-table node row by physical ROWID."""
    return database.fetch(XML_TABLE, rowid)


def parent_of(database: Database, row: Row) -> Row | None:
    """Follow ``PARENTROWID`` up one level (None at the root)."""
    parent_rowid = row["PARENTROWID"]
    if parent_rowid is None:
        return None
    return fetch_node(database, parent_rowid)


def next_sibling_of(database: Database, row: Row) -> Row | None:
    """Follow ``SIBLINGID`` across one hop (None for the last child)."""
    sibling_rowid = row["SIBLINGID"]
    if sibling_rowid is None:
        return None
    return fetch_node(database, sibling_rowid)


def children_of(database: Database, row: Row) -> list[Row]:
    """All direct children, in document order.

    Uses the B+tree index on ``PARENTNODEID`` (node ids are globally
    unique) — NETMARK keeps the logical parent id alongside the physical
    link precisely so child sets have an indexed entry point.
    """
    xml_table = database.table(XML_TABLE)
    children = xml_table.lookup("PARENTNODEID", row["NODEID"])
    children.sort(key=lambda child: child["ORDINAL"])
    return children


def is_context(row: Row) -> bool:
    return row["NODETYPE"] == int(NodeType.CONTEXT)


def is_text(row: Row) -> bool:
    return row["NODETYPE"] == int(NodeType.TEXT)


def governing_context(database: Database, row: Row) -> Row | None:
    """Nearest enclosing/preceding CONTEXT element for any node row.

    Walk up parent links; at each level, if the current node's element
    chain contains a CONTEXT ancestor, that wins; otherwise scan the
    preceding siblings (via ordinals) for the latest CONTEXT element.
    Returns None for front matter that precedes every context.
    """
    current = row
    while True:
        parent = parent_of(database, current)
        if parent is None:
            return None
        if is_context(parent):
            return parent
        # Scan preceding siblings (ordinal < current's) for a CONTEXT.
        siblings = children_of(database, parent)
        best: Row | None = None
        for sibling in siblings:
            if sibling["ORDINAL"] >= current["ORDINAL"]:
                break
            if is_context(sibling):
                best = sibling
        if best is not None:
            return best
        current = parent


def section_scope(database: Database, context_row: Row) -> list[Row]:
    """Rows forming the section governed by ``context_row``.

    The scope is every following sibling (and its whole subtree) up to,
    but not including, the next CONTEXT sibling.  The walk uses SIBLINGID
    forward hops, exactly the "traversing back down the tree structure via
    the sibling node" step of the paper.
    """
    scope: list[Row] = []
    sibling = next_sibling_of(database, context_row)
    while sibling is not None:
        if is_context(sibling):
            break
        scope.append(sibling)
        scope.extend(_subtree_rows(database, sibling))
        sibling = next_sibling_of(database, sibling)
    return scope


def _subtree_rows(database: Database, row: Row) -> list[Row]:
    """All descendant rows of ``row`` (document order)."""
    result: list[Row] = []
    for child in children_of(database, row):
        result.append(child)
        result.extend(_subtree_rows(database, child))
    return result


def section_text(database: Database, context_row: Row) -> str:
    """The content text of the section governed by ``context_row``."""
    pieces = [
        scope_row["NODEDATA"]
        for scope_row in section_scope(database, context_row)
        if is_text(scope_row) and scope_row["NODEDATA"]
    ]
    return " ".join(piece.strip() for piece in pieces if piece.strip())


def context_title(database: Database, context_row: Row) -> str:
    """The heading text of a CONTEXT element (its TEXT descendants)."""
    pieces = [
        scope_row["NODEDATA"]
        for scope_row in _subtree_rows(database, context_row)
        if is_text(scope_row) and scope_row["NODEDATA"]
    ]
    return " ".join(piece.strip() for piece in pieces if piece.strip())


def scope_rowids(database: Database, context_row: Row) -> set[RowId]:
    """The physical rowids of a section scope (for containment tests)."""
    return {
        scope_row[ROWID_PSEUDO] for scope_row in section_scope(database, context_row)
    }


def iter_contexts(database: Database, doc_id: int) -> Iterator[Row]:
    """Every CONTEXT element row of one document, in NODEID order."""
    xml_table = database.table(XML_TABLE)
    rows = [
        row
        for row in xml_table.lookup("DOC_ID", doc_id)
        if is_context(row)
    ]
    rows.sort(key=lambda row: row["NODEID"])
    yield from rows
