"""ROWID-based tree traversal (paper §2.1.4, "Processing Queries Internally").

The paper's evaluation strategy for context/content search:

    "Each node returned from the index search is then processed based on
    its designated unique ROWID.  The processing of the node involves
    traversing up the tree structure via its parent or sibling node until
    the first context is found. [...] Once a particular CONTEXT is found,
    traversing back down the tree structure via the sibling node retrieves
    the corresponding content text."

The traversal algorithms live in :class:`repro.store.accessor.NodeAccessor`
— memoized and batch-fetching, which is what the query plan pipeline
rides on.  This module keeps the original free-function surface for
callers that hold only a :class:`~repro.ordbms.database.Database` (tests,
benchmarks, one-off walks): each call delegates to a fresh accessor, so
the semantics are identical by construction, just without cross-call
caching.  Hot paths should hold a ``NodeAccessor`` instead.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.ordbms import Database, RowId
from repro.store.accessor import NodeAccessor
from repro.store.schema import XML_TABLE

Row = dict[str, Any]


def fetch_node(database: Database, rowid: RowId) -> Row:
    """O(1) fetch of an XML-table node row by physical ROWID."""
    return database.fetch(XML_TABLE, rowid)


def parent_of(database: Database, row: Row) -> Row | None:
    """Follow ``PARENTROWID`` up one level (None at the root)."""
    return NodeAccessor(database).parent(row)


def next_sibling_of(database: Database, row: Row) -> Row | None:
    """Follow ``SIBLINGID`` across one hop (None for the last child)."""
    return NodeAccessor(database).next_sibling(row)


def children_of(database: Database, row: Row) -> list[Row]:
    """All direct children, in document order (one batched fetch).

    Uses the B+tree index on ``PARENTNODEID`` (node ids are globally
    unique) — NETMARK keeps the logical parent id alongside the physical
    link precisely so child sets have an indexed entry point.
    """
    return NodeAccessor(database).children(row)


def is_context(row: Row) -> bool:
    return NodeAccessor.is_context(row)


def is_text(row: Row) -> bool:
    return NodeAccessor.is_text(row)


def governing_context(database: Database, row: Row) -> Row | None:
    """Nearest enclosing/preceding CONTEXT element for any node row.

    Walk up parent links; at each level, if the current node's element
    chain contains a CONTEXT ancestor, that wins; otherwise scan the
    preceding siblings (via ordinals) for the latest CONTEXT element.
    Returns None for front matter that precedes every context.
    """
    return NodeAccessor(database).governing_context(row)


def section_scope(database: Database, context_row: Row) -> list[Row]:
    """Rows forming the section governed by ``context_row``.

    The scope is every following sibling (and its whole subtree) up to,
    but not including, the next CONTEXT sibling.  The walk uses SIBLINGID
    forward hops, exactly the "traversing back down the tree structure via
    the sibling node" step of the paper.
    """
    return NodeAccessor(database).section_scope(context_row)


def section_text(database: Database, context_row: Row) -> str:
    """The content text of the section governed by ``context_row``."""
    return NodeAccessor(database).section_text(context_row)


def context_title(database: Database, context_row: Row) -> str:
    """The heading text of a CONTEXT element (its TEXT descendants)."""
    return NodeAccessor(database).context_title(context_row)


def scope_rowids(database: Database, context_row: Row) -> set[RowId]:
    """The physical rowids of a section scope (for containment tests)."""
    return NodeAccessor(database).scope_rowids(context_row)


def iter_contexts(database: Database, doc_id: int) -> Iterator[Row]:
    """Every CONTEXT element row of one document, in NODEID order."""
    xml_table = database.table(XML_TABLE)
    rows = [
        row
        for row in xml_table.lookup("DOC_ID", doc_id)
        if is_context(row)
    ]
    rows.sort(key=lambda row: row["NODEID"])
    yield from rows
