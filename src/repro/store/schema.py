"""The NETMARK generated schema (paper Fig 5).

Two tables store *every* document of *any* type — the schema-less claim:

``DOC``  — one row per stored document:
    ``DOC_ID`` (PK), ``FILE_NAME``, ``FILE_DATE``, ``FILE_SIZE``,
    plus ``FORMAT`` and ``METADATA`` (converter facts, serialised
    ``key=value;`` text) which the paper's figure omits but its
    applications clearly use.

``XML`` — one row per decomposed node:
    ``NODEID`` (PK), ``DOC_ID`` (FK to DOC),
    ``PARENTROWID`` — *physical ROWID* of the parent node row,
    ``PARENTNODEID`` — logical id of the parent (survives export),
    ``SIBLINGID`` — physical ROWID of the **next** sibling node row,
    ``NODETYPE`` — the five-way NETMARK type (1..5),
    ``NODENAME`` — element tag (NULL for text nodes),
    ``NODEDATA`` — character data (NULL for element nodes),
    ``ORDINAL`` — position among siblings (keeps reconstruction
    deterministic; implicit in Oracle's physical order, explicit here),
    ``ATTRS`` — serialised element attributes.

Indexes created with the schema: B+trees on ``XML.DOC_ID``,
``XML.NODENAME`` and ``XML.NODETYPE`` plus the text index on
``XML.NODEDATA`` (the Oracle Text stand-in the query path hits first).
"""

from __future__ import annotations

from repro.ordbms import (
    CLOB,
    INTEGER,
    ROWID,
    TIMESTAMP,
    VARCHAR,
    Column,
    Database,
    ForeignKey,
    Table,
    TableSchema,
)

DOC_TABLE = "DOC"
XML_TABLE = "XML"


def doc_schema() -> TableSchema:
    """Schema for the DOC table."""
    return TableSchema(
        name=DOC_TABLE,
        columns=(
            Column("DOC_ID", INTEGER, nullable=False),
            Column("FILE_NAME", VARCHAR, nullable=False),
            Column("FILE_DATE", TIMESTAMP),
            Column("FILE_SIZE", INTEGER),
            Column("FORMAT", VARCHAR),
            Column("METADATA", CLOB),
        ),
        primary_key="DOC_ID",
    )


def xml_schema() -> TableSchema:
    """Schema for the XML node table."""
    return TableSchema(
        name=XML_TABLE,
        columns=(
            Column("NODEID", INTEGER, nullable=False),
            Column("DOC_ID", INTEGER, nullable=False),
            Column("PARENTROWID", ROWID),
            Column("PARENTNODEID", INTEGER),
            Column("SIBLINGID", ROWID),
            Column("NODETYPE", INTEGER, nullable=False),
            Column("NODENAME", VARCHAR),
            Column("NODEDATA", CLOB),
            Column("ORDINAL", INTEGER, nullable=False, default=0),
            Column("ATTRS", CLOB),
        ),
        primary_key="NODEID",
        foreign_keys=(ForeignKey("DOC_ID", DOC_TABLE, "DOC_ID"),),
    )


def create_netmark_schema(database: Database) -> tuple[Table, Table]:
    """Create DOC and XML with their indexes; returns ``(doc, xml)``.

    This is the *only* DDL NETMARK ever issues — storing a new document
    type never adds to it (the property FIG5's ablation measures).
    """
    doc_table = database.create_table(doc_schema())
    xml_table = database.create_table(xml_schema())
    xml_table.create_index("DOC_ID")
    xml_table.create_index("PARENTNODEID")
    xml_table.create_index("NODENAME")
    xml_table.create_index("NODETYPE")
    xml_table.create_text_index("NODEDATA")
    return doc_table, xml_table


def encode_metadata(metadata: dict[str, object]) -> str:
    """Serialise converter metadata into the METADATA column text."""
    return ";".join(
        f"{key}={value}" for key, value in sorted(metadata.items())
    )


def decode_metadata(text: str | None) -> dict[str, str]:
    """Parse the METADATA column text back into a dict (values as text)."""
    if not text:
        return {}
    result: dict[str, str] = {}
    for pair in text.split(";"):
        if "=" in pair:
            key, _, value = pair.partition("=")
            result[key] = value
    return result


def encode_attributes(attributes: dict[str, str]) -> str | None:
    """Serialise element attributes for the ATTRS column."""
    if not attributes:
        return None
    # Tab/newline separators cannot collide with attribute text that the
    # tokenizer produced (it normalises them away inside values? no — so
    # escape them).
    parts = []
    for key, value in attributes.items():
        escaped = (
            value.replace("\\", "\\\\").replace("\t", "\\t").replace("\n", "\\n")
        )
        parts.append(f"{key}\t{escaped}")
    return "\n".join(parts)


def decode_attributes(text: str | None) -> dict[str, str]:
    """Parse the ATTRS column back into an attribute dict."""
    if not text:
        return {}
    result: dict[str, str] = {}
    for line in text.split("\n"):
        if "\t" not in line:
            continue
        key, _, escaped = line.partition("\t")
        value = []
        index = 0
        while index < len(escaped):
            char = escaped[index]
            if char == "\\" and index + 1 < len(escaped):
                nxt = escaped[index + 1]
                value.append({"\\": "\\", "t": "\t", "n": "\n"}.get(nxt, nxt))
                index += 2
            else:
                value.append(char)
                index += 1
        result[key] = "".join(value)
    return result
