"""The NETMARK XML Store: schema-less document storage (paper §2.1.1).

Any document decomposes into the same two tables (``XML`` and ``DOC``);
physical ROWID links give O(1) parent/sibling traversal; reconstruction
rebuilds documents and sections for retrieval and result composition.
"""

from repro.store.accessor import AccessorStats, NodeAccessor
from repro.store.compose import compose_document, compose_node, compose_section
from repro.store.decompose import DecomposeResult, Decomposer, classify_counts
from repro.store.fsck import (
    FsckReport,
    Violation,
    check_store,
    repair_store,
)
from repro.store.schema import (
    DOC_TABLE,
    XML_TABLE,
    create_netmark_schema,
    decode_attributes,
    decode_metadata,
    doc_schema,
    encode_attributes,
    encode_metadata,
    xml_schema,
)
from repro.store.traversal import (
    children_of,
    context_title,
    fetch_node,
    governing_context,
    is_context,
    is_text,
    iter_contexts,
    next_sibling_of,
    parent_of,
    scope_rowids,
    section_scope,
    section_text,
)
from repro.store.xmlstore import StoredDocument, XmlStore

__all__ = [
    "AccessorStats",
    "DOC_TABLE",
    "DecomposeResult",
    "Decomposer",
    "FsckReport",
    "NodeAccessor",
    "StoredDocument",
    "Violation",
    "XML_TABLE",
    "XmlStore",
    "check_store",
    "children_of",
    "classify_counts",
    "compose_document",
    "compose_node",
    "compose_section",
    "context_title",
    "create_netmark_schema",
    "decode_attributes",
    "decode_metadata",
    "doc_schema",
    "encode_attributes",
    "encode_metadata",
    "fetch_node",
    "governing_context",
    "is_context",
    "is_text",
    "iter_contexts",
    "next_sibling_of",
    "parent_of",
    "repair_store",
    "scope_rowids",
    "section_scope",
    "section_text",
    "xml_schema",
]
