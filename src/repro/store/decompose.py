"""Document decomposition: DOM tree -> XML-table node rows.

"The NETMARK 'SGML parser' decomposes the XML (or even HTML) documents
into its constituent nodes and dynamically inserts them into two primary
database tables — namely, XML and DOC."

The decomposer walks the DOM depth-first, emitting one row per node.
Parent links are physical ROWIDs (known by the time a child is inserted —
parents precede children in a depth-first walk); the **next-sibling**
ROWID can only be known after the next sibling is inserted, so sibling
links are patched with in-place updates as the walk proceeds.  The result
is the traversal structure the paper exploits: O(1) hops up (PARENTROWID)
and across (SIBLINGID).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from repro.ordbms import Database, RowId
from repro.sgml.config import NodeTypeConfig
from repro.sgml.dom import Document, Element, Node, Text
from repro.sgml.nodetypes import NodeType
from repro.store.schema import (
    DOC_TABLE,
    XML_TABLE,
    encode_attributes,
    encode_metadata,
)


@dataclass
class DecomposeResult:
    """What one document load produced."""

    doc_id: int
    root_rowid: RowId
    node_count: int


class Decomposer:
    """Stateful node-id allocator + document loader for one database."""

    def __init__(self, database: Database, config: NodeTypeConfig) -> None:
        self._database = database
        self._config = config
        self._next_doc_id = 1
        self._next_node_id = 1

    def resume(self, next_doc_id: int, next_node_id: int) -> None:
        """Resume id allocation past a restored snapshot's highest ids."""
        self._next_doc_id = next_doc_id
        self._next_node_id = next_node_id

    def load(self, document: Document, file_date: _dt.datetime | None = None) -> DecomposeResult:
        """Insert ``document`` into DOC + XML inside one transaction."""
        database = self._database
        doc_id = self._next_doc_id
        self._next_doc_id += 1
        size = document.metadata.get("char_size")
        with database.begin():
            database.insert(
                DOC_TABLE,
                {
                    "DOC_ID": doc_id,
                    "FILE_NAME": document.name or f"document-{doc_id}",
                    "FILE_DATE": file_date,
                    "FILE_SIZE": size if isinstance(size, int) else None,
                    "FORMAT": str(document.metadata.get("format", "unknown")),
                    "METADATA": encode_metadata(document.metadata),
                },
            )
            root_rowid, count = self._insert_subtree(
                document.root,
                doc_id=doc_id,
                parent_rowid=None,
                parent_nodeid=None,
                ordinal=0,
            )
        return DecomposeResult(doc_id=doc_id, root_rowid=root_rowid, node_count=count)

    # -- internals -----------------------------------------------------------

    def _insert_subtree(
        self,
        node: Node,
        doc_id: int,
        parent_rowid: RowId | None,
        parent_nodeid: int | None,
        ordinal: int,
    ) -> tuple[RowId, int]:
        database = self._database
        node_id = self._next_node_id
        self._next_node_id += 1
        node_type = self._config.classify(node)
        if isinstance(node, Text):
            values = {
                "NODEID": node_id,
                "DOC_ID": doc_id,
                "PARENTROWID": parent_rowid,
                "PARENTNODEID": parent_nodeid,
                "NODETYPE": int(node_type),
                "NODENAME": None,
                "NODEDATA": node.data,
                "ORDINAL": ordinal,
                "ATTRS": None,
            }
            rowid = database.insert(XML_TABLE, values)
            return rowid, 1

        assert isinstance(node, Element)
        values = {
            "NODEID": node_id,
            "DOC_ID": doc_id,
            "PARENTROWID": parent_rowid,
            "PARENTNODEID": parent_nodeid,
            "NODETYPE": int(node_type),
            "NODENAME": node.tag,
            "NODEDATA": None,
            "ORDINAL": ordinal,
            "ATTRS": encode_attributes(node.attributes),
        }
        rowid = database.insert(XML_TABLE, values)
        count = 1
        previous_child_rowid: RowId | None = None
        for child_ordinal, child in enumerate(node.children):
            child_rowid, child_count = self._insert_subtree(
                child,
                doc_id=doc_id,
                parent_rowid=rowid,
                parent_nodeid=node_id,
                ordinal=child_ordinal,
            )
            count += child_count
            if previous_child_rowid is not None:
                # Patch the previous sibling's forward link now that its
                # successor's physical address is known.
                database.update(
                    XML_TABLE, previous_child_rowid, {"SIBLINGID": child_rowid}
                )
            previous_child_rowid = child_rowid
        return rowid, count


def classify_counts(
    database: Database, doc_id: int
) -> dict[NodeType, int]:
    """Histogram of node types for one document (test/diagnostic helper)."""
    xml_table = database.table(XML_TABLE)
    counts: dict[NodeType, int] = {}
    for row in xml_table.lookup("DOC_ID", doc_id):
        node_type = NodeType(row["NODETYPE"])
        counts[node_type] = counts.get(node_type, 0) + 1
    return counts
