"""The shared structural-lift memo cache (PR 10 tentpole, part 2).

A :class:`~repro.store.accessor.NodeAccessor` memoizes its structural
walks — governing contexts, context ancestors, section scopes, titles
and texts — but only for its own lifetime, which is one query.  Hot
workloads re-run the same lifts for every query: the governing-lift walk
over a popular section is recomputed from scratch each time even though
nothing changed.  A :class:`LiftCache` is the cross-query fix — one
instance lives on the :class:`~repro.store.xmlstore.XmlStore` and every
cache-enabled accessor reads through it.

Correctness model (see DESIGN.md §16):

* **One write-generation source of truth.**  Entries are only served to
  an accessor whose *version token* matches the cache's recorded
  position: live accessors present ``("gen", xml_table.generation)``,
  snapshot-pinned accessors present ``("lsn", snapshot.lsn)``.  The
  cache's position advances exactly when the store commits a document
  write (:meth:`note_write`, called by the store's ingest/delete hooks)
  — the same ``Table.generation`` counter that invalidates the
  accessor's private memos, so the two layers can never disagree about
  what "current" means.
* **Per-document invalidation.**  ``note_write`` drops only the changed
  document's entries; every other document's walks stay warm.  A
  generation move the store did *not* announce (direct database writes,
  WAL apply on a follower) trips :meth:`observe` and clears everything —
  the safe default for writers the facade does not see.
* **Snapshot isolation.**  A pinned reader's token is its commit LSN and
  never moves; the moment any write commits, the cache's LSN advances
  and the pinned reader simply stops matching.  A pinned reader
  therefore never sees an entry newer than its snapshot, and entries it
  admits were computed *from pinned reads* — valid for the live view too
  while the LSN has not moved, unreachable afterwards.
* **Admission, not locking, for staleness.**  Readers compute outside
  the lock; :meth:`put` re-checks the token under the lock and silently
  drops entries computed against a view the cache has moved past
  (the stale-put TOCTOU race under the worker pool).

Values are immutable (rowids, rowid tuples, strings), so a served entry
can be shared freely across threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro import obs
from repro.errors import StoreError
from repro.ordbms import RowId

#: Cache-miss sentinel (``None`` is a legal cached lift value).
MISS: Any = object()

#: Version token: ``("gen", table-generation)`` for live accessors,
#: ``("lsn", snapshot-lsn)`` for pinned ones.
Token = tuple[str, int]

#: Default entry bound — roughly "a few hundred documents' worth of hot
#: sections"; evictions are counted, so a too-small bound is visible.
DEFAULT_CAPACITY = 8192


class LiftCache:
    """Cross-query memo for structural lifts, one per store."""

    def __init__(
        self, generation: int = 0, lsn: int = 0,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if capacity <= 0:
            raise StoreError("LiftCache capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        # repro: guarded-by(_lock) the write position the pool reflects;
        # advanced by note_write/observe, compared on every get/put.
        self._generation = generation
        # repro: guarded-by(_lock) commit LSN twin of _generation, the
        # token snapshot-pinned accessors are admitted against.
        self._lsn = lsn
        # repro: guarded-by(_lock) LRU pool, (doc, kind, rowid) -> value.
        self._entries: OrderedDict[tuple[int, str, RowId], Any] = (
            OrderedDict()
        )
        # repro: guarded-by(_lock) doc -> its keys, for per-doc drops.
        self._doc_keys: dict[int, set[tuple[int, str, RowId]]] = {}
        # repro: guarded-by(_lock) work counters, published as
        # repro_cache_* series by the callers that drain them.
        self.hits = 0
        # repro: guarded-by(_lock) see ``hits``.
        self.misses = 0
        # repro: guarded-by(_lock) see ``hits``.
        self.evictions = 0
        # repro: guarded-by(_lock) full clears + per-doc drops.
        self.invalidations = 0
        # repro: guarded-by(_lock) stale puts rejected by admission.
        self.rejected_puts = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- version tracking ---------------------------------------------------

    def _current(self, token: Token) -> bool:
        kind, position = token
        if kind == "gen":
            return position == self._generation
        return position == self._lsn

    def note_write(self, generation: int, lsn: int, doc_id: int) -> None:
        """Advance past a committed document write; drop that doc only."""
        with self._lock:
            self._drop_doc(doc_id)
            self._generation = generation
            self._lsn = lsn
            self.invalidations += 1

    def observe(self, generation: int, lsn: int) -> None:
        """Catch up with a write the store did not announce.

        Called by live accessors whose generation guard tripped.  If the
        cache already sits at ``generation`` (the common case: the
        store's own hooks ran first) this is a no-op; otherwise some
        writer bypassed the facade and nothing can be trusted — clear
        the pool wholesale.
        """
        with self._lock:
            if generation == self._generation:
                return
            self._entries.clear()
            self._doc_keys.clear()
            self._generation = generation
            self._lsn = lsn
            self.invalidations += 1

    def _drop_doc(self, doc_id: int) -> None:
        for key in self._doc_keys.pop(doc_id, ()):
            self._entries.pop(key, None)

    # -- entry access -------------------------------------------------------

    def get(
        self, doc_id: int, kind: str, rowid: RowId, token: Token
    ) -> Any:
        """The memoized lift value, or :data:`MISS`."""
        key = (doc_id, kind, rowid)
        with self._lock:
            if not self._current(token):
                self.misses += 1
                return MISS
            if key not in self._entries:
                self.misses += 1
                return MISS
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]

    def put(
        self, doc_id: int, kind: str, rowid: RowId, value: Any,
        token: Token,
    ) -> None:
        """Admit a computed lift — unless the world moved meanwhile."""
        key = (doc_id, kind, rowid)
        with self._lock:
            if not self._current(token):
                # Computed against a view the cache has moved past (or
                # not yet caught up with): admitting it could serve a
                # walk from the wrong generation.  Drop it.
                self.rejected_puts += 1
                return
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._doc_keys.setdefault(doc_id, set()).add(key)
            while len(self._entries) > self.capacity:
                old_key, _ = self._entries.popitem(last=False)
                self._doc_keys.get(old_key[0], set()).discard(old_key)
                self.evictions += 1
                obs.inc("repro_cache_evictions_total", cache="lift")

    # -- introspection ------------------------------------------------------

    def snapshot_counters(self) -> dict[str, int]:
        """A consistent copy of the work counters (tests, /metrics)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "rejected_puts": self.rejected_puts,
                "entries": len(self._entries),
            }
