"""Crash recovery: rebuild a :class:`Database` from its log device.

ARIES-lite, sized to the single-writer engine: one forward pass over the
log replays every mutation *physically* — inserts must land at exactly
the ROWID the log recorded, which is what lets ``PARENTROWID`` /
``SIBLINGID`` values stored inside rows survive a crash — and resolves
transactions as their COMMIT / ROLLBACK / TRUNCATE records stream past.
Whatever is still unresolved at the end of the log died with the process
and is undone from its logged before-images (the *losers*).

Two properties fall out of the design and are what the crash harness
asserts:

* **Atomicity** — recovered state equals the pre- or post-transaction
  state, never anything in between, because a transaction's mutations
  are kept only once its COMMIT record is durable.
* **Physical identity** — every replayed insert is verified to land at
  the logged address, and every update/delete pre-image is compared
  against the recovered heap; any disagreement means the log and the
  checkpoint diverged, and recovery refuses with
  :class:`~repro.errors.RecoveryError` rather than guess.

Rolled-back transactions are replayed *then* undone at their ROLLBACK
record's position in the LSN stream — not skipped — so that slot
allocation during replay matches slot allocation during the original
run exactly (a skipped insert would shift every later row's address).

Derived state (B+tree and text indexes) is rebuilt incrementally as
rows are applied; checkpoints load through :mod:`repro.ordbms.snapshot`,
which rebuilds indexes the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.errors import CatalogError, RecoveryError, RowIdError
from repro.ordbms.database import Database
from repro.ordbms.snapshot import load_database
from repro.ordbms.table import Table
from repro.ordbms.wal import (
    AUTOCOMMIT_TXID,
    BEGIN,
    COMMIT,
    DELETE,
    INSERT,
    ROLLBACK,
    TRUNCATE,
    UPDATE,
    LogDevice,
    WalRecord,
    WriteAheadLog,
    decode_checkpoint,
    highest_txid,
    parse_log,
)


class StreamReplayer:
    """Incremental ARIES-lite replay: one record at a time.

    The follower half of WAL shipping (``repro.cluster``) and the inner
    loop of :func:`recover` share this machinery.  Records at or below
    ``applied_lsn`` are skipped — the property that makes catch-up after
    a checkpoint install idempotent — and every applied mutation goes
    through the same physical verification as crash recovery.

    Transactions stay *open* across :meth:`apply` calls until their
    COMMIT / ROLLBACK record streams past; :meth:`discard_in_flight`
    undoes whatever is still open (the loser-discard step, used at
    end-of-log and at failover promotion).
    """

    def __init__(self, database: Database, applied_lsn: int = 0) -> None:
        self.database = database
        self.applied_lsn = applied_lsn
        self._open: dict[int, list[WalRecord]] = {}
        self.records_applied = 0
        self.transactions_committed = 0
        self.transactions_rolled_back = 0

    @property
    def in_flight(self) -> tuple[int, ...]:
        """Transaction ids begun but not yet resolved, ascending."""
        return tuple(sorted(self._open))

    def apply(self, record: WalRecord) -> bool:
        """Replay one record; returns False when it was already covered."""
        if record.lsn <= self.applied_lsn:
            # Already folded into the checkpoint (or already shipped):
            # skipping is what makes replay and catch-up idempotent.
            return False
        if record.kind == BEGIN:
            if record.txid in self._open:
                raise RecoveryError(
                    f"LSN {record.lsn}: BEGIN for transaction "
                    f"{record.txid} which is already open"
                )
            self._open[record.txid] = []
        elif record.kind in (INSERT, UPDATE, DELETE):
            mutations = _mutations_of(self._open, record)
            _apply(self.database, record)
            if mutations is not None:
                mutations.append(record)
            self.records_applied += 1
        elif record.kind == COMMIT:
            _close(self._open, record)
            self.transactions_committed += 1
        elif record.kind == ROLLBACK:
            for mutation in reversed(_close(self._open, record)):
                _undo(self.database, mutation)
            self.transactions_rolled_back += 1
        elif record.kind == TRUNCATE:
            mutations = _close(self._open, record)
            self._open[record.txid] = mutations  # stays open
            if not 0 <= record.keep <= len(mutations):
                raise RecoveryError(
                    f"LSN {record.lsn}: TRUNCATE keeps {record.keep} of "
                    f"{len(mutations)} logged mutations"
                )
            for mutation in reversed(mutations[record.keep:]):
                _undo(self.database, mutation)
            del mutations[record.keep:]
        # CHECKPOINT markers carry no state; they only advance the LSN.
        self.applied_lsn = record.lsn
        return True

    def discard_in_flight(self) -> tuple[int, ...]:
        """Undo every open transaction (newest mutation first).

        Returns the discarded transaction ids — the *losers* at a crash
        or failover: their mutations were durable but their commit never
        was, so recovered state must not contain them.
        """
        losers = tuple(sorted(self._open))
        leftovers = [
            record
            for mutations in self._open.values()
            for record in mutations
        ]
        leftovers.sort(key=lambda record: record.lsn)
        for record in reversed(leftovers):
            _undo(self.database, record)
        self._open.clear()
        return losers


@dataclass(frozen=True)
class RecoveryResult:
    """What one recovery pass did, for logs, tests and post-mortems."""

    database: Database
    checkpoint_lsn: int
    last_lsn: int
    records_replayed: int
    transactions_committed: int
    transactions_rolled_back: int
    #: Transaction ids that were open when the process died; their
    #: mutations were undone from logged before-images.
    losers_discarded: tuple[int, ...]
    #: Human-readable reason the log's tail was truncated (torn write),
    #: or None when the log parsed cleanly to its end.
    torn_tail: str | None


def recover(device: LogDevice, name: str = "recovered") -> RecoveryResult:
    """Rebuild the database held by ``device`` and resume its WAL.

    Loads the checkpoint (if any), replays log records with LSNs above
    the checkpoint's, undoes losers, trims any torn tail off the device,
    and attaches a resumed :class:`~repro.ordbms.wal.WriteAheadLog` so
    the returned database is immediately writable-and-durable again.

    Raises :class:`~repro.errors.CorruptLogError` for mid-log damage
    (never silently skipped) and :class:`~repro.errors.RecoveryError`
    when the log disagrees with the checkpoint it claims to extend.
    """
    checkpoint_text = device.load_checkpoint()
    if checkpoint_text is None:
        database = Database(name)
        checkpoint_lsn = 0
    else:
        checkpoint_lsn, snapshot_text = decode_checkpoint(checkpoint_text)
        database = load_database(snapshot_text, name)
    records, torn_tail = parse_log(device.read_log())
    if torn_tail is not None:
        # Physically drop the torn bytes: appends after a damaged tail
        # would otherwise read as mid-log corruption on the next boot.
        device.truncate_log()
        for record in records:
            device.append(record.encode())
        device.sync()
    result = _replay(database, records, checkpoint_lsn, torn_tail)
    last_lsn = max(checkpoint_lsn, records[-1].lsn if records else 0)
    wal = WriteAheadLog(device, start_lsn=last_lsn + 1)
    database.attach_wal(wal, next_txid=highest_txid(records) + 1)
    obs.inc("repro_ordbms_recovery_runs_total")
    obs.inc("repro_ordbms_recovery_records_replayed_total", result[0])
    obs.inc("repro_ordbms_recovery_losers_discarded_total", len(result[3]))
    if torn_tail is not None:
        obs.inc("repro_ordbms_recovery_torn_tails_total")
    if checkpoint_text is not None:
        obs.inc("repro_ordbms_recovery_checkpoint_loads_total")
    return RecoveryResult(
        database=database,
        checkpoint_lsn=checkpoint_lsn,
        last_lsn=last_lsn,
        records_replayed=result[0],
        transactions_committed=result[1],
        transactions_rolled_back=result[2],
        losers_discarded=result[3],
        torn_tail=torn_tail,
    )


def _replay(
    database: Database,
    records: list[WalRecord],
    checkpoint_lsn: int,
    torn_tail: str | None,
) -> tuple[int, int, int, tuple[int, ...]]:
    """Forward pass; returns (replayed, committed, rolled_back, losers)."""
    replayer = StreamReplayer(database, applied_lsn=checkpoint_lsn)
    for record in records:
        replayer.apply(record)
    # Whatever is still open died with the process: undo newest-first
    # across all losers (single-writer means at most one in practice).
    losers = replayer.discard_in_flight()
    return (
        replayer.records_applied,
        replayer.transactions_committed,
        replayer.transactions_rolled_back,
        losers,
    )


@dataclass(frozen=True)
class FollowerRecovery:
    """A device reopened for *replication*, not for writing.

    Unlike :func:`recover`, no write-ahead log is attached: a follower
    never allocates LSNs of its own — every record it will ever apply
    arrives from the coordinator's shipped stream.  The returned
    :class:`StreamReplayer` is positioned at the device's last durable
    record, with any transaction that was in flight at the crash left
    *open* (its commit may still be shipped); promotion to coordinator
    goes through :func:`recover` instead, which discards those losers.
    """

    database: Database
    replayer: StreamReplayer
    checkpoint_lsn: int
    #: Reason the tail was trimmed (the follower died mid-append), or
    #: None when the shipped log parsed cleanly to its end.
    torn_tail: str | None


def recover_follower(
    device: LogDevice, name: str = "replica"
) -> FollowerRecovery:
    """Rebuild a follower's applied state from its shipped-log device.

    Loads the checkpoint (if any), trims a torn tail physically (a
    follower killed mid-append must ack from its last *durable* record,
    never past it), and replays the surviving records through a
    :class:`StreamReplayer` that stays attached for further shipping.

    Raises :class:`~repro.errors.CorruptLogError` for mid-log damage —
    the caller (the cluster membership layer) quarantines the replica
    rather than replaying past corruption.
    """
    checkpoint_text = device.load_checkpoint()
    if checkpoint_text is None:
        database = Database(name)
        checkpoint_lsn = 0
    else:
        checkpoint_lsn, snapshot_text = decode_checkpoint(checkpoint_text)
        database = load_database(snapshot_text, name)
    records, torn_tail = parse_log(device.read_log())
    if torn_tail is not None:
        device.truncate_log()
        for record in records:
            device.append(record.encode())
        device.sync()
    replayer = StreamReplayer(database, applied_lsn=checkpoint_lsn)
    for record in records:
        replayer.apply(record)
    obs.inc("repro_ordbms_recovery_runs_total")
    obs.inc(
        "repro_ordbms_recovery_records_replayed_total",
        replayer.records_applied,
    )
    if torn_tail is not None:
        obs.inc("repro_ordbms_recovery_torn_tails_total")
    return FollowerRecovery(
        database=database,
        replayer=replayer,
        checkpoint_lsn=checkpoint_lsn,
        torn_tail=torn_tail,
    )


def _mutations_of(
    open_transactions: dict[int, list[WalRecord]], record: WalRecord
) -> list[WalRecord] | None:
    """The open mutation list ``record`` belongs to (None = autocommit)."""
    if record.txid == AUTOCOMMIT_TXID:
        return None
    try:
        return open_transactions[record.txid]
    except KeyError:
        raise RecoveryError(
            f"LSN {record.lsn}: {record.kind} for transaction "
            f"{record.txid} which has no BEGIN record"
        ) from None


def _close(
    open_transactions: dict[int, list[WalRecord]], record: WalRecord
) -> list[WalRecord]:
    try:
        return open_transactions.pop(record.txid)
    except KeyError:
        raise RecoveryError(
            f"LSN {record.lsn}: {record.kind} for transaction "
            f"{record.txid} which has no BEGIN record"
        ) from None


def _table(database: Database, record: WalRecord) -> Table:
    try:
        return database.catalog.table(record.table)
    except CatalogError:
        raise RecoveryError(
            f"LSN {record.lsn}: record names table {record.table!r} "
            f"which the checkpoint does not define"
        ) from None


def _apply(database: Database, record: WalRecord) -> None:
    """Redo one mutation physically, verifying addresses and pre-images."""
    table = _table(database, record)
    heap = table._heap  # noqa: SLF001 - physical replay, like snapshot.py
    assert record.rowid is not None
    if record.kind == INSERT:
        assert record.after is not None
        landed = heap.insert(record.after)
        if landed != record.rowid:
            raise RecoveryError(
                f"LSN {record.lsn}: replayed insert landed at {landed}, "
                f"log recorded {record.rowid} — slot allocation diverged"
            )
        table._index_row(landed, record.after)  # noqa: SLF001
        return
    current = _fetch(heap, table, record)
    if current != record.before:
        raise RecoveryError(
            f"LSN {record.lsn}: {record.kind} pre-image disagrees with "
            f"recovered row at {record.rowid} in {record.table}"
        )
    if record.kind == UPDATE:
        assert record.after is not None
        table._unindex_row(record.rowid, current)  # noqa: SLF001
        heap.update(record.rowid, record.after)
        table._index_row(record.rowid, record.after)  # noqa: SLF001
    else:  # DELETE
        heap.delete(record.rowid)
        table._unindex_row(record.rowid, current)  # noqa: SLF001


def _undo(database: Database, record: WalRecord) -> None:
    """Reverse one already-applied mutation from its logged images."""
    table = _table(database, record)
    heap = table._heap  # noqa: SLF001
    assert record.rowid is not None
    try:
        if record.kind == INSERT:
            assert record.after is not None
            heap.delete(record.rowid)
            table._unindex_row(record.rowid, record.after)  # noqa: SLF001
        elif record.kind == UPDATE:
            assert record.before is not None and record.after is not None
            table._unindex_row(record.rowid, record.after)  # noqa: SLF001
            heap.update(record.rowid, record.before)
            table._index_row(record.rowid, record.before)  # noqa: SLF001
        else:  # DELETE
            assert record.before is not None
            heap.restore(record.rowid, record.before)
            table._index_row(record.rowid, record.before)  # noqa: SLF001
    except RowIdError as error:
        raise RecoveryError(
            f"LSN {record.lsn}: cannot undo {record.kind} at "
            f"{record.rowid} in {record.table}: {error}"
        ) from error


def _fetch(heap, table: Table, record: WalRecord):
    try:
        return heap.fetch(record.rowid)
    except RowIdError as error:
        raise RecoveryError(
            f"LSN {record.lsn}: {record.kind} addresses {record.rowid} "
            f"in {record.table} but the recovered heap has no such row"
        ) from error
