"""Column types for the ORDBMS substrate.

The engine supports a deliberately small set of scalar types — the ones the
NETMARK generated schema (Fig 5 of the paper) actually needs: integers,
floats, strings (``VARCHAR``/``CLOB``), timestamps, and ``ROWID`` values
used for the parent/sibling physical links that make tree traversal fast.

Types are represented as singleton :class:`DataType` instances; columns
reference them by object identity.  Each type knows how to validate and
coerce Python values, which keeps the table layer free of per-type
branching.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any

from repro.errors import TypeMismatchError
from repro.ordbms.rowid import RowId


class DataType:
    """A scalar column type.

    Parameters
    ----------
    name:
        SQL-ish display name, e.g. ``"INTEGER"``.
    pytypes:
        Python types accepted for values of this column type.
    """

    def __init__(self, name: str, pytypes: tuple[type, ...]) -> None:
        self.name = name
        self._pytypes = pytypes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataType({self.name})"

    def validate(self, value: Any, column: str = "?") -> Any:
        """Return ``value`` coerced for storage, or raise.

        ``None`` is always accepted here; NOT NULL enforcement is the
        table layer's job because it depends on the column definition,
        not the type.
        """
        if value is None:
            return None
        coerced = self.coerce(value)
        if coerced is None:
            raise TypeMismatchError(
                f"column {column!r} expects {self.name}, got "
                f"{type(value).__name__} ({value!r})"
            )
        return coerced

    def coerce(self, value: Any) -> Any:
        """Return the storage representation of ``value`` or ``None``."""
        if isinstance(value, self._pytypes):
            return value
        return None


class _IntegerType(DataType):
    def __init__(self) -> None:
        super().__init__("INTEGER", (int,))

    def coerce(self, value: Any) -> Any:
        # bool is an int subclass but almost always a caller bug here.
        if isinstance(value, bool):
            return None
        return super().coerce(value)


class _FloatType(DataType):
    def __init__(self) -> None:
        super().__init__("FLOAT", (float, int))

    def coerce(self, value: Any) -> Any:
        if isinstance(value, bool):
            return None
        if isinstance(value, int):
            return float(value)
        return super().coerce(value)


class _VarcharType(DataType):
    def __init__(self, name: str = "VARCHAR") -> None:
        super().__init__(name, (str,))


class _TimestampType(DataType):
    def __init__(self) -> None:
        super().__init__("TIMESTAMP", (_dt.datetime,))

    def coerce(self, value: Any) -> Any:
        if isinstance(value, str):
            try:
                return _dt.datetime.fromisoformat(value)
            except ValueError:
                return None
        return super().coerce(value)


class _RowIdType(DataType):
    def __init__(self) -> None:
        super().__init__("ROWID", (RowId,))


#: Singleton type instances, referenced by :class:`~repro.ordbms.schema.Column`.
INTEGER = _IntegerType()
FLOAT = _FloatType()
VARCHAR = _VarcharType("VARCHAR")
#: Large text values (node data); identical semantics to VARCHAR here but
#: kept distinct so the catalog mirrors the paper's Oracle schema.
CLOB = _VarcharType("CLOB")
TIMESTAMP = _TimestampType()
ROWID = _RowIdType()

ALL_TYPES: tuple[DataType, ...] = (INTEGER, FLOAT, VARCHAR, CLOB, TIMESTAMP, ROWID)
