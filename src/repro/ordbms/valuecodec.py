"""Typed-value text encoding shared by snapshots and the write-ahead log.

One encoding, two consumers: :mod:`repro.ordbms.snapshot` serialises
whole heaps with it and :mod:`repro.ordbms.wal` serialises per-record row
images — recovery can only promise byte-identical restored state because
both speak exactly the same dialect.

Encoding: ``~`` NULL, ``i:<n>``, ``f:<repr>``, ``s:<escaped>``,
``t:<iso>``, ``r:<rowid>``.  Strings escape backslash, tab, newline and
carriage return, so an encoded value never contains a raw line or field
separator.  A whole row packs into a single whitespace-free token
(:func:`pack_row`): values join on raw tabs, then the joined text is
escaped *again* (backslash first, then space/tab/newline) — standard
nesting, so inner escapes and separator escapes can never collide.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any

from repro.errors import DatabaseError
from repro.ordbms.rowid import RowId


def escape(text: str) -> str:
    """Escape backslash, tab, newline and carriage return."""
    return (
        text.replace("\\", "\\\\").replace("\t", "\\t").replace("\n", "\\n")
        .replace("\r", "\\r")
    )


def unescape(text: str) -> str:
    """Invert :func:`escape` (unknown escapes pass the char through)."""
    out: list[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\" and index + 1 < len(text):
            out.append(
                {"\\": "\\", "t": "\t", "n": "\n", "r": "\r"}.get(
                    text[index + 1], text[index + 1]
                )
            )
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def encode_value(value: Any) -> str:
    """Encode one storable value as tagged text."""
    if value is None:
        return "~"
    if isinstance(value, bool):
        raise DatabaseError("boolean values are not storable")
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value!r}"
    if isinstance(value, str):
        return f"s:{escape(value)}"
    if isinstance(value, _dt.datetime):
        return f"t:{value.isoformat()}"
    if isinstance(value, RowId):
        return f"r:{value.encode()}"
    raise DatabaseError(f"cannot encode value of type {type(value).__name__}")


def decode_value(text: str) -> Any:
    """Invert :func:`encode_value`."""
    if text == "~":
        return None
    tag, _, body = text.partition(":")
    if tag == "i":
        return int(body)
    if tag == "f":
        return float(body)
    if tag == "s":
        return unescape(body)
    if tag == "t":
        return _dt.datetime.fromisoformat(body)
    if tag == "r":
        return RowId.decode(body)
    raise DatabaseError(f"bad encoded value {text!r}")


#: Sentinel for a zero-column row image (cannot collide with real
#: payloads: every non-empty pack starts with an encoded value tag).
_EMPTY_ROW = "-"


def pack_row(values: tuple[Any, ...]) -> str:
    """Pack a whole row image into one whitespace-free token."""
    joined = "\t".join(encode_value(value) for value in values)
    if not joined:
        return _EMPTY_ROW
    return (
        joined.replace("\\", "\\\\").replace("\t", "\\t")
        .replace("\n", "\\n").replace(" ", "\\s")
    )


def unpack_row(token: str) -> tuple[Any, ...]:
    """Invert :func:`pack_row`."""
    if token == _EMPTY_ROW:
        return ()
    out: list[str] = []
    index = 0
    while index < len(token):
        char = token[index]
        if char == "\\" and index + 1 < len(token):
            out.append(
                {"\\": "\\", "t": "\t", "n": "\n", "s": " "}.get(
                    token[index + 1], token[index + 1]
                )
            )
            index += 2
        else:
            out.append(char)
            index += 1
    joined = "".join(out)
    return tuple(decode_value(part) for part in joined.split("\t"))
