"""Object-relational DBMS substrate.

A from-scratch, in-process database engine standing in for the Oracle
ORDBMS underneath the paper's NETMARK XML Store.  It provides exactly the
primitives NETMARK's design exploits:

* heap tables with stable **physical ROWIDs** and O(1) fetch-by-rowid,
* B+tree secondary indexes,
* an inverted **text index** (the Oracle Text substitute),
* a predicate/plan executor for structured queries,
* single-writer transactions with logical undo.

Entry point: :class:`Database`.
"""

from repro.ordbms.btree import BTreeIndex
from repro.ordbms.catalog import Catalog
from repro.ordbms.database import Database, DatabaseStats
from repro.ordbms.expr import (
    And,
    Col,
    Compare,
    Expr,
    InList,
    IsNull,
    Like,
    Lit,
    Not,
    Or,
    conjuncts,
    equality_on,
)
from repro.ordbms.executor import (
    Aggregate,
    AggSpec,
    Distinct,
    Filter,
    HashJoin,
    IndexLookup,
    IndexRange,
    Limit,
    NestedLoopJoin,
    PlanNode,
    Project,
    SeqScan,
    Sort,
    TextSearch,
    UnionAll,
    Values,
    execute,
)
from repro.ordbms.mvcc import ABSENT, MvccState, Snapshot
from repro.ordbms.recovery import RecoveryResult, recover
from repro.ordbms.rowid import RowId
from repro.ordbms.schema import Column, ForeignKey, TableSchema
from repro.ordbms.snapshot import dump_database, load_database
from repro.ordbms.sql import SqlError, SqlResult, execute_sql
from repro.ordbms.table import ROWID_PSEUDO, Table
from repro.ordbms.textindex import STOPWORDS, TextIndex, tokenize
from repro.ordbms.transaction import Transaction
from repro.ordbms.types import (
    ALL_TYPES,
    CLOB,
    FLOAT,
    INTEGER,
    ROWID,
    TIMESTAMP,
    VARCHAR,
    DataType,
)
from repro.ordbms.valuecodec import decode_value, encode_value
from repro.ordbms.wal import (
    FileLogDevice,
    LogDevice,
    MemoryLogDevice,
    WalRecord,
    WriteAheadLog,
)

__all__ = [
    "ABSENT",
    "ALL_TYPES",
    "Aggregate",
    "AggSpec",
    "And",
    "BTreeIndex",
    "CLOB",
    "Catalog",
    "Col",
    "Column",
    "Compare",
    "Database",
    "DatabaseStats",
    "DataType",
    "Distinct",
    "Expr",
    "FLOAT",
    "FileLogDevice",
    "Filter",
    "ForeignKey",
    "HashJoin",
    "INTEGER",
    "InList",
    "IndexLookup",
    "IndexRange",
    "IsNull",
    "Like",
    "Limit",
    "Lit",
    "LogDevice",
    "MemoryLogDevice",
    "MvccState",
    "NestedLoopJoin",
    "Not",
    "Or",
    "PlanNode",
    "Project",
    "ROWID",
    "ROWID_PSEUDO",
    "RecoveryResult",
    "RowId",
    "STOPWORDS",
    "SeqScan",
    "Snapshot",
    "Sort",
    "SqlError",
    "SqlResult",
    "TIMESTAMP",
    "Table",
    "TableSchema",
    "TextIndex",
    "TextSearch",
    "Transaction",
    "UnionAll",
    "VARCHAR",
    "Values",
    "WalRecord",
    "WriteAheadLog",
    "conjuncts",
    "decode_value",
    "dump_database",
    "encode_value",
    "equality_on",
    "execute",
    "execute_sql",
    "load_database",
    "recover",
    "tokenize",
]
