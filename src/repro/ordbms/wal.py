"""The write-ahead log: record-oriented durability for the ORDBMS.

"Nothing more than an intelligent storage component" must survive a
crash.  This module gives the in-memory substrate its durability story:

* a record grammar — ``BEGIN`` / ``INSERT`` / ``UPDATE`` / ``DELETE`` /
  ``COMMIT`` / ``ROLLBACK`` / ``TRUNCATE`` (savepoint release) /
  ``CHECKPOINT`` — with monotonically increasing LSNs and a per-record
  CRC32 over the body;
* torn-tail detection: a damaged record *at the end* of the log is a
  torn write (the crash interrupted the append) and is silently
  truncated, while a damaged record *followed by* well-formed records is
  in-place corruption and raises :class:`~repro.errors.CorruptLogError`;
* a pluggable :class:`LogDevice` (in-memory and file-backed) that
  ``repro.resilience.FaultPlan.wrap_log_device`` can proxy to inject
  torn, partial and silently-corrupted writes deterministically;
* the checkpoint protocol: a checkpoint is a full
  :mod:`repro.ordbms.snapshot` dump stamped with the LSN it covers plus
  a CRC, stored on the device's checkpoint slot, after which the log is
  truncated.  Recovery loads the checkpoint and replays only records
  with a higher LSN, so a crash *between* checkpoint save and log
  truncation replays idempotently.

Row images travel as single whitespace-free tokens via
:func:`repro.ordbms.valuecodec.pack_row`, so every record body is a flat
space-separated line — trivially CRC-able and human-debuggable.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import Any, Iterable

from repro import obs
from repro.errors import CorruptLogError, WalError
from repro.ordbms.rowid import RowId
from repro.ordbms.valuecodec import pack_row, unpack_row

#: Record kinds, in the vocabulary recovery understands.
BEGIN = "BEGIN"
INSERT = "INSERT"
UPDATE = "UPDATE"
DELETE = "DELETE"
COMMIT = "COMMIT"
ROLLBACK = "ROLLBACK"
TRUNCATE = "TRUNCATE"
CHECKPOINT = "CHECKPOINT"

KINDS = frozenset(
    {BEGIN, INSERT, UPDATE, DELETE, COMMIT, ROLLBACK, TRUNCATE, CHECKPOINT}
)

#: Header of the checkpoint slot: ``%NETMARK-CKPT <lsn> <crc>``.
CHECKPOINT_MAGIC = "%NETMARK-CKPT"

#: Transaction id carried by auto-committed (non-transactional) records;
#: recovery treats them as committed the moment they are durable.
AUTOCOMMIT_TXID = 0


def _crc(body: str) -> str:
    return f"{zlib.crc32(body.encode('utf-8')):08x}"


@dataclass(frozen=True)
class WalRecord:
    """One parsed log record.

    ``before``/``after`` are full row images (column-ordered tuples).
    Redo uses ``after``; undo of an unresolved transaction uses
    ``before`` — the reason UPDATE and DELETE carry their pre-image even
    though replay is redo-first.
    """

    lsn: int
    kind: str
    txid: int = AUTOCOMMIT_TXID
    table: str = ""
    rowid: RowId | None = None
    before: tuple[Any, ...] | None = None
    after: tuple[Any, ...] | None = None
    keep: int = 0  # TRUNCATE: mutation records of the txn to keep

    def encode(self) -> str:
        """Serialise to one log line (body, ``|``, CRC, newline)."""
        fields = [str(self.lsn), self.kind]
        if self.kind in (BEGIN, COMMIT, ROLLBACK):
            fields.append(str(self.txid))
        elif self.kind == TRUNCATE:
            fields += [str(self.txid), str(self.keep)]
        elif self.kind in (INSERT, UPDATE, DELETE):
            assert self.rowid is not None
            fields += [str(self.txid), self.table, self.rowid.encode()]
            if self.kind in (UPDATE, DELETE):
                assert self.before is not None
                fields.append(pack_row(self.before))
            if self.kind in (INSERT, UPDATE):
                assert self.after is not None
                fields.append(pack_row(self.after))
        elif self.kind != CHECKPOINT:
            raise WalError(f"unknown WAL record kind {self.kind!r}")
        body = " ".join(fields)
        return f"{body}|{_crc(body)}\n"


def _parse_body(body: str) -> WalRecord:
    """Parse a CRC-verified body; raises WalError on structure errors."""
    fields = body.split(" ")
    try:
        lsn = int(fields[0])
        kind = fields[1]
        if kind == CHECKPOINT:
            _expect(len(fields) == 2, body)
            return WalRecord(lsn, kind)
        txid = int(fields[2])
        if kind in (BEGIN, COMMIT, ROLLBACK):
            _expect(len(fields) == 3, body)
            return WalRecord(lsn, kind, txid)
        if kind == TRUNCATE:
            _expect(len(fields) == 4, body)
            return WalRecord(lsn, kind, txid, keep=int(fields[3]))
        if kind == INSERT:
            _expect(len(fields) == 6, body)
            return WalRecord(
                lsn, kind, txid, table=fields[3],
                rowid=RowId.decode(fields[4]), after=unpack_row(fields[5]),
            )
        if kind == DELETE:
            _expect(len(fields) == 6, body)
            return WalRecord(
                lsn, kind, txid, table=fields[3],
                rowid=RowId.decode(fields[4]), before=unpack_row(fields[5]),
            )
        if kind == UPDATE:
            _expect(len(fields) == 7, body)
            return WalRecord(
                lsn, kind, txid, table=fields[3],
                rowid=RowId.decode(fields[4]),
                before=unpack_row(fields[5]), after=unpack_row(fields[6]),
            )
    except (ValueError, IndexError) as error:
        raise WalError(f"malformed WAL record body {body!r}") from error
    raise WalError(f"unknown WAL record kind in {body!r}")


def _expect(condition: bool, body: str) -> None:
    if not condition:
        raise WalError(f"malformed WAL record body {body!r}")


def parse_log(text: str) -> tuple[list[WalRecord], str | None]:
    """Parse raw log text into ``(records, torn_tail_reason)``.

    A bad line (failed CRC, bad structure, missing trailing newline) at
    the *end* of the log is a torn write: parsing stops there and the
    reason is returned.  A bad line with any well-formed record after it
    is corruption, not a torn tail, and raises
    :class:`~repro.errors.CorruptLogError` — replaying past in-place
    damage would apply garbage.
    """
    if not text:
        return [], None
    complete = text.endswith("\n")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    records: list[WalRecord] = []
    previous_lsn = 0
    for index, line in enumerate(lines):
        reason = None
        record = None
        if not complete and index == len(lines) - 1:
            reason = "record has no trailing newline (interrupted append)"
        else:
            body, sep, crc = line.rpartition("|")
            if not sep:
                reason = "record has no CRC field"
            elif _crc(body) != crc:
                reason = "record failed its CRC check"
            else:
                try:
                    record = _parse_body(body)
                except WalError as error:
                    reason = str(error)
        if record is not None and record.lsn <= previous_lsn:
            reason = (
                f"LSN {record.lsn} does not advance past {previous_lsn}"
            )
            record = None
        if record is None:
            if _any_valid_after(lines, index + 1, previous_lsn):
                raise CorruptLogError(
                    f"WAL record {index + 1} is damaged mid-log "
                    f"({reason}); refusing to replay past corruption"
                )
            return records, f"record {index + 1}: {reason}"
        records.append(record)
        previous_lsn = record.lsn
    return records, None


def _any_valid_after(lines: list[str], start: int, min_lsn: int) -> bool:
    """Is any later line a well-formed record (proving mid-log damage)?"""
    for line in lines[start:]:
        body, sep, crc = line.rpartition("|")
        if not sep or _crc(body) != crc:
            continue
        try:
            record = _parse_body(body)
        except WalError:
            continue
        if record.lsn > min_lsn:
            return True
    return False


# ---------------------------------------------------------------------------
# Log devices
# ---------------------------------------------------------------------------


class LogDevice:
    """Durable home of one database: an append-only log + a checkpoint slot.

    Deliberately tiny and duck-typed — the resilience layer wraps it
    with a fault proxy that tears and corrupts appends, and the crash
    harness counts appends to enumerate crash points.
    """

    def append(self, data: str) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        """Make every append so far durable (fsync analogue)."""
        raise NotImplementedError

    def read_log(self) -> str:
        raise NotImplementedError

    def truncate_log(self) -> None:
        raise NotImplementedError

    def save_checkpoint(self, text: str) -> None:
        """Atomically replace the checkpoint slot."""
        raise NotImplementedError

    def load_checkpoint(self) -> str | None:
        raise NotImplementedError


class MemoryLogDevice(LogDevice):
    """In-process device: "durable" for the lifetime of the object.

    The crash harness's survivor: the live ``Database`` object is
    abandoned at the crash point and a new one is recovered from this
    device, exactly as a process restart would reread a disk.
    """

    def __init__(self) -> None:
        self._chunks: list[str] = []
        self._checkpoint: str | None = None

    def append(self, data: str) -> None:
        self._chunks.append(data)

    def sync(self) -> None:  # appends are immediately "durable"
        return

    def read_log(self) -> str:
        return "".join(self._chunks)

    def truncate_log(self) -> None:
        self._chunks.clear()

    def save_checkpoint(self, text: str) -> None:
        self._checkpoint = text

    def load_checkpoint(self) -> str | None:
        return self._checkpoint


class FileLogDevice(LogDevice):
    """File-backed device: ``<base>.wal`` + ``<base>.ckpt``.

    Appends go through one buffered handle with an explicit flush per
    record; :meth:`sync` adds an fsync (commit durability).  Checkpoints
    write to a temp file and ``os.replace`` into place, so a crash
    during checkpointing leaves the previous checkpoint intact.
    """

    def __init__(self, base_path: str) -> None:
        self.log_path = base_path + ".wal"
        self.checkpoint_path = base_path + ".ckpt"
        self._handle = None

    def _log_handle(self):
        if self._handle is None:
            self._handle = open(  # noqa: SIM115 - long-lived append handle
                self.log_path, "a", encoding="utf-8", newline=""
            )
        return self._handle

    def append(self, data: str) -> None:
        handle = self._log_handle()
        handle.write(data)
        handle.flush()

    def sync(self) -> None:
        handle = self._log_handle()
        handle.flush()
        os.fsync(handle.fileno())

    def read_log(self) -> str:
        if self._handle is not None:
            self._handle.flush()
        if not os.path.exists(self.log_path):
            return ""
        with open(self.log_path, "r", encoding="utf-8", newline="") as fh:
            return fh.read()

    def truncate_log(self) -> None:
        self.close()
        with open(self.log_path, "w", encoding="utf-8"):
            pass

    def save_checkpoint(self, text: str) -> None:
        temp_path = self.checkpoint_path + ".tmp"
        with open(temp_path, "w", encoding="utf-8", newline="") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(temp_path, self.checkpoint_path)

    def load_checkpoint(self) -> str | None:
        if not os.path.exists(self.checkpoint_path):
            return None
        with open(
            self.checkpoint_path, "r", encoding="utf-8", newline=""
        ) as fh:
            return fh.read()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ---------------------------------------------------------------------------
# The log facade
# ---------------------------------------------------------------------------


class WriteAheadLog:
    """Append-side facade the :class:`~repro.ordbms.database.Database` calls.

    Owns the LSN allocator.  Each ``log_*`` method appends exactly one
    record; :meth:`log_commit` also syncs the device, so a transaction
    is durable the instant ``commit()`` returns.
    """

    def __init__(self, device: LogDevice, start_lsn: int = 1) -> None:
        self.device = device
        if start_lsn < 1:
            raise WalError(f"LSNs start at 1, not {start_lsn}")
        self._next_lsn = start_lsn
        self.records_written = 0

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def last_lsn(self) -> int:
        """Highest LSN allocated so far (0 when nothing was written).

        The coordinator's replication high-water mark: a follower whose
        acknowledged LSN equals this value is fully in sync.
        """
        return self._next_lsn - 1

    def _append(self, record: WalRecord) -> int:
        self.device.append(record.encode())
        self.records_written += 1
        self._next_lsn = record.lsn + 1
        obs.inc("repro_ordbms_wal_appends_total", kind=record.kind.lower())
        return record.lsn

    def _take_lsn(self) -> int:
        return self._next_lsn

    # -- record writers ------------------------------------------------------

    def log_begin(self, txid: int) -> int:
        return self._append(WalRecord(self._take_lsn(), BEGIN, txid))

    def log_insert(
        self, txid: int, table: str, rowid: RowId, after: tuple[Any, ...]
    ) -> int:
        return self._append(
            WalRecord(
                self._take_lsn(), INSERT, txid, table=table, rowid=rowid,
                after=after,
            )
        )

    def log_update(
        self,
        txid: int,
        table: str,
        rowid: RowId,
        before: tuple[Any, ...],
        after: tuple[Any, ...],
    ) -> int:
        return self._append(
            WalRecord(
                self._take_lsn(), UPDATE, txid, table=table, rowid=rowid,
                before=before, after=after,
            )
        )

    def log_delete(
        self, txid: int, table: str, rowid: RowId, before: tuple[Any, ...]
    ) -> int:
        return self._append(
            WalRecord(
                self._take_lsn(), DELETE, txid, table=table, rowid=rowid,
                before=before,
            )
        )

    def log_commit(self, txid: int) -> int:
        lsn = self._append(WalRecord(self._take_lsn(), COMMIT, txid))
        self.device.sync()
        obs.inc("repro_ordbms_wal_syncs_total", reason="commit")
        return lsn

    def log_rollback(self, txid: int) -> int:
        return self._append(WalRecord(self._take_lsn(), ROLLBACK, txid))

    def log_truncate(self, txid: int, keep: int) -> int:
        return self._append(
            WalRecord(self._take_lsn(), TRUNCATE, txid, keep=keep)
        )

    # -- checkpointing -------------------------------------------------------

    def write_checkpoint(self, snapshot_text: str) -> int:
        """Install ``snapshot_text`` as the new recovery baseline.

        Protocol: stamp the snapshot with the highest LSN it covers and
        a CRC, atomically replace the checkpoint slot, truncate the log,
        then append a ``CHECKPOINT`` marker as the fresh log's first
        record.  A crash between the save and the truncation is safe:
        recovery skips log records at or below the checkpoint LSN.
        """
        covered_lsn = self._next_lsn - 1
        self.device.save_checkpoint(
            encode_checkpoint(covered_lsn, snapshot_text)
        )
        self.device.truncate_log()
        self._append(WalRecord(self._take_lsn(), CHECKPOINT))
        self.device.sync()
        obs.inc("repro_ordbms_wal_syncs_total", reason="checkpoint")
        obs.inc("repro_ordbms_wal_checkpoints_total")
        return covered_lsn

    # -- read side -----------------------------------------------------------

    def records(self) -> tuple[list[WalRecord], str | None]:
        """Parse the device's current log (see :func:`parse_log`)."""
        return parse_log(self.device.read_log())


def encode_checkpoint(lsn: int, snapshot_text: str) -> str:
    """Stamp a snapshot with the LSN it covers plus an integrity CRC."""
    return f"{CHECKPOINT_MAGIC} {lsn} {_crc(snapshot_text)}\n{snapshot_text}"


def decode_checkpoint(text: str) -> tuple[int, str]:
    """Parse a checkpoint slot; raises CorruptLogError on damage."""
    header, sep, snapshot_text = text.partition("\n")
    fields = header.split(" ")
    if not sep or len(fields) != 3 or fields[0] != CHECKPOINT_MAGIC:
        raise CorruptLogError("checkpoint slot has a malformed header")
    try:
        lsn = int(fields[1])
    except ValueError as error:
        raise CorruptLogError(
            f"checkpoint header carries a bad LSN {fields[1]!r}"
        ) from error
    if _crc(snapshot_text) != fields[2]:
        raise CorruptLogError("checkpoint snapshot failed its CRC check")
    return lsn, snapshot_text


def highest_txid(records: Iterable[WalRecord]) -> int:
    """The largest transaction id appearing in ``records`` (0 if none)."""
    return max((record.txid for record in records), default=AUTOCOMMIT_TXID)
