"""A SQL subset over the ORDBMS substrate.

The paper's "NETMARK Extensible APIs" expose the store over "a variety of
protocols based on J2EE, RMI, and ODBC"; ODBC implies a SQL surface.
This module provides it: a hand-written tokenizer, recursive-descent
parser, and a planner that lowers statements onto the executor operators
in :mod:`repro.ordbms.executor`.

Supported grammar (case-insensitive keywords)::

    CREATE TABLE t (col TYPE [NOT NULL] [PRIMARY KEY] [UNIQUE], ...)
    CREATE [TEXT] INDEX ON t (col)
    DROP TABLE t
    INSERT INTO t (c1, c2, ...) VALUES (v1, ...), (v2, ...), ...
    UPDATE t SET c1 = v1 [, ...] [WHERE pred]
    DELETE FROM t [WHERE pred]
    SELECT */cols/aggregates FROM t
        [JOIN u ON t.a = u.b]
        [WHERE pred] [GROUP BY cols] [ORDER BY col [ASC|DESC]]
        [LIMIT n [OFFSET m]]

Predicates: comparisons (= != < <= > >=), AND/OR/NOT, IS [NOT] NULL,
IN (v, ...), LIKE 'pattern', and ``CONTAINS(col, 'terms')`` which lowers
onto the inverted text index.  Types: INTEGER, FLOAT, VARCHAR, CLOB,
TIMESTAMP.

Run statements through :func:`execute_sql`::

    execute_sql(db, "SELECT DEPT, COUNT(*) AS N FROM EMP GROUP BY DEPT")
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.errors import QueryPlanError
from repro.ordbms import types as _types  # submodule import; safe mid-init
from repro.ordbms.database import Database
from repro.ordbms.executor import (
    Aggregate,
    AggSpec,
    Filter,
    HashJoin,
    Limit,
    PlanNode,
    Project,
    SeqScan,
    Sort,
    TextSearch,
)
from repro.ordbms.expr import (
    And,
    Col,
    Compare,
    Expr,
    InList,
    IsNull,
    Like,
    Lit,
    Not,
    Or,
    conjuncts,
    equality_on,
)
from repro.ordbms.rowid import RowId
from repro.ordbms.schema import Column, TableSchema
from repro.ordbms.table import ROWID_PSEUDO


class SqlError(QueryPlanError):
    """A SQL statement failed to parse or plan."""


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""\s*(
        '(?:[^']|'')*'              |   # string literal ('' escapes ')
        \d+\.\d+ | \d+              |   # numbers
        <> | <= | >= | != | [=<>]   |   # comparison operators
        [A-Za-z_][A-Za-z0-9_.]*\*?  |   # identifiers / keywords / COUNT(*)
        \* | \( | \) | , | ; | -        # punctuation, unary minus
    )""",
    re.VERBOSE,
)

_KEYWORDS = frozenset(
    "select from where and or not in is null like group by order asc desc "
    "limit offset insert into values update set delete create table drop "
    "index text on join as contains count sum avg min max integer float "
    "varchar clob timestamp primary key unique".split()
)


def _tokenize(sql: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            if sql[position:].strip():
                raise SqlError(f"cannot tokenize SQL at: {sql[position:][:30]!r}")
            break
        tokens.append(match.group(1))
        position = match.end()
    return tokens


def _is_identifier(token: str) -> bool:
    return bool(re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.]*", token)) and (
        token.lower() not in _KEYWORDS
    )


# ---------------------------------------------------------------------------
# Parser / planner
# ---------------------------------------------------------------------------


@dataclass
class SqlResult:
    """Outcome of one statement."""

    rows: list[dict[str, Any]]
    rowcount: int = 0
    command: str = ""


class _Parser:
    def __init__(self, database: Database, sql: str) -> None:
        self._database = database
        self._sql = sql
        self._tokens = _tokenize(sql)
        self._pos = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self) -> str | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _peek_kw(self) -> str | None:
        token = self._peek()
        return token.lower() if token is not None else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise SqlError(f"unexpected end of statement: {self._sql!r}")
        self._pos += 1
        return token

    def _accept(self, keyword: str) -> bool:
        if self._peek_kw() == keyword.lower():
            self._pos += 1
            return True
        return False

    def _expect(self, expected: str) -> str:
        token = self._next()
        if token.lower() != expected.lower():
            raise SqlError(
                f"expected {expected!r}, got {token!r} in {self._sql!r}"
            )
        return token

    def _identifier(self) -> str:
        token = self._next()
        if not _is_identifier(token):
            raise SqlError(f"expected identifier, got {token!r}")
        return token.upper()

    def _finish(self) -> None:
        self._accept(";")
        if self._peek() is not None:
            raise SqlError(
                f"trailing tokens after statement: {self._tokens[self._pos:]}"
            )

    # -- statement dispatch -----------------------------------------------------

    def statement(self) -> SqlResult:
        keyword = self._peek_kw()
        if keyword == "select":
            return self._select()
        if keyword == "insert":
            return self._insert()
        if keyword == "update":
            return self._update()
        if keyword == "delete":
            return self._delete()
        if keyword == "create":
            return self._create()
        if keyword == "drop":
            return self._drop()
        raise SqlError(f"unsupported statement: {self._sql!r}")

    # -- DDL -----------------------------------------------------------------------

    # repro: guarded-by(import-time) keyword table built at class creation, only ever read
    _TYPES = {
        "integer": _types.INTEGER,
        "float": _types.FLOAT,
        "varchar": _types.VARCHAR,
        "clob": _types.CLOB,
        "timestamp": _types.TIMESTAMP,
    }

    def _create(self) -> SqlResult:
        self._expect("create")
        if self._accept("table"):
            return self._create_table()
        text_index = self._accept("text")
        self._expect("index")
        self._expect("on")
        table_name = self._identifier()
        self._expect("(")
        column = self._identifier()
        self._expect(")")
        self._finish()
        table = self._database.table(table_name)
        if text_index:
            table.create_text_index(column)
        else:
            table.create_index(column)
        return SqlResult([], 0, "CREATE INDEX")

    def _create_table(self) -> SqlResult:
        name = self._identifier()
        self._expect("(")
        columns: list[Column] = []
        primary_key: str | None = None
        unique: list[str] = []
        while True:
            column_name = self._identifier()
            type_token = self._next().lower()
            dtype = self._TYPES.get(type_token)
            if dtype is None:
                raise SqlError(f"unknown column type {type_token!r}")
            nullable = True
            while True:
                if self._accept("not"):
                    self._expect("null")
                    nullable = False
                elif self._accept("primary"):
                    self._expect("key")
                    primary_key = column_name
                    nullable = False
                elif self._accept("unique"):
                    unique.append(column_name)
                else:
                    break
            columns.append(Column(column_name, dtype, nullable=nullable))
            if self._accept(","):
                continue
            self._expect(")")
            break
        self._finish()
        self._database.create_table(
            TableSchema(
                name,
                tuple(columns),
                primary_key=primary_key,
                unique=tuple(unique),
            )
        )
        return SqlResult([], 0, "CREATE TABLE")

    def _drop(self) -> SqlResult:
        self._expect("drop")
        self._expect("table")
        name = self._identifier()
        self._finish()
        self._database.drop_table(name)
        return SqlResult([], 0, "DROP TABLE")

    # -- DML -------------------------------------------------------------------------

    def _insert(self) -> SqlResult:
        self._expect("insert")
        self._expect("into")
        table_name = self._identifier()
        self._expect("(")
        columns = [self._identifier()]
        while self._accept(","):
            columns.append(self._identifier())
        self._expect(")")
        self._expect("values")
        count = 0
        while True:
            self._expect("(")
            values = [self._literal()]
            while self._accept(","):
                values.append(self._literal())
            self._expect(")")
            if len(values) != len(columns):
                raise SqlError(
                    f"INSERT has {len(columns)} columns but {len(values)} values"
                )
            self._database.insert(table_name, dict(zip(columns, values)))
            count += 1
            if not self._accept(","):
                break
        self._finish()
        return SqlResult([], count, "INSERT")

    def _update(self) -> SqlResult:
        self._expect("update")
        table_name = self._identifier()
        self._expect("set")
        changes: dict[str, Any] = {}
        while True:
            column = self._identifier()
            self._expect("=")
            changes[column] = self._literal()
            if not self._accept(","):
                break
        predicate = self._optional_where()
        self._finish()
        table = self._database.table(table_name)
        targets = [row[ROWID_PSEUDO] for row in table.scan(predicate)]
        for rowid in targets:
            self._database.update(table_name, rowid, changes)
        return SqlResult([], len(targets), "UPDATE")

    def _delete(self) -> SqlResult:
        self._expect("delete")
        self._expect("from")
        table_name = self._identifier()
        predicate = self._optional_where()
        self._finish()
        table = self._database.table(table_name)
        targets = [row[ROWID_PSEUDO] for row in table.scan(predicate)]
        for rowid in targets:
            self._database.delete(table_name, rowid)
        return SqlResult([], len(targets), "DELETE")

    def _optional_where(self) -> Expr | None:
        if self._accept("where"):
            return self._expression()
        return None

    # -- SELECT -----------------------------------------------------------------------

    def _select(self) -> SqlResult:
        self._expect("select")
        select_items = self._select_items()
        self._expect("from")
        plan, default_table = self._from_clause()
        predicate = self._optional_where()
        contains, residual = self._split_contains(predicate)
        plan = self._lower_access_path(plan, default_table, contains, residual)

        group_by: list[str] = []
        if self._accept("group"):
            self._expect("by")
            group_by.append(self._identifier())
            while self._accept(","):
                group_by.append(self._identifier())

        aggregates = [item for item in select_items if isinstance(item, AggSpec)]
        project_spec: dict[str, str] | None = None
        if aggregates or group_by:
            plan = Aggregate(plan, tuple(group_by), tuple(aggregates))
            plain = [
                item for item in select_items if not isinstance(item, AggSpec)
            ]
            for name, _ in plain:
                if name != "*" and name not in group_by:
                    raise SqlError(
                        f"column {name} must appear in GROUP BY or an aggregate"
                    )
        elif not (len(select_items) == 1 and select_items[0][0] == "*"):
            # Defer the projection until after ORDER BY/LIMIT so sorting
            # may use columns that are not selected (standard SQL).
            project_spec = {alias: name for name, alias in select_items}

        if self._accept("order"):
            self._expect("by")
            column = self._identifier()
            descending = False
            if self._accept("desc"):
                descending = True
            else:
                self._accept("asc")
            plan = Sort(plan, column, descending=descending)

        if self._accept("limit"):
            count = int(self._next())
            offset = 0
            if self._accept("offset"):
                offset = int(self._next())
            plan = Limit(plan, count, offset)

        if project_spec is not None:
            plan = Project(plan, project_spec)
        self._finish()
        rows = list(plan.rows())
        # Strip the ROWID pseudo-column from SELECT * output.
        for row in rows:
            row.pop(ROWID_PSEUDO, None)
        return SqlResult(rows, len(rows), "SELECT")

    def _select_items(self) -> list[Any]:
        """``*`` | (column|agg) [AS alias], ... — returns mixed items.

        Plain columns come back as ``(name, alias)`` tuples; aggregates as
        :class:`AggSpec`.
        """
        items: list[Any] = []
        while True:
            token = self._peek()
            if token == "*":
                self._next()
                items.append(("*", "*"))
            elif token is not None and token.lower() in {
                "count", "sum", "avg", "min", "max",
            }:
                func = self._next().lower()
                self._expect("(")
                argument = self._next()
                if argument != "*" and not _is_identifier(argument):
                    raise SqlError(f"bad aggregate argument {argument!r}")
                self._expect(")")
                alias = f"{func}_{argument}".upper().replace("*", "ALL")
                if self._accept("as"):
                    alias = self._identifier()
                items.append(AggSpec(func, argument.upper(), alias))
            else:
                name = self._identifier()
                alias = name.split(".")[-1]
                if self._accept("as"):
                    alias = self._identifier()
                items.append((name, alias))
            if not self._accept(","):
                return items

    def _from_clause(self) -> tuple[PlanNode, str]:
        table_name = self._identifier()
        plan: PlanNode = SeqScan(self._database.table(table_name))
        left_alias = table_name
        while self._accept("join"):
            right_name = self._identifier()
            self._expect("on")
            left_key = self._identifier()
            self._expect("=")
            right_key = self._identifier()
            # Keys may be qualified (T.COL); strip to the bare column and
            # sanity-check the qualifier.
            left_column = self._join_key(left_key, left_alias, right_name)
            right_column = self._join_key(right_key, right_name, left_alias)
            plan = HashJoin(
                plan,
                SeqScan(self._database.table(right_name)),
                left_column,
                right_column,
                left_alias=left_alias,
                right_alias=right_name,
            )
            left_alias = f"{left_alias}_{right_name}"
        return plan, table_name

    @staticmethod
    def _join_key(key: str, own_table: str, other_table: str) -> str:
        if "." not in key:
            return key
        qualifier, _, column = key.partition(".")
        if qualifier.upper() not in {own_table.upper(), other_table.upper()}:
            raise SqlError(f"unknown table qualifier in join key {key!r}")
        return column

    def _lower_access_path(
        self,
        plan: PlanNode,
        default_table: str,
        contains: list[tuple[str, str]],
        residual: Expr | None,
    ) -> PlanNode:
        """Use CONTAINS and sargable equalities to pick an access path."""
        if isinstance(plan, SeqScan) and contains:
            column, needle = contains[0]
            table = self._database.table(default_table)
            plan = TextSearch(table, column, needle, mode="all")
            for column, needle in contains[1:]:
                extra = frozenset(
                    row[ROWID_PSEUDO]
                    for row in TextSearch(table, column, needle, "all").rows()
                )
                plan = Filter(plan, _RowIdIn(extra))
        elif contains:
            raise SqlError("CONTAINS() is not supported on joined tables")
        if residual is not None:
            plan = Filter(plan, residual)
        return plan

    def _split_contains(
        self, predicate: Expr | None
    ) -> tuple[list[tuple[str, str]], Expr | None]:
        """Pull top-level CONTAINS conjuncts out of the WHERE clause."""
        if predicate is None:
            return [], None
        contains: list[tuple[str, str]] = []
        rest: Expr | None = None
        for conjunct in conjuncts(predicate):
            if isinstance(conjunct, _Contains):
                contains.append((conjunct.column, conjunct.needle))
            else:
                rest = conjunct if rest is None else And(rest, conjunct)
        return contains, rest

    # -- expressions --------------------------------------------------------------------

    def _expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._accept("or"):
            left = Or(left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self._accept("and"):
            left = And(left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self._accept("not"):
            return Not(self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        if self._accept("("):
            inner = self._expression()
            self._expect(")")
            return inner
        if self._peek_kw() == "contains":
            self._next()
            self._expect("(")
            column = self._identifier()
            self._expect(",")
            needle = self._literal()
            self._expect(")")
            if not isinstance(needle, str):
                raise SqlError("CONTAINS() needs a string literal")
            return _Contains(column, needle)
        left = self._operand()
        token = self._peek_kw()
        if token == "is":
            self._next()
            negated = self._accept("not")
            self._expect("null")
            expr: Expr = IsNull(left)
            return Not(expr) if negated else expr
        if token == "in":
            self._next()
            self._expect("(")
            values = [self._literal()]
            while self._accept(","):
                values.append(self._literal())
            self._expect(")")
            return InList(left, tuple(values))
        if token == "not":
            self._next()
            self._expect("like")
            pattern = self._literal()
            return Not(Like(left, str(pattern)))
        if token == "like":
            self._next()
            pattern = self._literal()
            return Like(left, str(pattern))
        operator = self._next()
        if operator == "<>":
            operator = "!="
        if operator not in {"=", "!=", "<", "<=", ">", ">="}:
            raise SqlError(f"expected comparison operator, got {operator!r}")
        right = self._operand()
        return Compare(left, operator, right)

    def _operand(self) -> Expr:
        token = self._peek()
        if token is None:
            raise SqlError("unexpected end of expression")
        if (
            token == "-"
            or token.startswith("'")
            or re.fullmatch(r"\d+(\.\d+)?", token)
        ):
            return Lit(self._literal())
        return Col(self._identifier())

    def _literal(self) -> Any:
        token = self._next()
        if token == "-":
            value = self._literal()
            if not isinstance(value, (int, float)):
                raise SqlError("unary minus needs a numeric literal")
            return -value
        if token.startswith("'"):
            return token[1:-1].replace("''", "'")
        if re.fullmatch(r"\d+", token):
            return int(token)
        if re.fullmatch(r"\d+\.\d+", token):
            return float(token)
        if token.lower() == "null":
            return None
        raise SqlError(f"expected literal, got {token!r}")


@dataclass(frozen=True)
class _Contains(Expr):
    """CONTAINS(col, 'terms').

    As a top-level conjunct the planner lowers it onto the inverted text
    index; anywhere else (under OR/NOT) it evaluates in place with the
    *same* tokenizer the index uses, so semantics never depend on the
    access path chosen.
    """

    column: str
    needle: str

    def evaluate(self, row: dict[str, Any]) -> bool:
        from repro.ordbms.textindex import tokenize

        value = row.get(self.column.upper())
        if not isinstance(value, str):
            return False
        tokens = set(tokenize(value, keep_stopwords=True))
        wanted = tokenize(self.needle)
        return bool(wanted) and all(term in tokens for term in wanted)


@dataclass(frozen=True)
class _RowIdIn(Expr):
    """Filter on the ROWID pseudo-column (intersecting CONTAINS hits)."""

    rowids: frozenset[RowId]

    def evaluate(self, row: dict[str, Any]) -> bool:
        return row.get(ROWID_PSEUDO) in self.rowids


def execute_sql(database: Database, sql: str) -> SqlResult:
    """Parse and execute one SQL statement against ``database``."""
    return _Parser(database, sql).statement()


# Re-export for callers that want to pre-check sargability the way the
# planner does.
__all__ = ["SqlError", "SqlResult", "execute_sql", "equality_on"]
