"""Transactions with an undo log.

The NETMARK load path inserts a ``DOC`` row plus hundreds of ``XML`` node
rows per document; the store wraps each document load in a transaction so a
mid-load failure never leaves a half-decomposed document behind.

The model is single-writer with logical undo: every mutation appends an
undo record; rollback replays them in reverse.  Savepoints nest by
remembering a position in the undo log.  This is all the paper's workload
needs — NETMARK has no concurrent-writer story and neither do we.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import TransactionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.ordbms.database import Database


@dataclass
class _UndoRecord:
    """One reversible action; ``undo`` restores the pre-action state."""

    description: str
    undo: Callable[[], None]


@dataclass
class Transaction:
    """An open transaction; obtained from :meth:`Database.begin`."""

    database: "Database"
    #: Log-visible transaction id (0 is reserved for autocommit records).
    txid: int = 0
    _undo_log: list[_UndoRecord] = field(default_factory=list)
    _savepoints: dict[str, int] = field(default_factory=dict)
    _state: str = "active"  # active | committed | rolled_back | failed

    @property
    def is_active(self) -> bool:
        return self._state == "active"

    @property
    def is_failed(self) -> bool:
        """True when rollback itself raised; see :meth:`rollback`."""
        return self._state == "failed"

    def record_undo(self, description: str, undo: Callable[[], None]) -> None:
        """Register a compensating action for a completed mutation."""
        self._require_active()
        self._undo_log.append(_UndoRecord(description, undo))

    def savepoint(self, name: str) -> None:
        """Mark a point the transaction can partially roll back to."""
        self._require_active()
        self._savepoints[name] = len(self._undo_log)

    def rollback_to(self, name: str) -> None:
        """Undo everything since ``savepoint(name)``; transaction stays open."""
        self._require_active()
        try:
            mark = self._savepoints[name]
        except KeyError:
            raise TransactionError(f"no savepoint named {name!r}") from None
        self._unwind(mark)
        # Savepoints created after the mark are no longer meaningful.
        self._savepoints = {
            sp_name: position
            for sp_name, position in self._savepoints.items()
            if position <= mark
        }
        wal = self.database.wal
        if wal is not None:
            wal.log_truncate(self.txid, keep=mark)

    def commit(self) -> None:
        """Make all mutations permanent and close the transaction.

        With a write-ahead log attached, the COMMIT record is appended
        and synced *before* the state flips — once this method returns,
        the transaction survives any crash.
        """
        self._require_active()
        wal = self.database.wal
        if wal is not None:
            wal.log_commit(self.txid)
        self._undo_log.clear()
        self._savepoints.clear()
        self._state = "committed"
        self.database._transaction_closed(self)

    def rollback(self) -> None:
        """Undo every mutation and close the transaction.

        If an undo callback itself raises, the transaction moves to the
        terminal ``failed`` state (never stranded ``active``) and the
        original error surfaces wrapped in :class:`TransactionError`.
        A failed transaction writes no ROLLBACK record, so an attached
        write-ahead log still discards it cleanly on recovery.
        """
        self._require_active()
        self._unwind(0)
        self._savepoints.clear()
        self._state = "rolled_back"
        wal = self.database.wal
        if wal is not None:
            wal.log_rollback(self.txid)
        self.database._transaction_closed(self)

    def _unwind(self, mark: int) -> None:
        """Pop and run undo records down to ``mark``; fail terminally."""
        while len(self._undo_log) > mark:
            record = self._undo_log.pop()
            try:
                record.undo()
            except Exception as error:  # lint: allow-broad-except(any undo failure must fail the transaction, not escape it)
                self._savepoints.clear()
                self._state = "failed"
                self.database._transaction_closed(self)
                raise TransactionError(
                    f"rollback failed while undoing "
                    f"{record.description!r}; transaction is now failed "
                    f"and its in-memory effects may be partially applied"
                ) from error

    # -- context manager: commit on success, roll back on exception -------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if not self.is_active:
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False

    def _require_active(self) -> None:
        if self._state != "active":
            raise TransactionError(f"transaction is {self._state}, not active")

    @property
    def pending_undo_count(self) -> int:
        """Mutations that would be reverted by :meth:`rollback`."""
        return len(self._undo_log)
