"""System catalog: the mapping from names to tables.

The catalog also keeps simple DDL statistics (tables created, indexes
created) that the cost-model experiments read: the paper's Fig 5 argument
is precisely that NETMARK's generated schema never grows with new document
types, while a shredding baseline keeps issuing DDL.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import CatalogError
from repro.ordbms.schema import TableSchema
from repro.ordbms.table import Table


class Catalog:
    """Name -> :class:`Table` registry with DDL accounting."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self.ddl_statements = 0  # CREATE TABLE / CREATE INDEX issued

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise CatalogError(f"table {schema.name} already exists")
        table = Table(schema)
        self._tables[schema.name] = table
        self.ddl_statements += 1
        return table

    def drop_table(self, name: str) -> None:
        name = name.upper()
        if name not in self._tables:
            raise CatalogError(f"table {name} does not exist")
        del self._tables[name]
        self.ddl_statements += 1

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.upper()]
        except KeyError:
            raise CatalogError(f"table {name.upper()} does not exist") from None

    def has_table(self, name: str) -> bool:
        return name.upper() in self._tables

    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)
