"""Slotted-page heap storage with physical ROWIDs.

Rows live in fixed-capacity *blocks* grouped into *data files*; a row's
:class:`~repro.ordbms.rowid.RowId` is its ``(file, block, slot)`` address.
A fetch by ROWID is two list lookups — the O(1) access path the paper's
parent/sibling traversal depends on.

Deletions tombstone the slot rather than compacting, so ROWIDs of the
surviving rows never move (Oracle's heap tables behave the same way).
Updates are in place when the row stays in its slot; the engine never
migrates rows, so ROWIDs are stable for the lifetime of a row.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import RowIdError
from repro.ordbms.rowid import RowId

#: Rows per block.  Small enough that multi-block behaviour is exercised by
#: modest tests, large enough that block overhead stays negligible.
BLOCK_CAPACITY = 64

#: Blocks per data file before a new file is opened.
FILE_CAPACITY = 1024

_TOMBSTONE = object()


class _Block:
    """A fixed-capacity array of row slots."""

    __slots__ = ("slots",)

    def __init__(self) -> None:
        self.slots: list[Any] = []

    @property
    def full(self) -> bool:
        return len(self.slots) >= BLOCK_CAPACITY

    def append(self, row: tuple[Any, ...]) -> int:
        slot_no = len(self.slots)
        self.slots.append(row)
        return slot_no


class HeapFile:
    """The physical storage for one table.

    The interface is deliberately tiny: insert returns a ROWID, fetch and
    delete take one, and ``scan`` yields ``(rowid, row)`` pairs in physical
    order.  Everything richer (predicates, indexes, constraints) lives in
    the layers above.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._files: list[list[_Block]] = [[_Block()]]
        self._live_rows = 0

    # -- mutation ---------------------------------------------------------

    def insert(self, row: tuple[Any, ...]) -> RowId:
        """Append ``row`` and return its physical address."""
        file_no = len(self._files) - 1
        blocks = self._files[file_no]
        if blocks[-1].full:
            if len(blocks) >= FILE_CAPACITY:
                self._files.append([_Block()])
                file_no += 1
                blocks = self._files[file_no]
            else:
                blocks.append(_Block())
        block_no = len(blocks) - 1
        slot_no = blocks[-1].append(row)
        self._live_rows += 1
        return RowId(file_no, block_no, slot_no)  # lint: allow-rowid-mint(the heap file IS the physical layer that mints addresses)

    def update(self, rowid: RowId, row: tuple[Any, ...]) -> None:
        """Replace the row at ``rowid`` in place."""
        block = self._block(rowid)
        self._check_live(block, rowid)
        block.slots[rowid.slot_no] = row

    def delete(self, rowid: RowId) -> tuple[Any, ...]:
        """Tombstone the row at ``rowid`` and return its former value."""
        block = self._block(rowid)
        self._check_live(block, rowid)
        old = block.slots[rowid.slot_no]
        block.slots[rowid.slot_no] = _TOMBSTONE
        self._live_rows -= 1
        return old

    def restore(self, rowid: RowId, row: tuple[Any, ...]) -> None:
        """Un-tombstone ``rowid`` with ``row`` (transaction rollback only).

        Restoring into the original slot keeps the ROWID stable, which is
        what lets undo records later in the log keep referring to it.
        """
        block = self._block(rowid)
        if rowid.slot_no >= len(block.slots):
            raise RowIdError(
                f"ROWID {rowid} is out of range for table {self.name}"
            )
        if block.slots[rowid.slot_no] is not _TOMBSTONE:
            raise RowIdError(
                f"ROWID {rowid} is not a deleted slot in table {self.name}"
            )
        block.slots[rowid.slot_no] = row
        self._live_rows += 1

    # -- access -----------------------------------------------------------

    def fetch(self, rowid: RowId) -> tuple[Any, ...]:
        """Return the row at ``rowid``; O(1)."""
        block = self._block(rowid)
        self._check_live(block, rowid)
        return block.slots[rowid.slot_no]

    def exists(self, rowid: RowId) -> bool:
        """True when ``rowid`` addresses a live (non-deleted) row."""
        try:
            block = self._block(rowid)
        except RowIdError:
            return False
        if rowid.slot_no >= len(block.slots):
            return False
        return block.slots[rowid.slot_no] is not _TOMBSTONE

    def scan(self) -> Iterator[tuple[RowId, tuple[Any, ...]]]:
        """Yield ``(rowid, row)`` for every live row in physical order."""
        for file_no, blocks in enumerate(self._files):
            for block_no, block in enumerate(blocks):
                for slot_no, row in enumerate(block.slots):
                    if row is not _TOMBSTONE:
                        yield RowId(file_no, block_no, slot_no), row  # lint: allow-rowid-mint(the heap file IS the physical layer that mints addresses)

    def scan_all(self) -> Iterator[tuple[RowId, Any]]:
        """Yield ``(rowid, row-or-tombstone)`` for every allocated slot.

        Unlike :meth:`scan`, tombstoned slots are included (their value
        is the private tombstone sentinel) — the MVCC snapshot scan needs
        their addresses to resolve pre-images of recently deleted rows.
        The structure is append-only, so iterating concurrently with an
        inserting writer is safe; callers wanting a stable inventory run
        this under :meth:`repro.ordbms.table.Table.stable_read`.
        """
        for file_no, blocks in enumerate(self._files):
            for block_no, block in enumerate(blocks):
                for slot_no in range(len(block.slots)):
                    yield RowId(file_no, block_no, slot_no), block.slots[slot_no]  # lint: allow-rowid-mint(the heap file IS the physical layer that mints addresses)

    def __len__(self) -> int:
        return self._live_rows

    @property
    def block_count(self) -> int:
        """Total allocated blocks (a proxy for on-disk footprint)."""
        return sum(len(blocks) for blocks in self._files)

    # -- internals ---------------------------------------------------------

    def _block(self, rowid: RowId) -> _Block:
        if not rowid.is_valid:
            raise RowIdError(f"invalid ROWID {rowid} for table {self.name}")
        try:
            return self._files[rowid.file_no][rowid.block_no]
        except IndexError:
            raise RowIdError(
                f"ROWID {rowid} is out of range for table {self.name}"
            ) from None

    def _check_live(self, block: _Block, rowid: RowId) -> None:
        if rowid.slot_no >= len(block.slots):
            raise RowIdError(
                f"ROWID {rowid} is out of range for table {self.name}"
            )
        if block.slots[rowid.slot_no] is _TOMBSTONE:
            raise RowIdError(
                f"ROWID {rowid} addresses a deleted row in table {self.name}"
            )
