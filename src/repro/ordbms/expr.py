"""Predicate expressions for scans and the executor.

Expressions form a tiny AST evaluated against row dictionaries.  They are
plain data (dataclasses) so the planner can inspect them — e.g. to pull an
equality on an indexed column out of a conjunction and turn it into an
index scan.

Comparison semantics follow SQL three-valued logic in the one place it
matters: any comparison involving ``None`` (NULL) is false, and ``IsNull``
exists to test for NULL explicitly.
"""

from __future__ import annotations

import operator
import re
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import QueryPlanError


class Expr:
    """Base class for all predicate expressions."""

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        raise NotImplementedError

    # Convenience combinators so call sites read naturally.
    def __and__(self, other: "Expr") -> "And":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class Col(Expr):
    """Reference to a column by (upper-cased) name."""

    name: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.upper())

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise QueryPlanError(f"row has no column {self.name!r}") from None

    # Comparison builders: Col("X") == 3 builds a predicate, not a bool.
    def __eq__(self, other: Any) -> "Compare":  # type: ignore[override]
        return Compare(self, "=", _lift(other))

    def __ne__(self, other: Any) -> "Compare":  # type: ignore[override]
        return Compare(self, "!=", _lift(other))

    def __lt__(self, other: Any) -> "Compare":
        return Compare(self, "<", _lift(other))

    def __le__(self, other: Any) -> "Compare":
        return Compare(self, "<=", _lift(other))

    def __gt__(self, other: Any) -> "Compare":
        return Compare(self, ">", _lift(other))

    def __ge__(self, other: Any) -> "Compare":
        return Compare(self, ">=", _lift(other))

    def __hash__(self) -> int:
        return hash(("Col", self.name))

    def is_null(self) -> "IsNull":
        return IsNull(self)

    def like(self, pattern: str) -> "Like":
        return Like(self, pattern)

    def in_(self, values: tuple[Any, ...]) -> "InList":
        return InList(self, tuple(values))


@dataclass(frozen=True)
class Lit(Expr):
    """A literal constant."""

    value: Any

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return self.value


def _lift(value: Any) -> Expr:
    return value if isinstance(value, Expr) else Lit(value)


_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Compare(Expr):
    """A binary comparison; NULL on either side yields False."""

    left: Expr
    op: str
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise QueryPlanError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return False
        return _OPS[self.op](left, right)


@dataclass(frozen=True)
class And(Expr):
    left: Expr
    right: Expr

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return bool(self.left.evaluate(row)) and bool(self.right.evaluate(row))


@dataclass(frozen=True)
class Or(Expr):
    left: Expr
    right: Expr

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return bool(self.left.evaluate(row)) or bool(self.right.evaluate(row))


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return not bool(self.operand.evaluate(row))


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.operand.evaluate(row) is None


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    values: tuple[Any, ...]

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        value = self.operand.evaluate(row)
        if value is None:
            return False
        return value in self.values


@dataclass(frozen=True)
class Like(Expr):
    """SQL LIKE with ``%`` (any run) and ``_`` (any char), case-insensitive.

    Case-insensitivity matches how the paper's queries treat headings
    ("Context=Introduction" should match "INTRODUCTION").
    """

    operand: Expr
    pattern: str

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        value = self.operand.evaluate(row)
        if value is None or not isinstance(value, str):
            return False
        return self._regex().match(value) is not None

    def _regex(self) -> re.Pattern[str]:
        parts: list[str] = []
        for char in self.pattern:
            if char == "%":
                parts.append(".*")
            elif char == "_":
                parts.append(".")
            else:
                parts.append(re.escape(char))
        return re.compile("^" + "".join(parts) + "$", re.IGNORECASE | re.DOTALL)


def conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, And):
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def equality_on(expr: Expr, column: str) -> Any | None:
    """If ``expr`` is ``Col(column) = literal``, return the literal.

    The planner uses this to recognise index-sargable conjuncts.  Returns
    ``None`` when the shape does not match (note: a literal ``None`` never
    appears, because ``= NULL`` is always false in SQL semantics).
    """
    column = column.upper()
    if not isinstance(expr, Compare) or expr.op != "=":
        return None
    left, right = expr.left, expr.right
    if isinstance(left, Col) and left.name == column and isinstance(right, Lit):
        return right.value
    if isinstance(right, Col) and right.name == column and isinstance(left, Lit):
        return left.value
    return None
