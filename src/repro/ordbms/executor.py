"""Physical query plans and their iterator-model executor.

Plans are trees of :class:`PlanNode`; ``execute`` walks the tree and yields
row dicts.  The set of operators covers what the layers above actually
use — the XML store's traversals, the GAV-mediator baseline's unfolded
queries, and the NASA example applications' aggregations:

``SeqScan``, ``IndexLookup``, ``TextSearch``, ``Filter``, ``Project``,
``Sort``, ``Limit``, ``NestedLoopJoin``, ``HashJoin``, ``Aggregate``,
``Distinct``, ``UnionAll``.

Joins name their inputs with *aliases*; joined rows expose columns as
``ALIAS.COLUMN`` plus the bare column name when unambiguous, which keeps
predicates written with :class:`~repro.ordbms.expr.Col` working across
joins without a full name-resolution pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.errors import QueryPlanError
from repro.ordbms.expr import Expr
from repro.ordbms.table import Table


class PlanNode:
    """Base class for physical plan operators."""

    def rows(self) -> Iterator[dict[str, Any]]:
        raise NotImplementedError

    def explain(self, depth: int = 0) -> str:
        """Render the plan subtree as an indented text tree."""
        line = "  " * depth + self._describe()
        children = "".join(
            "\n" + child.explain(depth + 1) for child in self._children()
        )
        return line + children

    def _describe(self) -> str:
        return type(self).__name__

    def _children(self) -> Sequence["PlanNode"]:
        return ()


def execute(plan: PlanNode) -> list[dict[str, Any]]:
    """Run a plan to completion and return its rows as a list."""
    return list(plan.rows())


# ---------------------------------------------------------------------------
# Leaf operators
# ---------------------------------------------------------------------------


@dataclass
class SeqScan(PlanNode):
    """Full scan of a table, optionally filtered."""

    table: Table
    predicate: Expr | None = None

    def rows(self) -> Iterator[dict[str, Any]]:
        yield from self.table.scan(self.predicate)

    def _describe(self) -> str:
        suffix = f" filter={self.predicate}" if self.predicate else ""
        return f"SeqScan({self.table.schema.name}{suffix})"


@dataclass
class IndexLookup(PlanNode):
    """Equality lookup through a B+tree index."""

    table: Table
    column: str
    value: Any

    def rows(self) -> Iterator[dict[str, Any]]:
        index = self.table.index_on(self.column)
        if index is None:
            raise QueryPlanError(
                f"no index on {self.table.schema.name}.{self.column.upper()}"
            )
        for rowid in index.search(self.value):
            yield self.table.fetch(rowid)

    def _describe(self) -> str:
        return (
            f"IndexLookup({self.table.schema.name}.{self.column.upper()}"
            f"={self.value!r})"
        )


@dataclass
class IndexRange(PlanNode):
    """Range scan through a B+tree index (inclusive bounds)."""

    table: Table
    column: str
    low: Any = None
    high: Any = None

    def rows(self) -> Iterator[dict[str, Any]]:
        index = self.table.index_on(self.column)
        if index is None:
            raise QueryPlanError(
                f"no index on {self.table.schema.name}.{self.column.upper()}"
            )
        for _key, rowid in index.range(self.low, self.high):
            yield self.table.fetch(rowid)

    def _describe(self) -> str:
        return (
            f"IndexRange({self.table.schema.name}.{self.column.upper()} "
            f"in [{self.low!r}, {self.high!r}])"
        )


@dataclass
class TextSearch(PlanNode):
    """Keyword/phrase search through an inverted text index.

    ``mode`` is one of ``"all"`` (conjunctive terms), ``"any"``
    (disjunctive), or ``"phrase"`` (consecutive tokens).
    """

    table: Table
    column: str
    query: str
    mode: str = "all"

    def rows(self) -> Iterator[dict[str, Any]]:
        index = self.table.text_index_on(self.column)
        if index is None:
            raise QueryPlanError(
                f"no text index on {self.table.schema.name}.{self.column.upper()}"
            )
        from repro.ordbms.textindex import tokenize

        if self.mode == "phrase":
            rowids = index.lookup_phrase(self.query)
        elif self.mode == "any":
            rowids = index.lookup_any(tokenize(self.query))
        elif self.mode == "all":
            rowids = index.lookup_all(tokenize(self.query))
        else:
            raise QueryPlanError(f"unknown text search mode {self.mode!r}")
        # Sort by physical position for deterministic output.
        for rowid in sorted(rowids):
            yield self.table.fetch(rowid)

    def _describe(self) -> str:
        return (
            f"TextSearch({self.table.schema.name}.{self.column.upper()} "
            f"{self.mode} {self.query!r})"
        )


@dataclass
class Values(PlanNode):
    """A constant relation (used by tests and the mediator baseline)."""

    data: list[dict[str, Any]]

    def rows(self) -> Iterator[dict[str, Any]]:
        for row in self.data:
            yield dict(row)

    def _describe(self) -> str:
        return f"Values({len(self.data)} rows)"


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------


@dataclass
class Filter(PlanNode):
    child: PlanNode
    predicate: Expr

    def rows(self) -> Iterator[dict[str, Any]]:
        for row in self.child.rows():
            if self.predicate.evaluate(row):
                yield row

    def _describe(self) -> str:
        return f"Filter({self.predicate})"

    def _children(self) -> Sequence[PlanNode]:
        return (self.child,)


@dataclass
class Project(PlanNode):
    """Keep/rename/compute columns.

    ``columns`` maps output name -> input column name or callable(row).
    """

    child: PlanNode
    columns: Mapping[str, str | Callable[[Mapping[str, Any]], Any]]

    def rows(self) -> Iterator[dict[str, Any]]:
        specs = [(out.upper(), spec) for out, spec in self.columns.items()]
        for row in self.child.rows():
            output: dict[str, Any] = {}
            for out, spec in specs:
                if callable(spec):
                    output[out] = spec(row)
                else:
                    output[out] = row.get(spec.upper())
            yield output

    def _describe(self) -> str:
        return f"Project({', '.join(self.columns)})"

    def _children(self) -> Sequence[PlanNode]:
        return (self.child,)


@dataclass
class Sort(PlanNode):
    child: PlanNode
    key: str | Callable[[Mapping[str, Any]], Any]
    descending: bool = False

    def rows(self) -> Iterator[dict[str, Any]]:
        if callable(self.key):
            key_fn = self.key
        else:
            column = self.key.upper()

            def key_fn(row: Mapping[str, Any]) -> Any:
                value = row.get(column)
                # Sort NULLs last regardless of direction.
                return (value is None, value)

        yield from sorted(self.child.rows(), key=key_fn, reverse=self.descending)

    def _describe(self) -> str:
        direction = "desc" if self.descending else "asc"
        return f"Sort({self.key} {direction})"

    def _children(self) -> Sequence[PlanNode]:
        return (self.child,)


@dataclass
class Limit(PlanNode):
    child: PlanNode
    count: int
    offset: int = 0

    def rows(self) -> Iterator[dict[str, Any]]:
        produced = 0
        skipped = 0
        for row in self.child.rows():
            if skipped < self.offset:
                skipped += 1
                continue
            if produced >= self.count:
                return
            produced += 1
            yield row

    def _describe(self) -> str:
        return f"Limit({self.count}, offset={self.offset})"

    def _children(self) -> Sequence[PlanNode]:
        return (self.child,)


@dataclass
class Distinct(PlanNode):
    """Remove duplicate rows (by the full row's hashable projection)."""

    child: PlanNode

    def rows(self) -> Iterator[dict[str, Any]]:
        seen: set[tuple[tuple[str, Any], ...]] = set()
        for row in self.child.rows():
            key = tuple(sorted(row.items(), key=lambda item: item[0]))
            if key not in seen:
                seen.add(key)
                yield row

    def _children(self) -> Sequence[PlanNode]:
        return (self.child,)


# ---------------------------------------------------------------------------
# Binary / n-ary operators
# ---------------------------------------------------------------------------


def _qualify(row: Mapping[str, Any], alias: str) -> dict[str, Any]:
    return {f"{alias.upper()}.{name}": value for name, value in row.items()}


def _merge(
    left: Mapping[str, Any],
    right: Mapping[str, Any],
    left_alias: str,
    right_alias: str,
) -> dict[str, Any]:
    merged = _qualify(left, left_alias)
    merged.update(_qualify(right, right_alias))
    # Expose unambiguous bare names for predicate convenience.
    for source in (left, right):
        for name, value in source.items():
            if name in left and name in right:
                continue
            merged[name] = value
    return merged


@dataclass
class NestedLoopJoin(PlanNode):
    """General theta join; predicate sees merged (qualified) rows."""

    left: PlanNode
    right: PlanNode
    predicate: Expr
    left_alias: str = "L"
    right_alias: str = "R"

    def rows(self) -> Iterator[dict[str, Any]]:
        right_rows = list(self.right.rows())
        for left_row in self.left.rows():
            for right_row in right_rows:
                merged = _merge(
                    left_row, right_row, self.left_alias, self.right_alias
                )
                if self.predicate.evaluate(merged):
                    yield merged

    def _describe(self) -> str:
        return f"NestedLoopJoin({self.predicate})"

    def _children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)


@dataclass
class HashJoin(PlanNode):
    """Equi-join on one column from each side."""

    left: PlanNode
    right: PlanNode
    left_key: str
    right_key: str
    left_alias: str = "L"
    right_alias: str = "R"

    def rows(self) -> Iterator[dict[str, Any]]:
        left_key = self.left_key.upper()
        right_key = self.right_key.upper()
        buckets: dict[Any, list[dict[str, Any]]] = {}
        for right_row in self.right.rows():
            key = right_row.get(right_key)
            if key is not None:
                buckets.setdefault(key, []).append(right_row)
        for left_row in self.left.rows():
            key = left_row.get(left_key)
            if key is None:
                continue
            for right_row in buckets.get(key, ()):
                yield _merge(left_row, right_row, self.left_alias, self.right_alias)

    def _describe(self) -> str:
        return f"HashJoin({self.left_key.upper()}={self.right_key.upper()})"

    def _children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)


@dataclass
class UnionAll(PlanNode):
    children: list[PlanNode] = field(default_factory=list)

    def rows(self) -> Iterator[dict[str, Any]]:
        for child in self.children:
            yield from child.rows()

    def _children(self) -> Sequence[PlanNode]:
        return tuple(self.children)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: ``func`` over ``column`` named ``output``.

    ``func`` is one of count, sum, avg, min, max.  ``column`` may be ``"*"``
    for count.
    """

    func: str
    column: str
    output: str

    def __post_init__(self) -> None:
        func = self.func.lower()
        if func not in {"count", "sum", "avg", "min", "max"}:
            raise QueryPlanError(f"unknown aggregate function {self.func!r}")
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "column", self.column.upper())
        object.__setattr__(self, "output", self.output.upper())


@dataclass
class Aggregate(PlanNode):
    """Hash aggregation with optional GROUP BY columns."""

    child: PlanNode
    group_by: tuple[str, ...]
    aggregates: tuple[AggSpec, ...]

    def rows(self) -> Iterator[dict[str, Any]]:
        group_cols = tuple(col.upper() for col in self.group_by)
        groups: dict[tuple[Any, ...], list[dict[str, Any]]] = {}
        for row in self.child.rows():
            key = tuple(row.get(col) for col in group_cols)
            groups.setdefault(key, []).append(row)
        if not groups and not group_cols:
            groups[()] = []
        for key, rows in groups.items():
            output = dict(zip(group_cols, key))
            for spec in self.aggregates:
                output[spec.output] = self._compute(spec, rows)
            yield output

    @staticmethod
    def _compute(spec: AggSpec, rows: list[dict[str, Any]]) -> Any:
        if spec.func == "count":
            if spec.column == "*":
                return len(rows)
            return sum(1 for row in rows if row.get(spec.column) is not None)
        values = [
            row[spec.column]
            for row in rows
            if row.get(spec.column) is not None
        ]
        if not values:
            return None
        if spec.func == "sum":
            return sum(values)
        if spec.func == "avg":
            return sum(values) / len(values)
        if spec.func == "min":
            return min(values)
        return max(values)

    def _describe(self) -> str:
        aggs = ", ".join(f"{s.func}({s.column})" for s in self.aggregates)
        return f"Aggregate(group_by={list(self.group_by)}, aggs=[{aggs}])"

    def _children(self) -> Sequence[PlanNode]:
        return (self.child,)
