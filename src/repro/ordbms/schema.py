"""Table and column definitions for the ORDBMS substrate.

A :class:`TableSchema` is a named, ordered collection of :class:`Column`
definitions plus optional primary-key and unique constraints.  Schemas are
immutable after construction; the catalog owns the mapping from names to
schemas.

Only the features the NETMARK generated schema needs are implemented:
scalar columns, NOT NULL, a single-column primary key, unique constraints,
and defaults.  Foreign keys are declared (so the catalog can describe the
``DOC_ID`` relationship in Fig 5) but enforcement is optional per table,
because NETMARK bulk-loads parent and child rows in one transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import SchemaError, TypeMismatchError
from repro.ordbms.types import DataType


@dataclass(frozen=True)
class Column:
    """A single column definition.

    Parameters
    ----------
    name:
        Column name; matched case-insensitively but stored upper-case to
        mirror the Oracle convention used throughout the paper's Fig 5.
    dtype:
        One of the singleton :mod:`repro.ordbms.types` instances.
    nullable:
        Whether NULL values are permitted.
    default:
        Value used when an insert omits this column.
    """

    name: str
    dtype: DataType
    nullable: bool = True
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")
        object.__setattr__(self, "name", self.name.upper())


@dataclass(frozen=True)
class ForeignKey:
    """A declared (not necessarily enforced) foreign-key relationship."""

    column: str
    ref_table: str
    ref_column: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "column", self.column.upper())
        object.__setattr__(self, "ref_table", self.ref_table.upper())
        object.__setattr__(self, "ref_column", self.ref_column.upper())


@dataclass(frozen=True)
class TableSchema:
    """An immutable table definition."""

    name: str
    columns: tuple[Column, ...]
    primary_key: str | None = None
    unique: tuple[str, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()
    _index: Mapping[str, int] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        object.__setattr__(self, "name", self.name.upper())
        if not self.columns:
            raise SchemaError(f"table {self.name} must have at least one column")
        index: dict[str, int] = {}
        for position, column in enumerate(self.columns):
            if column.name in index:
                raise SchemaError(
                    f"duplicate column {column.name} in table {self.name}"
                )
            index[column.name] = position
        object.__setattr__(self, "_index", index)
        if self.primary_key is not None:
            object.__setattr__(self, "primary_key", self.primary_key.upper())
            if self.primary_key not in index:
                raise SchemaError(
                    f"primary key {self.primary_key} is not a column of {self.name}"
                )
        normalized_unique = tuple(u.upper() for u in self.unique)
        object.__setattr__(self, "unique", normalized_unique)
        for unique_col in normalized_unique:
            if unique_col not in index:
                raise SchemaError(
                    f"unique column {unique_col} is not a column of {self.name}"
                )
        for fk in self.foreign_keys:
            if fk.column not in index:
                raise SchemaError(
                    f"foreign key column {fk.column} is not a column of {self.name}"
                )

    # -- lookups ---------------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def has_column(self, name: str) -> bool:
        return name.upper() in self._index

    def column(self, name: str) -> Column:
        try:
            return self.columns[self._index[name.upper()]]
        except KeyError:
            raise SchemaError(
                f"table {self.name} has no column {name.upper()!r}"
            ) from None

    def position(self, name: str) -> int:
        """Return the ordinal position of a column (0-based)."""
        try:
            return self._index[name.upper()]
        except KeyError:
            raise SchemaError(
                f"table {self.name} has no column {name.upper()!r}"
            ) from None

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    # -- row shaping -----------------------------------------------------

    def make_row(self, values: Mapping[str, Any]) -> tuple[Any, ...]:
        """Validate a column->value mapping into a positional row tuple.

        Unknown columns raise; missing columns take their default; NOT NULL
        is enforced after defaulting; every value is validated against the
        column type.
        """
        provided = {key.upper(): value for key, value in values.items()}
        for key in provided:
            if key not in self._index:
                raise SchemaError(f"table {self.name} has no column {key!r}")
        row: list[Any] = []
        for column in self.columns:
            value = provided.get(column.name, column.default)
            value = column.dtype.validate(value, column.name)
            if value is None and not column.nullable:
                raise TypeMismatchError(
                    f"column {self.name}.{column.name} is NOT NULL"
                )
            row.append(value)
        return tuple(row)

    def row_to_dict(self, row: Sequence[Any]) -> dict[str, Any]:
        """Convert a positional row tuple back to a column->value dict."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row width {len(row)} does not match table {self.name} "
                f"width {len(self.columns)}"
            )
        return {column.name: value for column, value in zip(self.columns, row)}
