"""MVCC: commit-LSN-stamped row versions and snapshot pins.

This generalizes the accessor's write-generation scheme (PR 3) into real
multi-version concurrency control.  One :class:`MvccState` per database
holds the **commit LSN** — a monotonic counter bumped by every mutation
statement — and the set of *pinned* LSNs held by open :class:`Snapshot`
handles.  The concurrency model is deliberately asymmetric:

* **Single writer.**  Exactly one thread (the daemon's ingest path)
  mutates the database.  :meth:`MvccState.begin_statement` enforces this
  best-effort: a second concurrent writer raises instead of corrupting.
* **Lock-free readers.**  Readers never take a lock on the write path.
  A reader opens a snapshot — pinning the current commit LSN — and
  resolves every row through *pre-image history*: each mutation records
  ``(lsn, pre_image)`` for the row it supersedes, so a reader at pin
  ``S`` takes the first history entry with ``lsn > S`` (the oldest
  superseding statement's pre-image) or, absent one, the live heap row.
  Structural races (B+tree splits, postings-dict resizes) are handled by
  a per-table seqlock with optimistic retry — readers spin-yield, they
  never block on ingest.
* **Transaction-consistent pins.**  While the writer has a transaction
  open, new snapshots pin the *transaction-begin* LSN, so a reader can
  never observe half of a document ingest (each document loads inside
  one transaction).  This is correct even if the transaction later rolls
  back: the rollback's compensating statements get their own LSNs and
  history entries, all above the pin.
* **Bounded GC.**  History is reclaimed by :meth:`Table.vacuum_versions`
  down to the *GC horizon* — the oldest pinned LSN (transaction pins
  included), or the current LSN when nothing is pinned.  A pinned
  generation is therefore never reclaimed; an idle system converges to
  zero retained versions.

Writer statement protocol (see :class:`repro.ordbms.table.Table`): open
the seqlock (odd), record pre-images, mutate heap + indexes, close the
seqlock (even), *then* publish the statement's LSN.  Readers observing
the seqlock mid-statement retry; readers racing the LSN publish see
either the old LSN (pin excludes the statement; its pre-image is
recorded) or the new one (statement visible; heap is consistent) —
both are consistent snapshots.
"""

from __future__ import annotations

import itertools
import threading

from repro import obs
from repro.errors import TransactionError


class _Absent:
    """Sentinel: "no row version is visible at this LSN"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ABSENT"


#: Pre-image recorded by INSERT/RESTORE statements (the row did not exist
#: before them) and the visibility result for rows a snapshot cannot see.
ABSENT = _Absent()


class Snapshot:
    """A pinned read view: every read through it sees commit LSN ``lsn``.

    Obtained from :meth:`repro.ordbms.database.Database.open_snapshot`
    (or :meth:`repro.store.xmlstore.XmlStore.snapshot`); usable as a
    context manager.  Releasing moves the GC horizon forward; reads
    through a released snapshot raise.
    """

    __slots__ = ("lsn", "token", "_state", "_released")

    def __init__(self, state: "MvccState", token: int, lsn: int) -> None:
        self._state = state
        self.token = token
        self.lsn = lsn
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Drop the pin (idempotent)."""
        if not self._released:
            self._released = True
            self._state.release(self.token)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "released" if self._released else "pinned"
        return f"Snapshot(lsn={self.lsn}, {state})"


class MvccState:
    """Per-database MVCC bookkeeping: commit LSN, pins, GC accounting."""

    def __init__(self) -> None:
        #: Last *committed* statement LSN.  Written only by the single
        #: writer thread; read concurrently by snapshot opens.
        self.lsn = 0  # repro: guarded-by(gil) single-writer publishes; readers take any committed value
        #: Snapshot token -> pinned LSN.
        self._pins: dict[int, int] = {}  # repro: guarded-by(_pin_lock) mutated by every reader thread's open/release
        self._pin_lock = threading.Lock()
        self._tokens = itertools.count(1)  # repro: guarded-by(_pin_lock) advanced only under the pin lock
        #: While the writer has a transaction open: the LSN snapshots
        #: must pin so they see nothing of the in-flight transaction.
        self._txn_pin: int | None = None  # repro: guarded-by(gil) set/cleared by the single writer; readers take either value
        #: Best-effort second-writer tripwire (see begin_statement).
        self._writer_active = False  # repro: guarded-by(gil) single-writer flag; check-then-set is a tripwire, not a mutex
        #: Total history entries reclaimed by version-GC (monotonic).
        self.reclaimed_total = 0  # repro: guarded-by(gil) bumped only on the writer thread

    # -- writer protocol ----------------------------------------------------

    def begin_statement(self) -> int:
        """Reserve the next statement LSN; enforce the single writer."""
        if self._writer_active:
            raise TransactionError(
                "concurrent mutation detected: the MVCC protocol allows "
                "exactly one writer thread"
            )
        self._writer_active = True
        return self.lsn + 1

    def commit_statement(self, lsn: int) -> None:
        """Publish ``lsn`` as committed (the statement's heap work is done)."""
        self.lsn = lsn
        self._writer_active = False

    def transaction_opened(self) -> None:
        """Pin-override: snapshots opened from now see the pre-txn LSN."""
        self._txn_pin = self.lsn

    def transaction_closed(self) -> None:
        self._txn_pin = None

    # -- reader protocol ----------------------------------------------------

    def open(self) -> Snapshot:
        """Pin the current visibility LSN and hand back the handle."""
        with self._pin_lock:
            token = next(self._tokens)
            txn_pin = self._txn_pin
            lsn = txn_pin if txn_pin is not None else self.lsn
            self._pins[token] = lsn
            self._publish_gauges_locked()
        obs.inc("repro_mvcc_snapshots_opened_total")
        return Snapshot(self, token, lsn)

    def release(self, token: int) -> None:
        with self._pin_lock:
            self._pins.pop(token, None)
            self._publish_gauges_locked()

    # -- GC ------------------------------------------------------------------

    def gc_horizon(self) -> int:
        """Highest LSN whose pre-images no live reader can still need."""
        with self._pin_lock:
            pins = list(self._pins.values())
        if self._txn_pin is not None:
            pins.append(self._txn_pin)
        return min(pins) if pins else self.lsn

    def note_reclaimed(self, count: int) -> None:
        if count:
            self.reclaimed_total += count
            obs.inc("repro_mvcc_versions_reclaimed_total", count)

    # -- introspection -------------------------------------------------------

    @property
    def active_snapshots(self) -> int:
        with self._pin_lock:
            return len(self._pins)

    def oldest_pin(self) -> int | None:
        """The oldest pinned LSN, or None when no snapshot is open."""
        with self._pin_lock:
            return min(self._pins.values()) if self._pins else None

    def _publish_gauges_locked(self) -> None:
        """Refresh the obs gauges (caller holds ``_pin_lock``)."""
        obs.set_gauge("repro_mvcc_active_snapshots", len(self._pins))
        oldest = min(self._pins.values()) if self._pins else None
        age = 0 if oldest is None else max(0, self.lsn - oldest)
        obs.set_gauge("repro_mvcc_oldest_snapshot_age_lsns", age)
