"""Database snapshots: serialise an entire database to text and back.

NETMARK's database "is nothing more than an intelligent storage
component"; intelligent storage survives restarts.  A snapshot captures
everything — schemas, declared indexes, and every heap block *including
tombstoned slots* — so that physical ROWIDs come back identical, which
matters because ROWIDs are stored inside XML-table rows (``PARENTROWID``,
``SIBLINGID``).  Indexes are rebuilt from the restored heaps rather than
serialised; they are derived state.

Format: a line-oriented text format (version-stamped), one section per
table::

    %NETMARK-SNAPSHOT 1
    TABLE <name>
    SCHEMA <json-ish schema line>
    ROW <file>.<block>.<slot> <tab-separated typed values>
    TOMB <file>.<block>.<slot>
    ...

Typed value encoding: ``~`` NULL, ``i:<n>``, ``f:<x>``, ``s:<escaped>``,
``t:<iso>``, ``r:<rowid>``.  Strings escape backslash, tab and newline.
The value codec itself lives in :mod:`repro.ordbms.valuecodec`, shared
with the write-ahead log so checkpoint and log records always agree.
"""

from __future__ import annotations

from typing import Any

from repro.errors import DatabaseError
from repro.ordbms import types as _types
from repro.ordbms.database import Database
from repro.ordbms.rowid import RowId
from repro.ordbms.schema import Column, ForeignKey, TableSchema
from repro.ordbms.storage import _TOMBSTONE  # noqa: SLF001 - same package
from repro.ordbms.table import Table
from repro.ordbms.valuecodec import decode_value, encode_value

MAGIC = "%NETMARK-SNAPSHOT 1"

_TYPE_NAMES = {
    "INTEGER": _types.INTEGER,
    "FLOAT": _types.FLOAT,
    "VARCHAR": _types.VARCHAR,
    "CLOB": _types.CLOB,
    "TIMESTAMP": _types.TIMESTAMP,
    "ROWID": _types.ROWID,
}

# Historical private aliases (pre-valuecodec); kept so existing callers
# and tests keep working against the shared codec.
_encode_value = encode_value
_decode_value = decode_value


def _encode_schema(table: Table) -> str:
    schema = table.schema
    parts: list[str] = []
    for column in schema.columns:
        flags = []
        if not column.nullable:
            flags.append("!")
        parts.append(f"{column.name}:{column.dtype.name}{''.join(flags)}")
    header = ",".join(parts)
    pk = schema.primary_key or "-"
    unique = "|".join(schema.unique) or "-"
    fks = "|".join(
        f"{fk.column}>{fk.ref_table}.{fk.ref_column}"
        for fk in schema.foreign_keys
    ) or "-"
    indexes = "|".join(
        column
        for column in table.index_columns
        if column != schema.primary_key and column not in schema.unique
    ) or "-"
    text_indexes = "|".join(
        column.name
        for column in schema.columns
        if table.text_index_on(column.name) is not None
    ) or "-"
    return "\t".join([header, pk, unique, fks, indexes, text_indexes])


def _decode_schema(name: str, line: str) -> tuple[TableSchema, list[str], list[str]]:
    header, pk, unique, fks, indexes, text_indexes = line.split("\t")
    columns: list[Column] = []
    for part in header.split(","):
        column_name, _, type_part = part.partition(":")
        nullable = not type_part.endswith("!")
        type_name = type_part.rstrip("!")
        dtype = _TYPE_NAMES.get(type_name)
        if dtype is None:
            raise DatabaseError(f"unknown snapshot column type {type_name!r}")
        columns.append(Column(column_name, dtype, nullable=nullable))
    foreign_keys = []
    if fks != "-":
        for fk_part in fks.split("|"):
            column, _, reference = fk_part.partition(">")
            ref_table, _, ref_column = reference.partition(".")
            foreign_keys.append(ForeignKey(column, ref_table, ref_column))
    schema = TableSchema(
        name,
        tuple(columns),
        primary_key=None if pk == "-" else pk,
        unique=() if unique == "-" else tuple(unique.split("|")),
        foreign_keys=tuple(foreign_keys),
    )
    extra_indexes = [] if indexes == "-" else indexes.split("|")
    text_index_columns = [] if text_indexes == "-" else text_indexes.split("|")
    return schema, extra_indexes, text_index_columns


def dump_database(database: Database) -> str:
    """Serialise ``database`` into snapshot text."""
    lines = [MAGIC]
    for table in database.catalog:
        lines.append(f"TABLE {table.schema.name}")
        lines.append("SCHEMA " + _encode_schema(table))
        heap = table._heap  # noqa: SLF001 - deliberate: physical layout
        for file_no, blocks in enumerate(heap._files):
            for block_no, block in enumerate(blocks):
                for slot_no, row in enumerate(block.slots):
                    address = f"F{file_no}.B{block_no}.S{slot_no}"
                    if row is _TOMBSTONE:
                        lines.append(f"TOMB {address}")
                    else:
                        encoded = "\t".join(_encode_value(v) for v in row)
                        lines.append(f"ROW {address} {encoded}")
    return "\n".join(lines) + "\n"


def load_database(text: str, name: str = "restored") -> Database:
    """Rebuild a database from snapshot text (indexes are rebuilt)."""
    # Split strictly on '\n': splitlines() would also split on Unicode
    # line separators (U+0085, U+2028...) that may appear *inside* stored
    # string values, which only escape \n/\r/\t/backslash.
    lines = text.split("\n")
    if not lines or lines[0] != MAGIC:
        raise DatabaseError("not a NETMARK snapshot (bad magic line)")
    database = Database(name)
    table: Table | None = None
    pending_name: str | None = None
    for line_no, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        verb, _, rest = line.partition(" ")
        if verb == "TABLE":
            pending_name = rest.strip()
            table = None
        elif verb == "SCHEMA":
            if pending_name is None:
                raise DatabaseError(f"snapshot line {line_no}: SCHEMA before TABLE")
            schema, extra_indexes, text_index_columns = _decode_schema(
                pending_name, rest
            )
            table = database.create_table(schema)
            for column in extra_indexes:
                if table.index_on(column) is None:
                    table.create_index(column)
            for column in text_index_columns:
                table.create_text_index(column)
            pending_name = None
        elif verb in {"ROW", "TOMB"}:
            if table is None:
                raise DatabaseError(f"snapshot line {line_no}: row before schema")
            if verb == "TOMB":
                address_text = rest.strip()
                row_values = None
            else:
                address_text, _, payload = rest.partition(" ")
                row_values = tuple(
                    _decode_value(part) for part in payload.split("\t")
                ) if payload else ()
            _restore_slot(table, RowId.decode(address_text), row_values)
        else:
            raise DatabaseError(f"snapshot line {line_no}: unknown verb {verb!r}")
    return database


def _restore_slot(
    table: Table, rowid: RowId, row: tuple[Any, ...] | None
) -> None:
    """Append a slot at exactly ``rowid`` (snapshots are in heap order)."""
    heap = table._heap  # noqa: SLF001
    if row is None:
        # Insert a placeholder then tombstone it, preserving the address.
        placeholder = tuple([None] * len(table.schema))
        got = heap.insert(placeholder)
        if got != rowid:
            raise DatabaseError(
                f"snapshot slot order broken: expected {rowid}, got {got}"
            )
        heap.delete(got)
        return
    if len(row) != len(table.schema):
        raise DatabaseError(
            f"snapshot row width {len(row)} != schema width "
            f"{len(table.schema)} for {table.schema.name}"
        )
    got = heap.insert(row)
    if got != rowid:
        raise DatabaseError(
            f"snapshot slot order broken: expected {rowid}, got {got}"
        )
    table._index_row(got, row)  # noqa: SLF001
