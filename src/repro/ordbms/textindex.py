"""Inverted full-text index — the Oracle Text substitute.

The paper evaluates context/content queries "by first querying the text
index for the search key"; this module provides that index.  It maps terms
to postings of ``(rowid, positions)`` so the query layer can do:

* single-term lookup (``Content=Shuttle``),
* conjunctive multi-term lookup,
* exact phrase lookup (``Context=Technology Gap``) using term positions,
* prefix lookup (used by the query language's ``*`` suffix wildcard).

Tokenisation is lower-cased word extraction with a small stopword list;
both are deliberately simple and, critically, *identical* for indexing and
querying so the two sides can never disagree.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Iterable, Iterator

from repro import obs
from repro.ordbms.rowid import RowId

_WORD_RE = re.compile(r"[A-Za-z0-9]+(?:'[A-Za-z]+)?")

#: Terms too common to be useful search keys.  Small on purpose: context
#: headings are short and dropping too much would lose phrases like
#: "Statement of Work".
STOPWORDS = frozenset(
    {"a", "an", "and", "are", "as", "at", "be", "by", "in", "is", "it",
     "of", "on", "or", "the", "to", "was", "were", "with"}
)


def tokenize(text: str, keep_stopwords: bool = False) -> list[str]:
    """Split ``text`` into lower-case index terms.

    Stopwords are *kept* with a ``None``-free placeholder semantics when
    ``keep_stopwords`` is true — phrase matching needs the original
    positions, so phrase tokenisation keeps everything.
    """
    words = [match.group(0).lower() for match in _WORD_RE.finditer(text)]
    if keep_stopwords:
        return words
    return [word for word in words if word not in STOPWORDS]


class TextIndex:
    """An inverted index over one text column of one table."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        # term -> {rowid -> [positions]}
        self._postings: dict[str, dict[RowId, list[int]]] = defaultdict(dict)
        self._doc_count = 0

    def __len__(self) -> int:
        """Number of indexed rows."""
        return self._doc_count

    @property
    def term_count(self) -> int:
        return len(self._postings)

    # -- mutation -----------------------------------------------------------

    def add(self, rowid: RowId, text: str) -> None:
        """Index ``text`` under ``rowid``.

        All tokens (including stopwords) are recorded with their positions
        so phrase queries can match across stopwords; the plain term lookup
        path simply never asks for a stopword.
        """
        tokens = tokenize(text, keep_stopwords=True)
        if not tokens:
            return
        added = False
        for position, term in enumerate(tokens):
            by_row = self._postings[term]
            if rowid not in by_row:
                by_row[rowid] = []
                added = True
            by_row[rowid].append(position)
        if added:
            self._doc_count += 1

    def remove(self, rowid: RowId, text: str) -> None:
        """Remove a previously indexed ``(rowid, text)`` pair."""
        tokens = set(tokenize(text, keep_stopwords=True))
        removed = False
        for term in tokens:
            by_row = self._postings.get(term)
            if by_row and rowid in by_row:
                del by_row[rowid]
                removed = True
                if not by_row:
                    del self._postings[term]
        if removed:
            self._doc_count -= 1

    # -- queries --------------------------------------------------------------

    def _rows(self, term: str) -> set[RowId]:
        return set(self._postings.get(term.lower(), ()))

    def lookup(self, term: str) -> set[RowId]:
        """ROWIDs whose text contains ``term`` (case-insensitive)."""
        obs.inc("repro_ordbms_textindex_lookups_total", kind="term")
        return self._rows(term)

    def lookup_all(self, terms: Iterable[str]) -> set[RowId]:
        """ROWIDs containing *every* term (conjunctive)."""
        obs.inc("repro_ordbms_textindex_lookups_total", kind="all")
        result: set[RowId] | None = None
        for term in terms:
            postings = self._rows(term)
            result = postings if result is None else result & postings
            if not result:
                return set()
        return result if result is not None else set()

    def lookup_any(self, terms: Iterable[str]) -> set[RowId]:
        """ROWIDs containing *any* term (disjunctive)."""
        obs.inc("repro_ordbms_textindex_lookups_total", kind="any")
        result: set[RowId] = set()
        for term in terms:
            result |= self._rows(term)
        return result

    def lookup_phrase(self, phrase: str) -> set[RowId]:
        """ROWIDs whose text contains ``phrase`` as consecutive tokens."""
        obs.inc("repro_ordbms_textindex_lookups_total", kind="phrase")
        tokens = tokenize(phrase, keep_stopwords=True)
        if not tokens:
            return set()
        if len(tokens) == 1:
            return self._rows(tokens[0])
        candidate_rows: set[RowId] = set(self._postings.get(tokens[0], ()))
        for term in tokens[1:]:
            by_row = self._postings.get(term)
            if not by_row:
                return set()
            candidate_rows &= set(by_row)
        if not candidate_rows:
            return set()
        matches: set[RowId] = set()
        first = self._postings[tokens[0]]
        for rowid in candidate_rows:
            starts = first[rowid]
            for start in starts:
                if all(
                    start + offset in self._position_set(tokens[offset], rowid)
                    for offset in range(1, len(tokens))
                ):
                    matches.add(rowid)
                    break
        return matches

    def lookup_prefix(self, prefix: str) -> set[RowId]:
        """ROWIDs containing any term that starts with ``prefix``."""
        obs.inc("repro_ordbms_textindex_lookups_total", kind="prefix")
        prefix = prefix.lower()
        result: set[RowId] = set()
        for term, by_row in self._postings.items():
            if term.startswith(prefix):
                result.update(by_row)
        return result

    def terms(self) -> Iterator[str]:
        """Yield every distinct indexed term (unordered)."""
        return iter(self._postings)

    def signature(self) -> tuple[tuple[str, RowId, tuple[int, ...]], ...]:
        """Canonical content signature, for index-agreement checks.

        Two indexes built over the same rows produce equal signatures
        regardless of insertion order; ``store.fsck`` compares a freshly
        rebuilt index against the live one to detect drift.
        """
        return tuple(
            (term, rowid, tuple(positions))
            for term in sorted(self._postings)
            for rowid, positions in sorted(self._postings[term].items())
        )

    # -- internals --------------------------------------------------------------

    def _position_set(self, term: str, rowid: RowId) -> frozenset[int]:
        positions = self._postings.get(term, {}).get(rowid)
        return frozenset(positions) if positions else frozenset()
