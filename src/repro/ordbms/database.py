"""The `Database` facade: catalog + transactional mutation entry points.

This is the single object the rest of the library holds onto.  All
mutations can run inside a :class:`~repro.ordbms.transaction.Transaction`
obtained from :meth:`Database.begin`; when no transaction is open,
mutations auto-commit (each statement is atomic on its own, which matches
how the table layer already behaves).

The facade also exposes ``stats`` counters (rows read/written, index
lookups, rowid fetches) that the ablation benchmarks use to show *why* the
rowid-based traversal wins — operation counts are a machine-independent
proxy for the I/O the paper's Oracle deployment saved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import TransactionError
from repro.ordbms.catalog import Catalog
from repro.ordbms.rowid import RowId
from repro.ordbms.schema import TableSchema
from repro.ordbms.table import Table
from repro.ordbms.transaction import Transaction


@dataclass
class DatabaseStats:
    """Operation counters; reset with :meth:`reset`."""

    rows_inserted: int = 0
    rows_updated: int = 0
    rows_deleted: int = 0
    rowid_fetches: int = 0
    #: Batched fetch *calls* (each covers many rowids; the rows still
    #: count into :attr:`rowid_fetches`).  The fig6 bench reports the
    #: call ratio — batch calls are the read path's unit of round trips.
    batch_fetches: int = 0
    transactions_committed: int = 0
    transactions_rolled_back: int = 0

    def reset(self) -> None:
        for field_name in self.__dataclass_fields__:
            setattr(self, field_name, 0)


@dataclass
class Database:
    """An in-process object-relational database instance."""

    name: str = "netmarkdb"
    catalog: Catalog = field(default_factory=Catalog)
    stats: DatabaseStats = field(default_factory=DatabaseStats)
    _current: Transaction | None = None

    # -- DDL ----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        return self.catalog.create_table(schema)

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    # -- transactions ---------------------------------------------------------

    def begin(self) -> Transaction:
        """Open a transaction; only one may be active at a time."""
        if self._current is not None and self._current.is_active:
            raise TransactionError("a transaction is already active")
        self._current = Transaction(self)
        return self._current

    def _transaction_closed(self, transaction: Transaction) -> None:
        if transaction is self._current:
            self._current = None
        if transaction._state == "committed":
            self.stats.transactions_committed += 1
        else:
            self.stats.transactions_rolled_back += 1

    @property
    def in_transaction(self) -> bool:
        return self._current is not None and self._current.is_active

    # -- DML (transaction-aware) ------------------------------------------------

    def insert(self, table_name: str, values: Mapping[str, Any]) -> RowId:
        table = self.table(table_name)
        rowid = table.insert(values)
        self.stats.rows_inserted += 1
        if self.in_transaction:
            assert self._current is not None
            self._current.record_undo(
                f"insert {table.schema.name} {rowid}",
                lambda: table.delete(rowid),
            )
        return rowid

    def update(
        self, table_name: str, rowid: RowId, changes: Mapping[str, Any]
    ) -> None:
        table = self.table(table_name)
        old = table.fetch(rowid)
        old.pop("ROWID_", None)
        table.update(rowid, changes)
        self.stats.rows_updated += 1
        if self.in_transaction:
            assert self._current is not None
            self._current.record_undo(
                f"update {table.schema.name} {rowid}",
                lambda: table.update(rowid, old),
            )

    def delete(self, table_name: str, rowid: RowId) -> None:
        table = self.table(table_name)
        old = table.delete(rowid)
        self.stats.rows_deleted += 1
        if self.in_transaction:
            assert self._current is not None
            self._current.record_undo(
                f"delete {table.schema.name} {rowid}",
                lambda: table.restore(rowid, old),
            )

    def fetch(self, table_name: str, rowid: RowId) -> dict[str, Any]:
        """O(1) fetch by physical ROWID (counted in stats)."""
        self.stats.rowid_fetches += 1
        return self.table(table_name).fetch(rowid)

    def fetch_many(self, table_name: str, rowids: list[RowId]) -> list[dict[str, Any]]:
        """Batch fetch by ROWID list — one call, ``len(rowids)`` rows."""
        self.stats.rowid_fetches += len(rowids)
        self.stats.batch_fetches += 1
        return self.table(table_name).fetch_many(rowids)
