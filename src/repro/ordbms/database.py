"""The `Database` facade: catalog + transactional mutation entry points.

This is the single object the rest of the library holds onto.  All
mutations can run inside a :class:`~repro.ordbms.transaction.Transaction`
obtained from :meth:`Database.begin`; when no transaction is open,
mutations auto-commit (each statement is atomic on its own, which matches
how the table layer already behaves).

The facade also exposes ``stats`` counters (rows read/written, index
lookups, rowid fetches) that the ablation benchmarks use to show *why* the
rowid-based traversal wins — operation counts are a machine-independent
proxy for the I/O the paper's Oracle deployment saved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro import obs
from repro.errors import TransactionError, WalError
from repro.ordbms.catalog import Catalog
from repro.ordbms.mvcc import MvccState, Snapshot
from repro.ordbms.rowid import RowId
from repro.ordbms.schema import TableSchema
from repro.ordbms.table import Table
from repro.ordbms.transaction import Transaction
from repro.ordbms.wal import AUTOCOMMIT_TXID, LogDevice, WriteAheadLog


@dataclass
class DatabaseStats:
    """Operation counters; reset with :meth:`reset`."""

    rows_inserted: int = 0
    rows_updated: int = 0
    rows_deleted: int = 0
    rowid_fetches: int = 0
    #: Batched fetch *calls* (each covers many rowids; the rows still
    #: count into :attr:`rowid_fetches`).  The fig6 bench reports the
    #: call ratio — batch calls are the read path's unit of round trips.
    batch_fetches: int = 0
    transactions_committed: int = 0
    transactions_rolled_back: int = 0
    #: Transactions whose *rollback itself* raised: an undo callback
    #: failed, so the in-memory state may be partially reverted.  The
    #: write-ahead log (when attached) still discards them cleanly.
    transactions_failed: int = 0

    def reset(self) -> None:
        for field_name in self.__dataclass_fields__:
            setattr(self, field_name, 0)


@dataclass
class Database:
    """An in-process object-relational database instance."""

    name: str = "netmarkdb"
    catalog: Catalog = field(default_factory=Catalog)
    stats: DatabaseStats = field(default_factory=DatabaseStats)
    #: Attached write-ahead log; None means the database is volatile
    #: (today's default).  Attach via :meth:`enable_wal` (fresh database)
    #: or :func:`repro.ordbms.recovery.recover` (reopen after a crash).
    wal: WriteAheadLog | None = None
    #: Database-level MVCC state: the commit LSN every mutation statement
    #: advances and the snapshot pins readers hold.  Tables created
    #: through :meth:`create_table` share it, so one snapshot covers the
    #: DOC and XML tables consistently.
    mvcc: MvccState = field(default_factory=MvccState)
    _current: Transaction | None = None
    _next_txid: int = 1

    # -- DDL ----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        table = self.catalog.create_table(schema)
        table.bind_mvcc(self.mvcc)
        return table

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    # -- transactions ---------------------------------------------------------

    def begin(self) -> Transaction:
        """Open a transaction; only one may be active at a time."""
        if self._current is not None and self._current.is_active:
            raise TransactionError("a transaction is already active")
        txid = self._next_txid
        self._next_txid += 1
        self._current = Transaction(self, txid=txid)
        # Snapshots opened while this transaction is in flight pin the
        # pre-transaction LSN: no reader ever sees a partial transaction
        # (each document ingest is one transaction).
        self.mvcc.transaction_opened()
        if self.wal is not None:
            self.wal.log_begin(txid)
        return self._current

    def _transaction_closed(self, transaction: Transaction) -> None:
        self.mvcc.transaction_closed()
        if transaction is self._current:
            self._current = None
        if transaction._state == "committed":
            self.stats.transactions_committed += 1
        elif transaction._state == "failed":
            self.stats.transactions_failed += 1
        else:
            self.stats.transactions_rolled_back += 1

    @property
    def in_transaction(self) -> bool:
        return self._current is not None and self._current.is_active

    # -- snapshots (MVCC) -----------------------------------------------------

    def open_snapshot(self) -> Snapshot:
        """Pin the current commit LSN for non-blocking consistent reads.

        The returned handle is a context manager; release it (or leave
        the ``with`` block) to let version-GC advance past its LSN::

            with database.open_snapshot() as snap:
                row = table.visible_row(rowid, snap.lsn)
        """
        return self.mvcc.open()

    def vacuum_versions(self) -> int:
        """Version-GC across every table, down to the current GC horizon.

        Tables also auto-vacuum every
        :data:`~repro.ordbms.table.AUTO_VACUUM_INTERVAL` statements; this
        is the explicit sweep (e.g. after the last snapshot over a bulk
        ingest closes).  Returns total history entries reclaimed.
        """
        return sum(table.vacuum_versions() for table in self.catalog)

    # -- durability -----------------------------------------------------------

    def enable_wal(self, device: LogDevice) -> WriteAheadLog:
        """Attach a write-ahead log to a fresh database.

        Writes a baseline checkpoint immediately — the WAL carries no
        DDL records, so the checkpoint is what makes the current schema
        (and any rows already present) recoverable.  Every later commit
        is durable the moment it returns.
        """
        wal = WriteAheadLog(device)
        self.attach_wal(wal)
        self.checkpoint()
        return wal

    def attach_wal(self, wal: WriteAheadLog, next_txid: int | None = None) -> None:
        """Adopt an existing log (the recovery resume path)."""
        if self.wal is not None:
            raise WalError(
                f"database {self.name!r} already has a write-ahead log"
            )
        if self.in_transaction:
            raise TransactionError(
                "cannot attach a write-ahead log inside an open transaction"
            )
        self.wal = wal
        if next_txid is not None:
            self._next_txid = max(self._next_txid, next_txid)

    def checkpoint(self) -> int:
        """Fold all durable state into a fresh checkpoint; truncate the log.

        Returns the highest LSN the checkpoint covers.  Forbidden while
        a transaction is open — a checkpoint must capture a transaction-
        consistent image.
        """
        if self.wal is None:
            raise WalError("checkpoint requires an attached write-ahead log")
        if self.in_transaction:
            raise TransactionError(
                "cannot checkpoint while a transaction is active"
            )
        from repro.ordbms.snapshot import dump_database

        return self.wal.write_checkpoint(dump_database(self))

    def _wal_txid(self) -> int:
        if self.in_transaction:
            assert self._current is not None
            return self._current.txid
        return AUTOCOMMIT_TXID

    # -- DML (transaction-aware) ------------------------------------------------

    def insert(self, table_name: str, values: Mapping[str, Any]) -> RowId:
        table = self.table(table_name)
        rowid = table.insert(values)
        self.stats.rows_inserted += 1
        if self.wal is not None:
            self.wal.log_insert(
                self._wal_txid(), table.schema.name, rowid,
                table.raw_row(rowid),
            )
            self._sync_autocommit()
        if self.in_transaction:
            assert self._current is not None
            self._current.record_undo(
                f"insert {table.schema.name} {rowid}",
                lambda: table.delete(rowid),
            )
        return rowid

    def update(
        self, table_name: str, rowid: RowId, changes: Mapping[str, Any]
    ) -> None:
        table = self.table(table_name)
        old = table.fetch(rowid)
        old.pop("ROWID_", None)
        before = table.raw_row(rowid) if self.wal is not None else ()
        table.update(rowid, changes)
        self.stats.rows_updated += 1
        if self.wal is not None:
            self.wal.log_update(
                self._wal_txid(), table.schema.name, rowid, before,
                table.raw_row(rowid),
            )
            self._sync_autocommit()
        if self.in_transaction:
            assert self._current is not None
            self._current.record_undo(
                f"update {table.schema.name} {rowid}",
                lambda: table.update(rowid, old),
            )

    def delete(self, table_name: str, rowid: RowId) -> None:
        table = self.table(table_name)
        before = table.raw_row(rowid) if self.wal is not None else ()
        old = table.delete(rowid)
        self.stats.rows_deleted += 1
        if self.wal is not None:
            self.wal.log_delete(
                self._wal_txid(), table.schema.name, rowid, before
            )
            self._sync_autocommit()
        if self.in_transaction:
            assert self._current is not None
            self._current.record_undo(
                f"delete {table.schema.name} {rowid}",
                lambda: table.restore(rowid, old),
            )

    def _sync_autocommit(self) -> None:
        """Outside a transaction every statement commits — and syncs."""
        if self.wal is not None and not self.in_transaction:
            self.wal.device.sync()
            obs.inc("repro_ordbms_wal_syncs_total", reason="autocommit")

    def fetch(self, table_name: str, rowid: RowId) -> dict[str, Any]:
        """O(1) fetch by physical ROWID (counted in stats)."""
        self.stats.rowid_fetches += 1
        return self.table(table_name).fetch(rowid)

    def fetch_many(self, table_name: str, rowids: list[RowId]) -> list[dict[str, Any]]:
        """Batch fetch by ROWID list — one call, ``len(rowids)`` rows."""
        self.stats.rowid_fetches += len(rowids)
        self.stats.batch_fetches += 1
        return self.table(table_name).fetch_many(rowids)
