"""A B+tree secondary index.

Keys are arbitrary comparable Python values (the engine only indexes one
type per column, so heterogeneous comparisons never arise).  Duplicate keys
are supported — each leaf entry holds the list of ROWIDs carrying that key,
which is exactly what the NETMARK ``XML`` table needs for columns such as
``NODENAME`` where many nodes share a value.

The implementation is a textbook order-``FANOUT`` B+tree: leaves are linked
left-to-right for range scans, internal nodes hold separator keys, splits
propagate upward, and deletes use lazy underflow (entries are removed but
nodes are not rebalanced — fine for an index whose workload is
insert-mostly, and it keeps the invariants easy to state and property-test:
sorted keys in every node, all leaves at the same depth reachable via the
leaf chain).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro.ordbms.rowid import RowId

#: Maximum children per internal node / entries per leaf.
FANOUT = 32


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[list[RowId]] = []
        self.next: _Leaf | None = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.children: list[Any] = []


class BTreeIndex:
    """A B+tree mapping keys to lists of ROWIDs."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._root: _Leaf | _Internal = _Leaf()
        self._size = 0  # number of (key, rowid) pairs
        #: Plain probe tally.  ``search`` runs once per tree hop on the
        #: read path (thousands per query), so it must not pay a metrics
        #: dispatch — callers publish this at call/query granularity.
        self.probes = 0

    def __len__(self) -> int:
        return self._size

    # -- mutation ----------------------------------------------------------

    def insert(self, key: Any, rowid: RowId) -> None:
        """Add ``(key, rowid)``; duplicates of both are allowed."""
        split = self._insert(self._root, key, rowid)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def delete(self, key: Any, rowid: RowId) -> bool:
        """Remove one ``(key, rowid)`` pair; return False if absent."""
        leaf = self._find_leaf(key)
        position = bisect.bisect_left(leaf.keys, key)
        while position < len(leaf.keys) and leaf.keys[position] == key:
            rowids = leaf.values[position]
            if rowid in rowids:
                rowids.remove(rowid)
                if not rowids:
                    del leaf.keys[position]
                    del leaf.values[position]
                self._size -= 1
                return True
            position += 1
            if position >= len(leaf.keys) and leaf.next is not None:
                leaf = leaf.next
                position = 0
        return False

    # -- queries -----------------------------------------------------------

    def search(self, key: Any) -> list[RowId]:
        """Return all ROWIDs with exactly ``key`` (possibly empty)."""
        self.probes += 1
        result: list[RowId] = []
        leaf: _Leaf | None = self._find_leaf(key)
        position = bisect.bisect_left(leaf.keys, key)
        while leaf is not None:
            while position < len(leaf.keys) and leaf.keys[position] == key:
                result.extend(leaf.values[position])
                position += 1
            if position < len(leaf.keys):
                return result
            leaf = leaf.next
            position = 0
        return result

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, RowId]]:
        """Yield ``(key, rowid)`` pairs with ``low <= key <= high`` in order.

        ``None`` bounds are open-ended; the ``include_*`` flags make each
        bound strict when False.
        """
        if low is None:
            leaf: _Leaf | None = self._leftmost_leaf()
            position = 0
        else:
            leaf = self._find_leaf(low)
            if include_low:
                position = bisect.bisect_left(leaf.keys, low)
            else:
                position = bisect.bisect_right(leaf.keys, low)
        while leaf is not None:
            while position < len(leaf.keys):
                key = leaf.keys[position]
                if high is not None:
                    if include_high and key > high:
                        return
                    if not include_high and key >= high:
                        return
                for rowid in leaf.values[position]:
                    yield key, rowid
                position += 1
            leaf = leaf.next
            position = 0

    def items(self) -> Iterator[tuple[Any, RowId]]:
        """Yield every ``(key, rowid)`` pair in key order."""
        return self.range()

    def keys(self) -> Iterator[Any]:
        """Yield distinct keys in order."""
        leaf: _Leaf | None = self._leftmost_leaf()
        while leaf is not None:
            yield from leaf.keys
            leaf = leaf.next

    @property
    def depth(self) -> int:
        """Height of the tree (1 for a lone leaf)."""
        node = self._root
        height = 1
        while isinstance(node, _Internal):
            node = node.children[0]
            height += 1
        return height

    # -- internals -----------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            position = bisect.bisect_right(node.keys, key)
            node = node.children[position]
        return node

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    def _insert(
        self, node: _Leaf | _Internal, key: Any, rowid: RowId
    ) -> tuple[Any, _Leaf | _Internal] | None:
        """Recursive insert; returns ``(separator, new_right)`` on split."""
        if isinstance(node, _Leaf):
            position = bisect.bisect_left(node.keys, key)
            if position < len(node.keys) and node.keys[position] == key:
                node.values[position].append(rowid)
                return None
            node.keys.insert(position, key)
            node.values.insert(position, [rowid])
            if len(node.keys) > FANOUT:
                return self._split_leaf(node)
            return None

        position = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[position], key, rowid)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(position, separator)
        node.children.insert(position + 1, right)
        if len(node.children) > FANOUT:
            return self._split_internal(node)
        return None

    @staticmethod
    def _split_leaf(leaf: _Leaf) -> tuple[Any, _Leaf]:
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        right.next = leaf.next
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        leaf.next = right
        return right.keys[0], right

    @staticmethod
    def _split_internal(node: _Internal) -> tuple[Any, _Internal]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Internal()
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        return separator, right
