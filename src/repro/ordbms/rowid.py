"""Physical ROWIDs.

The paper notes that NETMARK "exploited the feature of physical row-ids in
Oracle for very fast traversal between nodes that are related."  We model a
physical ROWID the way Oracle does conceptually: a triple of *(data file,
block, slot)* that addresses a row's storage location directly, giving O(1)
row fetch with no index lookup.

ROWIDs are immutable, hashable, and totally ordered by physical position —
a property the XML store relies on for deterministic sibling ordering.
They render in an Oracle-flavoured base-32 text form (e.g.
``AAAAB3AAC``-style strings are abbreviated here to ``F0.B12.S3``) that is
stable across runs for identical insert sequences.
"""

from __future__ import annotations

import re
from typing import NamedTuple

from repro.errors import RowIdError

_ROWID_RE = re.compile(r"^F(\d+)\.B(\d+)\.S(\d+)$")


class RowId(NamedTuple):
    """Physical address of a row: *(file_no, block_no, slot_no)*."""

    file_no: int
    block_no: int
    slot_no: int

    def __str__(self) -> str:
        return f"F{self.file_no}.B{self.block_no}.S{self.slot_no}"

    def encode(self) -> str:
        """Return the canonical text encoding (same as ``str``)."""
        return str(self)

    @classmethod
    def decode(cls, text: str) -> "RowId":
        """Parse the canonical text encoding back into a :class:`RowId`.

        Raises
        ------
        RowIdError
            If ``text`` is not a well-formed ROWID string.
        """
        match = _ROWID_RE.match(text)
        if match is None:
            raise RowIdError(f"malformed ROWID text: {text!r}")
        file_no, block_no, slot_no = (int(g) for g in match.groups())
        return cls(file_no, block_no, slot_no)

    @property
    def is_valid(self) -> bool:
        """True when every component is non-negative."""
        return self.file_no >= 0 and self.block_no >= 0 and self.slot_no >= 0
