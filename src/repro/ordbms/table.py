"""The table layer: heap storage + constraints + index maintenance.

A :class:`Table` binds a :class:`~repro.ordbms.schema.TableSchema` to a
:class:`~repro.ordbms.storage.HeapFile` and keeps every secondary
:class:`~repro.ordbms.btree.BTreeIndex` and
:class:`~repro.ordbms.textindex.TextIndex` consistent across inserts,
updates and deletes.  Primary-key and unique constraints are enforced via
automatically created B+tree indexes, so enforcement is O(log n).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Iterator, Mapping, TypeVar

from repro import obs
from repro.errors import CatalogError, ConstraintError, RowIdError
from repro.ordbms.btree import BTreeIndex
from repro.ordbms.expr import Expr
from repro.ordbms.mvcc import ABSENT, MvccState
from repro.ordbms.rowid import RowId
from repro.ordbms.schema import TableSchema
from repro.ordbms.storage import HeapFile
from repro.ordbms.textindex import TextIndex

#: Pseudo-column name under which a row's own physical address is exposed,
#: mirroring Oracle's ``ROWID`` pseudo-column.
ROWID_PSEUDO = "ROWID_"

#: Mutation statements between automatic version-GC sweeps.  Small enough
#: to bound history growth during sustained ingest, large enough that the
#: sweep cost amortizes to noise.
AUTO_VACUUM_INTERVAL = 256

_T = TypeVar("_T")


class Table:
    """A heap table with secondary indexes and constraint enforcement."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._heap = HeapFile(schema.name)
        #: Write-generation counter: bumped by every mutation (insert,
        #: update, delete, restore).  Read-side caches such as
        #: :class:`repro.store.accessor.NodeAccessor` snapshot this value
        #: and invalidate themselves when it moves.
        self._generation = 0
        #: Seqlock for lock-free readers: odd while a mutation statement
        #: is mid-flight (heap/index structures may be inconsistent),
        #: even otherwise.  Readers snapshot it around structural reads
        #: and retry on change — see :meth:`stable_read`.
        self._seq = 0  # repro: guarded-by(gil) written by the single writer only; readers compare two atomic reads
        #: MVCC pre-image history: rowid -> [(superseding_lsn, image)].
        #: Appended chronologically by the writer; a reader pinned at S
        #: takes the first entry with lsn > S (else the live heap row).
        #: Vacuum swaps in a rebuilt dict, never mutates lists in place,
        #: so concurrent readers keep a consistent reference.
        self._history: dict[RowId, list[tuple[int, Any]]] = {}  # repro: guarded-by(_seq) writer-owned; readers go through stable_read's seqlock retry
        self._mvcc: MvccState | None = None
        self._mutations_since_vacuum = 0
        #: Reader seqlock retries (contention evidence, never blocking).
        self.read_retries = 0  # repro: guarded-by(gil) int bump; diagnostic counter, exactness not required
        self._indexes: dict[str, BTreeIndex] = {}
        self._text_indexes: dict[str, TextIndex] = {}
        # Unique enforcement piggybacks on B+tree indexes over these columns.
        self._unique_columns: list[str] = []
        if schema.primary_key:
            self._ensure_unique_index(schema.primary_key)
        for column in schema.unique:
            self._ensure_unique_index(column)

    def _ensure_unique_index(self, column: str) -> None:
        if column not in self._indexes:
            self.create_index(column)
        if column not in self._unique_columns:
            self._unique_columns.append(column)

    # -- MVCC ----------------------------------------------------------------

    def bind_mvcc(self, state: MvccState) -> None:
        """Adopt the database's MVCC state (done by ``create_table``).

        Unbound tables (constructed directly, e.g. in unit tests) skip
        history recording entirely and behave exactly as before.
        """
        self._mvcc = state

    def _begin_statement(self) -> int | None:
        if self._mvcc is None:
            return None
        return self._mvcc.begin_statement()

    def _record(self, lsn: int | None, rowid: RowId, image: Any) -> None:
        """Record ``image`` as the pre-image superseded at ``lsn``."""
        if lsn is None:
            return
        self._history.setdefault(rowid, []).append((lsn, image))

    def _commit_statement(self, lsn: int | None) -> None:
        self._generation += 1
        if lsn is None or self._mvcc is None:
            return
        self._mvcc.commit_statement(lsn)
        self._mutations_since_vacuum += 1
        if self._mutations_since_vacuum >= AUTO_VACUUM_INTERVAL:
            self.vacuum_versions()

    def vacuum_versions(self, horizon: int | None = None) -> int:
        """Version-GC: drop history entries at or below the GC horizon.

        The horizon defaults to the database's — the oldest pinned LSN
        (so a pinned generation is never reclaimed), or the current LSN
        when no snapshot is open.  Runs on the writer thread; the new
        history dict is swapped in atomically so concurrent readers keep
        a consistent (pre-sweep) reference.  Returns entries reclaimed.
        """
        if self._mvcc is None:
            return 0
        if horizon is None:
            horizon = self._mvcc.gc_horizon()
        reclaimed = 0
        fresh: dict[RowId, list[tuple[int, Any]]] = {}
        for rowid, entries in self._history.items():
            kept = [entry for entry in entries if entry[0] > horizon]
            reclaimed += len(entries) - len(kept)
            if kept:
                fresh[rowid] = kept
        self._history = fresh
        self._mutations_since_vacuum = 0
        self._mvcc.note_reclaimed(reclaimed)
        return reclaimed

    @property
    def version_count(self) -> int:
        """Retained pre-image history entries (GC-boundedness evidence)."""
        return sum(len(entries) for entries in self._history.values())

    def stable_read(self, read: Callable[[], _T]) -> _T:
        """Run ``read`` lock-free against a structurally stable table.

        Optimistic seqlock: retry while the writer is mid-statement or
        moved the counter during the read.  ``read`` must be pure (no
        side effects beyond its return value) since it may run several
        times; a ``RuntimeError`` from a dict resized mid-iteration
        counts as a torn read and retries too.  Readers only ever
        *yield* the GIL — they never block on a lock.
        """
        while True:
            start = self._seq
            if start & 1:
                self.read_retries += 1
                time.sleep(0)  # yield to the writer mid-statement
                continue
            try:
                result = read()
            except RuntimeError:  # dict/list mutated during iteration
                self.read_retries += 1
                time.sleep(0)
                continue
            if self._seq == start:
                return result
            self.read_retries += 1

    # -- index management -------------------------------------------------

    def create_index(self, column: str) -> BTreeIndex:
        """Create (and backfill) a B+tree index over ``column``."""
        column = column.upper()
        self.schema.column(column)  # validates existence
        if column in self._indexes:
            raise CatalogError(
                f"index on {self.schema.name}.{column} already exists"
            )
        index = BTreeIndex(f"{self.schema.name}_{column}_IDX")
        position = self.schema.position(column)
        for rowid, row in self._heap.scan():
            if row[position] is not None:
                index.insert(row[position], rowid)
        self._indexes[column] = index
        return index

    def create_text_index(self, column: str) -> TextIndex:
        """Create (and backfill) an inverted text index over ``column``."""
        column = column.upper()
        self.schema.column(column)
        if column in self._text_indexes:
            raise CatalogError(
                f"text index on {self.schema.name}.{column} already exists"
            )
        index = TextIndex(f"{self.schema.name}_{column}_TXT")
        position = self.schema.position(column)
        for rowid, row in self._heap.scan():
            value = row[position]
            if isinstance(value, str) and value:
                index.add(rowid, value)
        self._text_indexes[column] = index
        return index

    def rebuild_indexes(self) -> None:
        """Rebuild every B+tree and text index from the heap.

        Derived state is exactly that — derivable; this is the repair
        path ``store.fsck --repair`` and recovery diagnostics use when
        an index has drifted from the rows it claims to describe.
        """
        self._seq += 1
        try:
            for column, index in list(self._indexes.items()):
                fresh = BTreeIndex(index.name)
                position = self.schema.position(column)
                for rowid, row in self._heap.scan():
                    if row[position] is not None:
                        fresh.insert(row[position], rowid)
                self._indexes[column] = fresh
            for column, text_index in list(self._text_indexes.items()):
                fresh_text = TextIndex(text_index.name)
                position = self.schema.position(column)
                for rowid, row in self._heap.scan():
                    value = row[position]
                    if isinstance(value, str) and value:
                        fresh_text.add(rowid, value)
                self._text_indexes[column] = fresh_text
        finally:
            self._seq += 1
            self._generation += 1

    def index_on(self, column: str) -> BTreeIndex | None:
        return self._indexes.get(column.upper())

    def text_index_on(self, column: str) -> TextIndex | None:
        return self._text_indexes.get(column.upper())

    @property
    def index_columns(self) -> tuple[str, ...]:
        return tuple(self._indexes)

    # -- mutation -----------------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic write counter; moves on every mutation of this table."""
        return self._generation

    def insert(self, values: Mapping[str, Any]) -> RowId:
        """Validate, constraint-check and store a row; returns its ROWID."""
        row = self.schema.make_row(values)
        self._check_unique(row, exclude=None)
        lsn = self._begin_statement()
        self._seq += 1
        try:
            rowid = self._heap.insert(row)
            self._record(lsn, rowid, ABSENT)
            self._index_row(rowid, row)
        finally:
            self._seq += 1
            self._commit_statement(lsn)
        return rowid

    def update(self, rowid: RowId, changes: Mapping[str, Any]) -> None:
        """Apply ``changes`` (column->value) to the row at ``rowid``."""
        old_row = self._heap.fetch(rowid)
        merged = self.schema.row_to_dict(old_row)
        merged.update({key.upper(): value for key, value in changes.items()})
        new_row = self.schema.make_row(merged)
        self._check_unique(new_row, exclude=rowid)
        lsn = self._begin_statement()
        self._seq += 1
        try:
            self._record(lsn, rowid, old_row)
            self._unindex_row(rowid, old_row)
            self._heap.update(rowid, new_row)
            self._index_row(rowid, new_row)
        finally:
            self._seq += 1
            self._commit_statement(lsn)

    def delete(self, rowid: RowId) -> dict[str, Any]:
        """Delete the row at ``rowid``; returns its former values."""
        old_row = self._heap.fetch(rowid)
        lsn = self._begin_statement()
        self._seq += 1
        try:
            self._record(lsn, rowid, old_row)
            self._heap.delete(rowid)
            self._unindex_row(rowid, old_row)
        finally:
            self._seq += 1
            self._commit_statement(lsn)
        return self.schema.row_to_dict(old_row)

    def restore(self, rowid: RowId, values: Mapping[str, Any]) -> None:
        """Undo a delete: put ``values`` back at the original ``rowid``."""
        row = self.schema.make_row(values)
        self._check_unique(row, exclude=rowid)
        lsn = self._begin_statement()
        self._seq += 1
        try:
            self._record(lsn, rowid, ABSENT)
            self._heap.restore(rowid, row)
            self._index_row(rowid, row)
        finally:
            self._seq += 1
            self._commit_statement(lsn)

    # -- access ---------------------------------------------------------------

    def fetch(self, rowid: RowId) -> dict[str, Any]:
        """O(1) fetch by physical ROWID, as a column->value dict."""
        return self._with_rowid(rowid, self._heap.fetch(rowid))

    def fetch_many(self, rowids: Iterable[RowId]) -> list[dict[str, Any]]:
        """Batch fetch by physical ROWID list, in the given order.

        One call replaces N point :meth:`fetch` calls — the entry point
        the read path's :class:`~repro.store.accessor.NodeAccessor` uses
        to turn per-hop traffic into set-at-a-time traffic.  Each rowid
        must be live (same contract as :meth:`fetch`).
        """
        rows = [
            self._with_rowid(rowid, self._heap.fetch(rowid))
            for rowid in rowids
        ]
        if rows:
            obs.inc(
                "repro_ordbms_rows_read_total", len(rows),
                table=self.schema.name, path="fetch",
            )
        return rows

    def raw_row(self, rowid: RowId) -> tuple[Any, ...]:
        """The stored tuple at ``rowid``, in schema column order.

        The write-ahead log records row images in this physical form so
        that replay can bypass validation and land bit-identical rows.
        """
        return self._heap.fetch(rowid)

    def try_fetch(self, rowid: RowId) -> dict[str, Any] | None:
        """Like :meth:`fetch` but returns None for dead/out-of-range rowids."""
        try:
            return self.fetch(rowid)
        except RowIdError:
            return None

    def exists(self, rowid: RowId) -> bool:
        return self._heap.exists(rowid)

    def scan(
        self, predicate: Expr | Callable[[Mapping[str, Any]], bool] | None = None
    ) -> Iterator[dict[str, Any]]:
        """Yield rows (as dicts, including the ROWID pseudo-column)."""
        examined = 0
        try:
            for rowid, row in self._heap.scan():
                examined += 1
                record = self._with_rowid(rowid, row)
                if predicate is None:
                    yield record
                elif isinstance(predicate, Expr):
                    if predicate.evaluate(record):
                        yield record
                elif predicate(record):
                    yield record
        finally:
            # One bump per scan (early close included), not one per row:
            # the counter must not be the scan's hot-path cost.
            if examined:
                obs.inc(
                    "repro_ordbms_rows_read_total", examined,
                    table=self.schema.name, path="scan",
                )

    def lookup(self, column: str, value: Any) -> list[dict[str, Any]]:
        """Equality lookup, via index when one exists, else a scan."""
        column = column.upper()
        index = self._indexes.get(column)
        if index is not None:
            rows = [self.fetch(rowid) for rowid in index.search(value)]
            obs.inc(
                "repro_ordbms_lookups_total",
                table=self.schema.name, path="index",
            )
            obs.inc("repro_ordbms_btree_probes_total", index=index.name)
            return rows
        position = self.schema.position(column)
        rows = [
            self._with_rowid(rowid, row)
            for rowid, row in self._heap.scan()
            if row[position] == value
        ]
        obs.inc(
            "repro_ordbms_lookups_total",
            table=self.schema.name, path="scan",
        )
        return rows

    # -- snapshot access (MVCC) ----------------------------------------------

    def _visible_image(self, rowid: RowId, pin: int) -> Any:
        """The row tuple visible at ``pin``, or :data:`ABSENT`.

        Reader order matters and is the inverse of the writer's: read
        the live heap value *first*, then consult history.  The writer
        records a statement's pre-image before its heap mutation (inside
        the seqlock window), so by the time a reader can observe the
        mutated heap, the superseding history entry already exists.
        Runs inside :meth:`stable_read`.
        """
        try:
            current: Any = self._heap.fetch(rowid)
        except RowIdError:  # tombstoned or not-yet-allocated slot
            current = ABSENT
        entries = self._history.get(rowid)
        if entries:
            for lsn, image in entries:
                if lsn > pin:
                    # Oldest superseding statement: its pre-image is the
                    # row as of every LSN at or below the pin.
                    return image
        return current

    def visible_row(self, rowid: RowId, pin: int) -> dict[str, Any] | None:
        """The row at ``rowid`` as of commit LSN ``pin`` (None if absent)."""
        image = self.stable_read(lambda: self._visible_image(rowid, pin))
        if image is ABSENT:
            return None
        return self._with_rowid(rowid, image)

    def visible_many(
        self, rowids: Iterable[RowId], pin: int
    ) -> list[dict[str, Any]]:
        """Batch :meth:`visible_row`; every rowid must be visible."""
        rows = []
        for rowid in rowids:
            row = self.visible_row(rowid, pin)
            if row is None:
                raise RowIdError(
                    f"ROWID {rowid} is not visible at LSN {pin} in table "
                    f"{self.schema.name}"
                )
            rows.append(row)
        if rows:
            obs.inc(
                "repro_ordbms_rows_read_total", len(rows),
                table=self.schema.name, path="snapshot",
            )
        return rows

    def changed_rowids_since(self, pin: int) -> set[RowId]:
        """Rowids mutated by any statement after ``pin``.

        History entries are appended in LSN order, so the last entry's
        LSN bounds the row's whole history; vacuum keeps only suffixes.
        """
        return self.stable_read(
            lambda: {
                rowid
                for rowid, entries in self._history.items()
                if entries and entries[-1][0] > pin
            }
        )

    def snapshot_scan(self, pin: int) -> Iterator[dict[str, Any]]:
        """Yield every row visible at ``pin``, in physical order.

        The slot inventory is captured stably first; rows inserted after
        the capture carry LSNs above the pin and would be invisible
        anyway, and tombstoned slots resolve through their pre-images.
        """
        rowids = self.stable_read(
            lambda: [rowid for rowid, _ in self._heap.scan_all()]
        )
        examined = 0
        for rowid in rowids:
            examined += 1
            row = self.visible_row(rowid, pin)
            if row is not None:
                yield row
        if examined:
            obs.inc(
                "repro_ordbms_rows_read_total", examined,
                table=self.schema.name, path="snapshot_scan",
            )

    def snapshot_search(
        self, column: str, value: Any, pin: int
    ) -> list[dict[str, Any]]:
        """Generation-aware equality lookup as of ``pin``.

        Candidates are the *live* index postings plus every rowid that
        changed after the pin (which covers rows updated away from, or
        deleted out of, the postings); each candidate's visible image is
        then re-checked against ``value``.  The postings probe runs
        before the changed-set read: any statement racing us either
        finishes before the probe (its rowid is in the postings or gone
        from them) or lands a history entry the changed-set read sees.
        """
        column = column.upper()
        index = self._indexes.get(column)
        if index is None:
            self.schema.column(column)  # validates existence
            return [
                row for row in self.snapshot_scan(pin) if row[column] == value
            ]
        current = self.stable_read(lambda: set(index.search(value)))
        candidates = current | self.changed_rowids_since(pin)
        obs.inc("repro_ordbms_btree_probes_total", index=index.name)
        rows = []
        for rowid in sorted(candidates):
            row = self.visible_row(rowid, pin)
            if row is not None and row[column] == value:
                rows.append(row)
        return rows

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def block_count(self) -> int:
        return self._heap.block_count

    # -- internals ----------------------------------------------------------

    def _with_rowid(self, rowid: RowId, row: tuple[Any, ...]) -> dict[str, Any]:
        record = self.schema.row_to_dict(row)
        record[ROWID_PSEUDO] = rowid
        return record

    def _check_unique(self, row: tuple[Any, ...], exclude: RowId | None) -> None:
        for column in self._unique_columns:
            position = self.schema.position(column)
            value = row[position]
            if value is None:
                continue
            existing = self._indexes[column].search(value)
            if any(rowid != exclude for rowid in existing):
                raise ConstraintError(
                    f"duplicate value {value!r} for unique column "
                    f"{self.schema.name}.{column}"
                )

    def _index_row(self, rowid: RowId, row: tuple[Any, ...]) -> None:
        for column, index in self._indexes.items():
            value = row[self.schema.position(column)]
            if value is not None:
                index.insert(value, rowid)
        for column, text_index in self._text_indexes.items():
            value = row[self.schema.position(column)]
            if isinstance(value, str) and value:
                text_index.add(rowid, value)

    def _unindex_row(self, rowid: RowId, row: tuple[Any, ...]) -> None:
        for column, index in self._indexes.items():
            value = row[self.schema.position(column)]
            if value is not None:
                index.delete(value, rowid)
        for column, text_index in self._text_indexes.items():
            value = row[self.schema.position(column)]
            if isinstance(value, str) and value:
                text_index.remove(rowid, value)
