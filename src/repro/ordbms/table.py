"""The table layer: heap storage + constraints + index maintenance.

A :class:`Table` binds a :class:`~repro.ordbms.schema.TableSchema` to a
:class:`~repro.ordbms.storage.HeapFile` and keeps every secondary
:class:`~repro.ordbms.btree.BTreeIndex` and
:class:`~repro.ordbms.textindex.TextIndex` consistent across inserts,
updates and deletes.  Primary-key and unique constraints are enforced via
automatically created B+tree indexes, so enforcement is O(log n).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping

from repro import obs
from repro.errors import CatalogError, ConstraintError, RowIdError
from repro.ordbms.btree import BTreeIndex
from repro.ordbms.expr import Expr
from repro.ordbms.rowid import RowId
from repro.ordbms.schema import TableSchema
from repro.ordbms.storage import HeapFile
from repro.ordbms.textindex import TextIndex

#: Pseudo-column name under which a row's own physical address is exposed,
#: mirroring Oracle's ``ROWID`` pseudo-column.
ROWID_PSEUDO = "ROWID_"


class Table:
    """A heap table with secondary indexes and constraint enforcement."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._heap = HeapFile(schema.name)
        #: Write-generation counter: bumped by every mutation (insert,
        #: update, delete, restore).  Read-side caches such as
        #: :class:`repro.store.accessor.NodeAccessor` snapshot this value
        #: and invalidate themselves when it moves.
        self._generation = 0
        self._indexes: dict[str, BTreeIndex] = {}
        self._text_indexes: dict[str, TextIndex] = {}
        # Unique enforcement piggybacks on B+tree indexes over these columns.
        self._unique_columns: list[str] = []
        if schema.primary_key:
            self._ensure_unique_index(schema.primary_key)
        for column in schema.unique:
            self._ensure_unique_index(column)

    def _ensure_unique_index(self, column: str) -> None:
        if column not in self._indexes:
            self.create_index(column)
        if column not in self._unique_columns:
            self._unique_columns.append(column)

    # -- index management -------------------------------------------------

    def create_index(self, column: str) -> BTreeIndex:
        """Create (and backfill) a B+tree index over ``column``."""
        column = column.upper()
        self.schema.column(column)  # validates existence
        if column in self._indexes:
            raise CatalogError(
                f"index on {self.schema.name}.{column} already exists"
            )
        index = BTreeIndex(f"{self.schema.name}_{column}_IDX")
        position = self.schema.position(column)
        for rowid, row in self._heap.scan():
            if row[position] is not None:
                index.insert(row[position], rowid)
        self._indexes[column] = index
        return index

    def create_text_index(self, column: str) -> TextIndex:
        """Create (and backfill) an inverted text index over ``column``."""
        column = column.upper()
        self.schema.column(column)
        if column in self._text_indexes:
            raise CatalogError(
                f"text index on {self.schema.name}.{column} already exists"
            )
        index = TextIndex(f"{self.schema.name}_{column}_TXT")
        position = self.schema.position(column)
        for rowid, row in self._heap.scan():
            value = row[position]
            if isinstance(value, str) and value:
                index.add(rowid, value)
        self._text_indexes[column] = index
        return index

    def rebuild_indexes(self) -> None:
        """Rebuild every B+tree and text index from the heap.

        Derived state is exactly that — derivable; this is the repair
        path ``store.fsck --repair`` and recovery diagnostics use when
        an index has drifted from the rows it claims to describe.
        """
        for column, index in list(self._indexes.items()):
            fresh = BTreeIndex(index.name)
            position = self.schema.position(column)
            for rowid, row in self._heap.scan():
                if row[position] is not None:
                    fresh.insert(row[position], rowid)
            self._indexes[column] = fresh
        for column, text_index in list(self._text_indexes.items()):
            fresh_text = TextIndex(text_index.name)
            position = self.schema.position(column)
            for rowid, row in self._heap.scan():
                value = row[position]
                if isinstance(value, str) and value:
                    fresh_text.add(rowid, value)
            self._text_indexes[column] = fresh_text
        self._generation += 1

    def index_on(self, column: str) -> BTreeIndex | None:
        return self._indexes.get(column.upper())

    def text_index_on(self, column: str) -> TextIndex | None:
        return self._text_indexes.get(column.upper())

    @property
    def index_columns(self) -> tuple[str, ...]:
        return tuple(self._indexes)

    # -- mutation -----------------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic write counter; moves on every mutation of this table."""
        return self._generation

    def insert(self, values: Mapping[str, Any]) -> RowId:
        """Validate, constraint-check and store a row; returns its ROWID."""
        row = self.schema.make_row(values)
        self._check_unique(row, exclude=None)
        rowid = self._heap.insert(row)
        self._index_row(rowid, row)
        self._generation += 1
        return rowid

    def update(self, rowid: RowId, changes: Mapping[str, Any]) -> None:
        """Apply ``changes`` (column->value) to the row at ``rowid``."""
        old_row = self._heap.fetch(rowid)
        merged = self.schema.row_to_dict(old_row)
        merged.update({key.upper(): value for key, value in changes.items()})
        new_row = self.schema.make_row(merged)
        self._check_unique(new_row, exclude=rowid)
        self._unindex_row(rowid, old_row)
        self._heap.update(rowid, new_row)
        self._index_row(rowid, new_row)
        self._generation += 1

    def delete(self, rowid: RowId) -> dict[str, Any]:
        """Delete the row at ``rowid``; returns its former values."""
        old_row = self._heap.delete(rowid)
        self._unindex_row(rowid, old_row)
        self._generation += 1
        return self.schema.row_to_dict(old_row)

    def restore(self, rowid: RowId, values: Mapping[str, Any]) -> None:
        """Undo a delete: put ``values`` back at the original ``rowid``."""
        row = self.schema.make_row(values)
        self._check_unique(row, exclude=rowid)
        self._heap.restore(rowid, row)
        self._index_row(rowid, row)
        self._generation += 1

    # -- access ---------------------------------------------------------------

    def fetch(self, rowid: RowId) -> dict[str, Any]:
        """O(1) fetch by physical ROWID, as a column->value dict."""
        return self._with_rowid(rowid, self._heap.fetch(rowid))

    def fetch_many(self, rowids: Iterable[RowId]) -> list[dict[str, Any]]:
        """Batch fetch by physical ROWID list, in the given order.

        One call replaces N point :meth:`fetch` calls — the entry point
        the read path's :class:`~repro.store.accessor.NodeAccessor` uses
        to turn per-hop traffic into set-at-a-time traffic.  Each rowid
        must be live (same contract as :meth:`fetch`).
        """
        rows = [
            self._with_rowid(rowid, self._heap.fetch(rowid))
            for rowid in rowids
        ]
        if rows:
            obs.inc(
                "repro_ordbms_rows_read_total", len(rows),
                table=self.schema.name, path="fetch",
            )
        return rows

    def raw_row(self, rowid: RowId) -> tuple[Any, ...]:
        """The stored tuple at ``rowid``, in schema column order.

        The write-ahead log records row images in this physical form so
        that replay can bypass validation and land bit-identical rows.
        """
        return self._heap.fetch(rowid)

    def try_fetch(self, rowid: RowId) -> dict[str, Any] | None:
        """Like :meth:`fetch` but returns None for dead/out-of-range rowids."""
        try:
            return self.fetch(rowid)
        except RowIdError:
            return None

    def exists(self, rowid: RowId) -> bool:
        return self._heap.exists(rowid)

    def scan(
        self, predicate: Expr | Callable[[Mapping[str, Any]], bool] | None = None
    ) -> Iterator[dict[str, Any]]:
        """Yield rows (as dicts, including the ROWID pseudo-column)."""
        examined = 0
        try:
            for rowid, row in self._heap.scan():
                examined += 1
                record = self._with_rowid(rowid, row)
                if predicate is None:
                    yield record
                elif isinstance(predicate, Expr):
                    if predicate.evaluate(record):
                        yield record
                elif predicate(record):
                    yield record
        finally:
            # One bump per scan (early close included), not one per row:
            # the counter must not be the scan's hot-path cost.
            if examined:
                obs.inc(
                    "repro_ordbms_rows_read_total", examined,
                    table=self.schema.name, path="scan",
                )

    def lookup(self, column: str, value: Any) -> list[dict[str, Any]]:
        """Equality lookup, via index when one exists, else a scan."""
        column = column.upper()
        index = self._indexes.get(column)
        if index is not None:
            rows = [self.fetch(rowid) for rowid in index.search(value)]
            obs.inc(
                "repro_ordbms_lookups_total",
                table=self.schema.name, path="index",
            )
            obs.inc("repro_ordbms_btree_probes_total", index=index.name)
            return rows
        position = self.schema.position(column)
        rows = [
            self._with_rowid(rowid, row)
            for rowid, row in self._heap.scan()
            if row[position] == value
        ]
        obs.inc(
            "repro_ordbms_lookups_total",
            table=self.schema.name, path="scan",
        )
        return rows

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def block_count(self) -> int:
        return self._heap.block_count

    # -- internals ----------------------------------------------------------

    def _with_rowid(self, rowid: RowId, row: tuple[Any, ...]) -> dict[str, Any]:
        record = self.schema.row_to_dict(row)
        record[ROWID_PSEUDO] = rowid
        return record

    def _check_unique(self, row: tuple[Any, ...], exclude: RowId | None) -> None:
        for column in self._unique_columns:
            position = self.schema.position(column)
            value = row[position]
            if value is None:
                continue
            existing = self._indexes[column].search(value)
            if any(rowid != exclude for rowid in existing):
                raise ConstraintError(
                    f"duplicate value {value!r} for unique column "
                    f"{self.schema.name}.{column}"
                )

    def _index_row(self, rowid: RowId, row: tuple[Any, ...]) -> None:
        for column, index in self._indexes.items():
            value = row[self.schema.position(column)]
            if value is not None:
                index.insert(value, rowid)
        for column, text_index in self._text_indexes.items():
            value = row[self.schema.position(column)]
            if isinstance(value, str) and value:
                text_index.add(rowid, value)

    def _unindex_row(self, rowid: RowId, row: tuple[Any, ...]) -> None:
        for column, index in self._indexes.items():
            value = row[self.schema.position(column)]
            if value is not None:
                index.delete(value, rowid)
        for column, text_index in self._text_indexes.items():
            value = row[self.schema.position(column)]
            if isinstance(value, str) and value:
                text_index.remove(rowid, value)
