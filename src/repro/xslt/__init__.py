"""XSLT-lite: the result-composition processor (paper Fig 7's Xalan)."""

from repro.xslt.processor import normalized_text, transform, transform_text
from repro.xslt.stylesheet import (
    MatchPattern,
    Stylesheet,
    Template,
    compile_avt,
    compile_stylesheet,
    parse_pattern,
)
from repro.xslt.xpath import (
    XPathContext,
    evaluate,
    node_string_value,
    parse_xpath,
    select,
    to_boolean,
    to_string,
)

__all__ = [
    "MatchPattern",
    "Stylesheet",
    "Template",
    "XPathContext",
    "compile_avt",
    "compile_stylesheet",
    "evaluate",
    "node_string_value",
    "normalized_text",
    "parse_pattern",
    "parse_xpath",
    "select",
    "to_boolean",
    "to_string",
    "transform",
    "transform_text",
]
