"""XSLT stylesheet model and parsing.

A stylesheet is parsed from XML (namespace prefix ``xsl:`` is treated
literally — the subset does not implement namespace resolution) into a
list of :class:`Template` rules plus top-level settings.

Supported instruction vocabulary (what Fig 7 composition needs):

``xsl:template match=…``, ``xsl:value-of select=…``,
``xsl:apply-templates [select=…]``, ``xsl:for-each select=…``,
``xsl:if test=…``, ``xsl:choose``/``xsl:when``/``xsl:otherwise``,
``xsl:text``, ``xsl:element name=…``, ``xsl:attribute name=…``,
``xsl:copy-of select=…``, ``xsl:sort select=… [order=…]``,
and literal result elements with ``{expr}`` attribute value templates.

Match patterns are a subset: ``/``, ``name``, ``a/b`` (suffix paths),
``*`` and ``text()``.  Priorities follow XSLT's defaults: longer/explicit
patterns beat ``*`` beats built-ins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SgmlSyntaxError, XsltError
from repro.sgml.dom import Document, Element, Node, Text
from repro.sgml.parser import parse_xml
from repro.xslt.xpath import XPathExpr, parse_xpath

XSL_PREFIX = "xsl:"

_KNOWN_INSTRUCTIONS = {
    "template", "value-of", "apply-templates", "for-each", "if", "choose",
    "when", "otherwise", "text", "element", "attribute", "copy-of", "sort",
    "stylesheet", "transform", "output",
}


@dataclass(frozen=True)
class MatchPattern:
    """A template match pattern."""

    source: str
    segments: tuple[str, ...]  # path segments, last one is the target
    is_root: bool = False

    @property
    def priority(self) -> tuple[int, int]:
        """(specificity, length): used to pick among matching templates."""
        if self.is_root:
            return (3, 1)
        last = self.segments[-1]
        if last == "*":
            specificity = 0
        elif last == "text()":
            specificity = 1
        else:
            specificity = 2
        return (specificity, len(self.segments))

    def matches(self, node: Node | Document) -> bool:
        if self.is_root:
            return isinstance(node, Document)
        if isinstance(node, Document):
            return False
        if not self._test_matches(self.segments[-1], node):
            return False
        # Remaining segments must match successive ancestors.
        current: Node | None = node
        for segment in reversed(self.segments[:-1]):
            parent = current.parent if current is not None else None
            if parent is None or not self._test_matches(segment, parent):
                return False
            current = parent
        return True

    @staticmethod
    def _test_matches(test: str, node: Node) -> bool:
        if test == "text()":
            return isinstance(node, Text)
        if not isinstance(node, Element):
            return False
        return test == "*" or node.tag == test


def parse_pattern(source: str) -> MatchPattern:
    source = source.strip()
    if source == "/":
        return MatchPattern(source, (), is_root=True)
    segments = tuple(
        segment.strip().lower() for segment in source.lstrip("/").split("/")
    )
    if not segments or any(not segment for segment in segments):
        raise XsltError(f"unsupported match pattern {source!r}")
    for segment in segments:
        if segment != "*" and segment != "text()" and not segment.replace(
            "-", ""
        ).replace("_", "").replace(".", "").isalnum():
            raise XsltError(f"unsupported match pattern segment {segment!r}")
    return MatchPattern(source, segments)


@dataclass(frozen=True)
class Template:
    """One ``xsl:template`` rule."""

    pattern: MatchPattern
    body: tuple[Node, ...]
    order: int  # document order; later templates win ties (XSLT recovery)


@dataclass
class Stylesheet:
    """A compiled stylesheet."""

    templates: list[Template] = field(default_factory=list)
    indent: bool = False

    def best_template(self, node: Node | Document) -> Template | None:
        """Highest-priority template matching ``node`` (None = built-ins)."""
        best: Template | None = None
        for template in self.templates:
            if not template.pattern.matches(node):
                continue
            if best is None:
                best = template
                continue
            if (template.pattern.priority, template.order) > (
                best.pattern.priority,
                best.order,
            ):
                best = template
        return best


def compile_stylesheet(markup: str | Document) -> Stylesheet:
    """Parse and validate stylesheet XML into a :class:`Stylesheet`.

    Raises :class:`XsltError` for *any* bad sheet — malformed XML
    included — so callers (the HTTP stylesheet installer) see one
    error vocabulary.
    """
    if isinstance(markup, Document):
        document = markup
    else:
        try:
            document = parse_xml(markup)
        except SgmlSyntaxError as error:
            raise XsltError(
                f"stylesheet is not well-formed XML: {error}"
            ) from error
    root = document.root
    if root.tag not in {f"{XSL_PREFIX}stylesheet", f"{XSL_PREFIX}transform"}:
        raise XsltError(
            f"stylesheet root must be <xsl:stylesheet>, got <{root.tag}>"
        )
    stylesheet = Stylesheet()
    order = 0
    for child in root.children:
        if isinstance(child, Text):
            if child.data.strip():
                raise XsltError("text at stylesheet top level")
            continue
        assert isinstance(child, Element)
        if child.tag == f"{XSL_PREFIX}output":
            stylesheet.indent = child.get("indent", "no").lower() == "yes"
            continue
        if child.tag != f"{XSL_PREFIX}template":
            raise XsltError(f"unsupported top-level element <{child.tag}>")
        match = child.get("match")
        if not match:
            raise XsltError("xsl:template requires a match attribute")
        _validate_body(child)
        stylesheet.templates.append(
            Template(parse_pattern(match), tuple(child.children), order)
        )
        order += 1
    return stylesheet


def _validate_body(element: Element) -> None:
    """Fail fast on unknown xsl:* instructions and missing attributes."""
    for node in element.walk():
        if not isinstance(node, Element) or not node.tag.startswith(XSL_PREFIX):
            continue
        name = node.tag[len(XSL_PREFIX):]
        if name not in _KNOWN_INSTRUCTIONS:
            raise XsltError(f"unsupported instruction <xsl:{name}>")
        if name in {"value-of", "for-each", "copy-of"} and not node.get("select"):
            raise XsltError(f"<xsl:{name}> requires a select attribute")
        if name == "if" and not node.get("test"):
            raise XsltError("<xsl:if> requires a test attribute")
        if name in {"element", "attribute"} and not node.get("name"):
            raise XsltError(f"<xsl:{name}> requires a name attribute")
        # Pre-compile every XPath so errors surface at compile time.
        for attribute in ("select", "test"):
            value = node.get(attribute)
            if value:
                parse_xpath(value)


def compile_avt(template_text: str) -> list[str | XPathExpr]:
    """Compile an attribute value template: literal text + {expr} parts."""
    parts: list[str | XPathExpr] = []
    remaining = template_text
    while remaining:
        start = remaining.find("{")
        if start == -1:
            parts.append(remaining)
            break
        end = remaining.find("}", start)
        if end == -1:
            raise XsltError(f"unterminated {{ in attribute template {template_text!r}")
        if start:
            parts.append(remaining[:start])
        parts.append(parse_xpath(remaining[start + 1:end]))
        remaining = remaining[end + 1:]
    return parts
