"""XPath 1.0 subset for the XSLT-lite processor.

Supports the fragment result-composition stylesheets actually use:

* location paths: ``a/b``, ``/results/result``, ``//section``, ``.``,
  ``..``, ``*``, ``@attr``, ``text()``;
* predicates: ``[3]`` (1-based position), ``[last()]``, ``[child]``
  (existence), ``[@attr]``, ``[@attr='v']``, ``[child='v']``;
* expressions (for ``select``/``test``): location paths, string literals,
  numbers, ``=``/``!=`` comparisons, ``and``/``or``/``not(..)``,
  ``count(path)``, ``concat(a, b, ...)``, ``name()``, ``position()``,
  ``last()``, ``string(path)``, ``normalize-space(path?)``,
  ``contains(a, b)``.

Evaluation follows XPath semantics on node-sets: a path evaluates to a
list of nodes (or attribute strings); comparisons against node-sets are
existentially quantified; the string value of a node-set is the string
value of its first node.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.errors import XPathError
from repro.sgml.dom import Document, Element, Node, Text

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(
        //|/|\.\.|\.|@|\*|\[|\]|\(|\)|,|!=|=|
        '(?:[^'])*'|"(?:[^"])*"|
        \d+(?:\.\d+)?|
        [A-Za-z_][-A-Za-z0-9_.]*
    )
    """,
    re.VERBOSE,
)


def _tokenize(expression: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(expression):
        match = _TOKEN_RE.match(expression, position)
        if match is None:
            if expression[position:].strip():
                raise XPathError(
                    f"cannot tokenize {expression!r} at offset {position}"
                )
            break
        tokens.append(match.group(1))
        position = match.end()
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Step:
    """One location step."""

    axis: str  # child | descendant | self | parent | attribute
    test: str  # element name, '*', or 'text()'
    predicates: tuple["XPathExpr", ...] = ()


@dataclass(frozen=True)
class PathExpr:
    absolute: bool
    steps: tuple[Step, ...]


@dataclass(frozen=True)
class LiteralExpr:
    value: str


@dataclass(frozen=True)
class NumberExpr:
    value: float


@dataclass(frozen=True)
class CompareExpr:
    left: "XPathExpr"
    op: str  # '=' or '!='
    right: "XPathExpr"


@dataclass(frozen=True)
class BoolExpr:
    op: str  # 'and' | 'or'
    left: "XPathExpr"
    right: "XPathExpr"


@dataclass(frozen=True)
class FunctionExpr:
    name: str
    args: tuple["XPathExpr", ...]


XPathExpr = (
    PathExpr | LiteralExpr | NumberExpr | CompareExpr | BoolExpr | FunctionExpr
)

_FUNCTIONS = {
    "count", "concat", "name", "position", "last", "string",
    "normalize-space", "contains", "not", "true", "false",
}


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, expression: str) -> None:
        self._expression = expression
        self._tokens = _tokenize(expression)
        self._pos = 0

    def parse(self) -> XPathExpr:
        expr = self._parse_or()
        if self._pos != len(self._tokens):
            raise XPathError(
                f"trailing tokens in {self._expression!r}: "
                f"{self._tokens[self._pos:]}"
            )
        return expr

    # -- grammar ------------------------------------------------------------

    def _peek(self) -> str | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise XPathError(f"unexpected end of expression {self._expression!r}")
        self._pos += 1
        return token

    def _expect(self, token: str) -> None:
        got = self._next()
        if got != token:
            raise XPathError(
                f"expected {token!r}, got {got!r} in {self._expression!r}"
            )

    def _parse_or(self) -> XPathExpr:
        left = self._parse_and()
        while self._peek() == "or":
            self._next()
            left = BoolExpr("or", left, self._parse_and())
        return left

    def _parse_and(self) -> XPathExpr:
        left = self._parse_compare()
        while self._peek() == "and":
            self._next()
            left = BoolExpr("and", left, self._parse_compare())
        return left

    def _parse_compare(self) -> XPathExpr:
        left = self._parse_primary()
        token = self._peek()
        if token in {"=", "!="}:
            self._next()
            right = self._parse_primary()
            return CompareExpr(left, token, right)
        return left

    def _parse_primary(self) -> XPathExpr:
        token = self._peek()
        if token is None:
            raise XPathError(f"empty expression {self._expression!r}")
        if token.startswith(("'", '"')):
            self._next()
            return LiteralExpr(token[1:-1])
        if re.fullmatch(r"\d+(?:\.\d+)?", token):
            self._next()
            return NumberExpr(float(token))
        if token == "(":
            self._next()
            inner = self._parse_or()
            self._expect(")")
            return inner
        # Function call?
        if (
            re.fullmatch(r"[A-Za-z_][-A-Za-z0-9_.]*", token)
            and self._pos + 1 < len(self._tokens)
            and self._tokens[self._pos + 1] == "("
            and token in _FUNCTIONS
        ):
            return self._parse_function()
        return self._parse_path()

    def _parse_function(self) -> XPathExpr:
        name = self._next()
        self._expect("(")
        args: list[XPathExpr] = []
        if self._peek() != ")":
            args.append(self._parse_or())
            while self._peek() == ",":
                self._next()
                args.append(self._parse_or())
        self._expect(")")
        return FunctionExpr(name, tuple(args))

    def _parse_path(self) -> PathExpr:
        absolute = False
        steps: list[Step] = []
        token = self._peek()
        if token in {"/", "//"}:
            absolute = True
            self._next()  # consume the leading slash token
            if token == "//":
                steps.append(self._parse_step(descendant=True, consumed_slash=True))
                self._next_steps(steps)
                return PathExpr(True, tuple(steps))
            if self._peek() is None:
                return PathExpr(True, ())
        steps.append(self._parse_step(descendant=False))
        self._next_steps(steps)
        return PathExpr(absolute, tuple(steps))

    def _next_steps(self, steps: list[Step]) -> None:
        while self._peek() in {"/", "//"}:
            descendant = self._next() == "//"
            steps.append(
                self._parse_step(descendant=descendant, consumed_slash=True)
            )

    def _parse_step(self, descendant: bool, consumed_slash: bool = False) -> Step:
        if descendant and not consumed_slash:
            self._expect("//")
        token = self._next()
        axis = "descendant" if descendant else "child"
        if token == ".":
            return Step("self", "*")
        if token == "..":
            return Step("parent", "*")
        if token == "@":
            name = self._next()
            return Step("attribute", name.lower(), self._parse_predicates())
        if token == "*":
            return Step(axis, "*", self._parse_predicates())
        if re.fullmatch(r"[A-Za-z_][-A-Za-z0-9_.]*", token):
            if self._peek() == "(":
                # Only text() is a node-test function.
                self._next()
                self._expect(")")
                if token != "text":
                    raise XPathError(f"unsupported node test {token}()")
                return Step(axis, "text()", self._parse_predicates())
            return Step(axis, token.lower(), self._parse_predicates())
        raise XPathError(
            f"unexpected token {token!r} in {self._expression!r}"
        )

    def _parse_predicates(self) -> tuple[XPathExpr, ...]:
        predicates: list[XPathExpr] = []
        while self._peek() == "[":
            self._next()
            predicates.append(self._parse_or())
            self._expect("]")
        return tuple(predicates)


def parse_xpath(expression: str) -> XPathExpr:
    """Parse an XPath expression into its AST (cached by the processor)."""
    return _Parser(expression).parse()


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


@dataclass
class XPathContext:
    """Evaluation context: the node, its position/size in the current list.

    ``node`` may be a :class:`~repro.sgml.dom.Document` (the context at a
    ``match="/"`` template), whose only child is the root element.
    """

    node: Node | Document
    position: int = 1
    size: int = 1
    root: Element | None = None  # document root for absolute paths

    def with_node(self, node: Node, position: int, size: int) -> "XPathContext":
        return XPathContext(node, position, size, self.root)


def node_string_value(item: Any) -> str:
    """XPath string-value of a node-set item (node or attribute string)."""
    if isinstance(item, str):
        return item
    if isinstance(item, (Element, Text)):
        return item.text_content()
    if isinstance(item, Document):
        return item.text_content()
    return str(item)


def evaluate(expr: XPathExpr, context: XPathContext) -> Any:
    """Evaluate to a node-set (list), string, float or bool."""
    if isinstance(expr, LiteralExpr):
        return expr.value
    if isinstance(expr, NumberExpr):
        return expr.value
    if isinstance(expr, PathExpr):
        return _eval_path(expr, context)
    if isinstance(expr, CompareExpr):
        return _eval_compare(expr, context)
    if isinstance(expr, BoolExpr):
        left = to_boolean(evaluate(expr.left, context))
        if expr.op == "and":
            return left and to_boolean(evaluate(expr.right, context))
        return left or to_boolean(evaluate(expr.right, context))
    if isinstance(expr, FunctionExpr):
        return _eval_function(expr, context)
    raise XPathError(f"cannot evaluate {expr!r}")


def select(expression: str | XPathExpr, context: XPathContext) -> list[Any]:
    """Evaluate and coerce to a node-set (raises if not a path result)."""
    expr = parse_xpath(expression) if isinstance(expression, str) else expression
    result = evaluate(expr, context)
    if isinstance(result, list):
        return result
    raise XPathError(f"expression {expression!r} is not a node-set")


def to_string(value: Any) -> str:
    if isinstance(value, list):
        return node_string_value(value[0]) if value else ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return str(int(value)) if value.is_integer() else str(value)
    return str(value)


def to_boolean(value: Any) -> bool:
    if isinstance(value, list):
        return bool(value)
    if isinstance(value, str):
        return bool(value)
    if isinstance(value, float):
        return value != 0.0
    return bool(value)


def _eval_compare(expr: CompareExpr, context: XPathContext) -> bool:
    left = evaluate(expr.left, context)
    right = evaluate(expr.right, context)
    equal = _sets_equal(left, right)
    return equal if expr.op == "=" else not equal


def _sets_equal(left: Any, right: Any) -> bool:
    # Node-set comparisons are existential (XPath 1.0 §3.4).
    if isinstance(left, list) and isinstance(right, list):
        right_values = {node_string_value(item) for item in right}
        return any(node_string_value(item) in right_values for item in left)
    if isinstance(left, list):
        return any(_atom_equal(node_string_value(item), right) for item in left)
    if isinstance(right, list):
        return any(_atom_equal(node_string_value(item), left) for item in right)
    return _atom_equal(left, right)


def _atom_equal(left: Any, right: Any) -> bool:
    if isinstance(left, float) or isinstance(right, float):
        try:
            return float(left) == float(right)
        except (TypeError, ValueError):
            return False
    return to_string(left) == to_string(right)


def _eval_function(expr: FunctionExpr, context: XPathContext) -> Any:
    name = expr.name
    args = expr.args
    if name == "count":
        _require_args(expr, 1)
        return float(len(select(args[0], context)))
    if name == "concat":
        if len(args) < 2:
            raise XPathError("concat() needs at least two arguments")
        return "".join(to_string(evaluate(arg, context)) for arg in args)
    if name == "name":
        _require_args(expr, 0)
        node = context.node
        return node.tag if isinstance(node, Element) else ""
    if name == "position":
        _require_args(expr, 0)
        return float(context.position)
    if name == "last":
        _require_args(expr, 0)
        return float(context.size)
    if name == "string":
        if not args:
            return node_string_value(context.node)
        _require_args(expr, 1)
        return to_string(evaluate(args[0], context))
    if name == "normalize-space":
        if args:
            value = to_string(evaluate(args[0], context))
        else:
            value = node_string_value(context.node)
        return re.sub(r"\s+", " ", value).strip()
    if name == "contains":
        _require_args(expr, 2)
        haystack = to_string(evaluate(args[0], context))
        needle = to_string(evaluate(args[1], context))
        return needle in haystack
    if name == "not":
        _require_args(expr, 1)
        return not to_boolean(evaluate(args[0], context))
    if name == "true":
        return True
    if name == "false":
        return False
    raise XPathError(f"unsupported function {name}()")


def _require_args(expr: FunctionExpr, count: int) -> None:
    if len(expr.args) != count:
        raise XPathError(
            f"{expr.name}() takes {count} argument(s), got {len(expr.args)}"
        )


def _eval_path(expr: PathExpr, context: XPathContext) -> list[Any]:
    if expr.absolute:
        root = context.root
        if root is None:
            node: Node | None = context.node
            while isinstance(node, Element) and node.parent is not None:
                node = node.parent
            root = node if isinstance(node, Element) else None
        if root is None:
            return []
        # The absolute start is the *document* (parent of root), so the
        # first step's child axis sees the root element itself.
        current: list[Any] = [_DocumentAnchor(root)]
    else:
        current = [context.node]
    for step in expr.steps:
        current = _apply_step(step, current, context)
    return current


class _DocumentAnchor:
    """Virtual document node whose only child is the root element."""

    def __init__(self, root: Element) -> None:
        self.root = root


def _children_of(item: Any) -> list[Node]:
    if isinstance(item, _DocumentAnchor):
        return [item.root]
    if isinstance(item, Document):
        return [item.root]
    if isinstance(item, Element):
        return list(item.children)
    return []


def _descendants_of(item: Any) -> list[Node]:
    result: list[Node] = []
    for child in _children_of(item):
        result.append(child)
        if isinstance(child, Element):
            result.extend(list(child.walk())[1:])
    return result


def _apply_step(step: Step, items: list[Any], context: XPathContext) -> list[Any]:
    candidates: list[Any] = []
    for item in items:
        if step.axis == "self":
            candidates.append(item)
        elif step.axis == "parent":
            if isinstance(item, (Element, Text)) and item.parent is not None:
                candidates.append(item.parent)
        elif step.axis == "attribute":
            if isinstance(item, Element) and step.test in item.attributes:
                candidates.append(item.attributes[step.test])
        elif step.axis == "child":
            candidates.extend(
                child for child in _children_of(item) if _matches(step.test, child)
            )
        elif step.axis == "descendant":
            candidates.extend(
                node for node in _descendants_of(item) if _matches(step.test, node)
            )
    # De-duplicate nodes while preserving order (strings pass through).
    seen: set[int] = set()
    unique: list[Any] = []
    for candidate in candidates:
        if isinstance(candidate, str):
            unique.append(candidate)
            continue
        if id(candidate) not in seen:
            seen.add(id(candidate))
            unique.append(candidate)
    return _filter_predicates(step.predicates, unique, context)


def _matches(test: str, node: Node) -> bool:
    if test == "text()":
        return isinstance(node, Text)
    if not isinstance(node, Element):
        return False
    return test == "*" or node.tag == test


def _filter_predicates(
    predicates: tuple[XPathExpr, ...], items: list[Any], context: XPathContext
) -> list[Any]:
    for predicate in predicates:
        size = len(items)
        kept: list[Any] = []
        for position, item in enumerate(items, start=1):
            if isinstance(predicate, NumberExpr):
                if position == int(predicate.value):
                    kept.append(item)
                continue
            if isinstance(item, str):
                # Attribute values only support positional predicates.
                raise XPathError("predicates on attributes must be positional")
            value = evaluate(
                predicate, context.with_node(item, position, size)
            )
            if isinstance(value, float):
                if position == int(value):
                    kept.append(item)
            elif to_boolean(value):
                kept.append(item)
        items = kept
    return items
