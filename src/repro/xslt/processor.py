"""The XSLT-lite processor (the Xalan stand-in of paper Fig 7).

:func:`transform` applies a compiled stylesheet to a source document and
returns the result document.  Semantics follow XSLT 1.0 on the supported
subset:

* processing starts by applying templates to the document root;
* built-in rules: document/element → apply templates to children,
  text → copy the text;
* within a template, literal elements are copied (with attribute value
  templates evaluated), ``xsl:*`` instructions execute, and everything
  else recurses.
"""

from __future__ import annotations

import re
from typing import Any

from repro.errors import XsltError
from repro.sgml.dom import Document, Element, Node, Text
from repro.xslt.stylesheet import (
    XSL_PREFIX,
    Stylesheet,
    compile_avt,
    compile_stylesheet,
)
from repro.xslt.xpath import (
    XPathContext,
    evaluate,
    node_string_value,
    parse_xpath,
    select,
    to_boolean,
    to_string,
)


def transform(stylesheet: Stylesheet | str, source: Document) -> Document:
    """Apply ``stylesheet`` to ``source``; returns the result document."""
    if isinstance(stylesheet, str):
        stylesheet = compile_stylesheet(stylesheet)
    processor = _Processor(stylesheet, source)
    fragments = processor.apply_templates_to(source, position=1, size=1)
    elements = [node for node in fragments if isinstance(node, Element)]
    if len(elements) == 1 and all(
        not isinstance(node, Text) or not node.data.strip() for node in fragments
    ):
        root = elements[0]
    else:
        root = Element("output", synthetic=True)
        for node in fragments:
            root.append(node)
    return Document(root, name="transformed.xml")


class _Processor:
    def __init__(self, stylesheet: Stylesheet, source: Document) -> None:
        self._stylesheet = stylesheet
        self._source = source

    # -- template application ----------------------------------------------

    def apply_templates_to(
        self, node: Node | Document, position: int, size: int
    ) -> list[Node]:
        template = self._stylesheet.best_template(node)
        if template is not None:
            context = self._context_for(node, position, size)
            return self._run_body(template.body, context)
        # Built-in rules.
        if isinstance(node, Document):
            return self.apply_templates_to(node.root, 1, 1)
        if isinstance(node, Text):
            return [Text(node.data)]
        assert isinstance(node, Element)
        output: list[Node] = []
        children = node.children
        for position_, child in enumerate(children, start=1):
            output.extend(self.apply_templates_to(child, position_, len(children)))
        return output

    def _context_for(
        self, node: Node | Document, position: int, size: int
    ) -> XPathContext:
        # A Document context node is kept as-is so that at match="/" the
        # relative path `results/...` selects the root element (XPath's
        # document-node semantics).
        return XPathContext(node, position, size, root=self._source.root)

    # -- instruction execution -----------------------------------------------

    def _run_body(self, body: tuple[Node, ...] | list[Node], context: XPathContext) -> list[Node]:
        output: list[Node] = []
        for node in body:
            output.extend(self._run_node(node, context))
        return output

    def _run_node(self, node: Node, context: XPathContext) -> list[Node]:
        if isinstance(node, Text):
            # Strip indentation-only whitespace from the stylesheet itself.
            if node.data.strip():
                return [Text(node.data)]
            return []
        assert isinstance(node, Element)
        if node.tag.startswith(XSL_PREFIX):
            return self._run_instruction(node, context)
        # Literal result element.
        element = Element(node.tag)
        for name, value in node.attributes.items():
            element.attributes[name] = self._eval_avt(value, context)
        self._fill_element(element, node.children, context)
        return [element]

    def _fill_element(
        self, element: Element, body: list[Node], context: XPathContext
    ) -> None:
        """Populate a constructed element, honouring <xsl:attribute>."""
        for child in body:
            if (
                isinstance(child, Element)
                and child.tag == f"{XSL_PREFIX}attribute"
            ):
                name = self._eval_avt(child.attributes["name"], context)
                value_nodes = self._run_body(child.children, context)
                element.attributes[name] = "".join(
                    node_string_value(value_node) for value_node in value_nodes
                )
                continue
            for child_output in self._run_node(child, context):
                element.append(child_output)

    def _run_instruction(self, node: Element, context: XPathContext) -> list[Node]:
        name = node.tag[len(XSL_PREFIX):]
        if name == "value-of":
            value = evaluate(parse_xpath(node.attributes["select"]), context)
            text = to_string(value)
            return [Text(text)] if text else []
        if name == "text":
            return [Text(node.text_content())]
        if name == "apply-templates":
            return self._apply_templates_instruction(node, context)
        if name == "for-each":
            return self._for_each(node, context)
        if name == "if":
            test = evaluate(parse_xpath(node.attributes["test"]), context)
            if to_boolean(test):
                return self._run_body(node.children, context)
            return []
        if name == "choose":
            return self._choose(node, context)
        if name == "copy-of":
            items = select(node.attributes["select"], context)
            return [
                item.clone() if isinstance(item, (Element, Text)) else Text(str(item))
                for item in items
            ]
        if name == "element":
            element = Element(self._eval_avt(node.attributes["name"], context))
            self._fill_element(element, node.children, context)
            return [element]
        if name == "attribute":
            raise XsltError(
                "<xsl:attribute> must appear inside a constructed element"
            )
        if name == "sort":
            return []  # handled by the enclosing for-each/apply-templates
        raise XsltError(f"unsupported instruction <xsl:{name}>")

    def _apply_templates_instruction(
        self, node: Element, context: XPathContext
    ) -> list[Node]:
        select_attr = node.get("select")
        if select_attr:
            items = select(select_attr, context)
        else:
            current = context.node
            if isinstance(current, Document):
                items = [current.root]
            elif isinstance(current, Element):
                items = list(current.children)
            else:
                items = []
        items = self._sorted(node, items, context)
        output: list[Node] = []
        for position, item in enumerate(items, start=1):
            if isinstance(item, str):
                output.append(Text(item))
                continue
            output.extend(self.apply_templates_to(item, position, len(items)))
        return output

    def _for_each(self, node: Element, context: XPathContext) -> list[Node]:
        items = select(node.attributes["select"], context)
        items = self._sorted(node, items, context)
        body = [
            child
            for child in node.children
            if not (isinstance(child, Element) and child.tag == f"{XSL_PREFIX}sort")
        ]
        output: list[Node] = []
        for position, item in enumerate(items, start=1):
            if isinstance(item, str):
                output.append(Text(item))
                continue
            inner = context.with_node(item, position, len(items))
            output.extend(self._run_body(body, inner))
        return output

    def _sorted(
        self, node: Element, items: list[Any], context: XPathContext
    ) -> list[Any]:
        sort_spec = next(
            (
                child
                for child in node.children
                if isinstance(child, Element) and child.tag == f"{XSL_PREFIX}sort"
            ),
            None,
        )
        if sort_spec is None:
            return items
        key_expr = parse_xpath(sort_spec.get("select", "."))
        descending = sort_spec.get("order", "ascending") == "descending"
        numeric = sort_spec.get("data-type", "text") == "number"
        size = len(items)

        def sort_key(indexed: tuple[int, Any]) -> Any:
            position, item = indexed
            if isinstance(item, str):
                raw = item
            else:
                raw = to_string(
                    evaluate(key_expr, context.with_node(item, position + 1, size))
                )
            if numeric:
                try:
                    return float(raw)
                except ValueError:
                    return float("inf")
            return raw

        ranked = sorted(enumerate(items), key=sort_key, reverse=descending)
        return [item for _, item in ranked]

    def _choose(self, node: Element, context: XPathContext) -> list[Node]:
        otherwise: Element | None = None
        for child in node.child_elements():
            if child.tag == f"{XSL_PREFIX}when":
                test = child.get("test")
                if not test:
                    raise XsltError("<xsl:when> requires a test attribute")
                if to_boolean(evaluate(parse_xpath(test), context)):
                    return self._run_body(child.children, context)
            elif child.tag == f"{XSL_PREFIX}otherwise":
                otherwise = child
            else:
                raise XsltError(f"unexpected <{child.tag}> inside <xsl:choose>")
        if otherwise is not None:
            return self._run_body(otherwise.children, context)
        return []

    def _eval_avt(self, template_text: str, context: XPathContext) -> str:
        parts = compile_avt(template_text)
        rendered: list[str] = []
        for part in parts:
            if isinstance(part, str):
                rendered.append(part)
            else:
                rendered.append(to_string(evaluate(part, context)))
        return "".join(rendered)


def transform_text(stylesheet_xml: str, source_xml: str) -> str:
    """Convenience: parse, transform, serialise — all in one call."""
    from repro.sgml.parser import parse_xml
    from repro.sgml.serializer import serialize

    result = transform(compile_stylesheet(stylesheet_xml), parse_xml(source_xml))
    return serialize(result)


_WHITESPACE_RE = re.compile(r"\s+")


def normalized_text(document: Document) -> str:
    """Whitespace-normalised text of a result document (test helper)."""
    return _WHITESPACE_RE.sub(" ", document.text_content()).strip()
