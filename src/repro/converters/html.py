"""HTML converter.

Runs the tolerant SGML parser, then restructures the tree by heading:
every ``<h1>``-``<h6>`` starts a section whose level is the heading depth;
flow content between headings becomes the section body.  Emphasis elements
survive as ``**span**`` markers so the section builder re-emits them as
INTENSE nodes — the round trip HTML → sections → canonical XML preserves
what the queries can see.
"""

from __future__ import annotations

import re
from typing import Any

from repro.converters.base import Converter, Section, registry
from repro.sgml.dom import Element, Node, Text
from repro.sgml.parser import parse_html

_HEADING_RE = re.compile(r"^h([1-6])$")
_SKIP_TAGS = frozenset({"script", "style", "head"})
_EMPHASIS_TAGS = frozenset({"b", "strong", "em", "i", "mark"})
_BLOCK_TAGS = frozenset(
    {"p", "div", "li", "tr", "table", "ul", "ol", "blockquote", "pre",
     "section", "article", "body", "html"}
)


def _inline_text(element: Element) -> str:
    """Flatten an element to text, wrapping emphasis in ** markers."""
    parts: list[str] = []
    for child in element.children:
        if isinstance(child, Text):
            parts.append(child.data)
        elif isinstance(child, Element):
            if child.tag in _SKIP_TAGS:
                continue
            inner = _inline_text(child)
            if child.tag in _EMPHASIS_TAGS and inner.strip():
                parts.append(f"**{inner.strip()}**")
            else:
                parts.append(inner)
    return "".join(parts)


def _normalize(text: str) -> str:
    return re.sub(r"\s+", " ", text).strip()


class HtmlConverter(Converter):
    """Upmark ``.html`` files through the tolerant parser."""

    format_name = "html"
    extensions = ("html", "htm")
    sniff_priority = 80

    def sniff(self, text: str) -> bool:
        head = text.lstrip()[:200].lower()
        return head.startswith("<!doctype html") or "<html" in head

    def metadata(self, text: str, name: str) -> dict[str, Any]:
        meta = super().metadata(text, name)
        title = parse_html(text).find("title")
        if title is not None:
            meta["title"] = _normalize(title.text_content())
        return meta

    def upmark(self, text: str, name: str) -> list[Section]:
        document = parse_html(text, name=name)
        sections: list[Section] = [Section(title="", level=1)]
        self._walk(document.root, sections)
        return [section for section in sections if section.blocks or section.title]

    def _walk(self, node: Node, sections: list[Section]) -> None:
        if isinstance(node, Text):
            block = _normalize(node.data)
            if block:
                sections[-1].add(block)
            return
        assert isinstance(node, Element)
        if node.tag in _SKIP_TAGS or node.tag == "title":
            return
        heading = _HEADING_RE.match(node.tag)
        if heading:
            title = _normalize(_inline_text(node).replace("**", ""))
            sections.append(Section(title=title, level=int(heading.group(1))))
            return
        if node.tag in _BLOCK_TAGS:
            # Recurse: block children become separate blocks, but leaf
            # blocks flatten their inline content into one block.
            if any(
                isinstance(child, Element) and child.tag in _BLOCK_TAGS
                or isinstance(child, Element) and _HEADING_RE.match(child.tag)
                for child in node.children
            ):
                for child in node.children:
                    self._walk(child, sections)
            else:
                block = _normalize(_inline_text(node))
                if block:
                    sections[-1].add(block)
            return
        # Inline or unknown element at block position: flatten it.
        block = _normalize(_inline_text(node))
        if block:
            sections[-1].add(block)


registry.register(HtmlConverter())
