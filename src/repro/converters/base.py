"""Converter framework: turn any document format into context/content XML.

The paper: "We have developed parsers for a wide variety of document
formats (such as Word, PDF, HTML, Powerpoint and others) that
automatically structure and 'upmark' a document into XML based on the
formatting information in the document."

Every converter produces the same canonical shape (the paper's Fig between
2 and 3 sketches it)::

    <document>
      <section>
        <context>Abstract</context>
        <content> This paper describes an ... </content>
      </section>
      <section>
        <context>Data Storage and Management</context>
        <content> NETMARK is designed to ... </content>
      </section>
    </document>

``<section>`` wrappers are *synthetic* (the parser invented them), so they
classify as SIMULATION nodes; ``<context>`` headings classify as CONTEXT;
body text is TEXT.  Inline emphasis inside content is preserved as ``<b>``
elements (INTENSE).

Converters register themselves with the module-level :class:`ConverterRegistry`
keyed by file extension; :func:`convert` sniffs and dispatches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ConverterError, UnsupportedFormatError
from repro.sgml.dom import Document, Element


@dataclass
class Section:
    """One upmarked section: a heading plus its body blocks.

    ``level`` is the heading depth (1 = top).  ``blocks`` holds paragraph
    strings; a block may embed emphasis using ``**text**`` spans, which the
    builder turns into INTENSE ``<b>`` elements.  ``title`` may be empty for
    leading untitled material — the builder then synthesises a context from
    the document name, mirroring how NETMARK never leaves content
    unreachable by context search.
    """

    title: str
    blocks: list[str] = field(default_factory=list)
    level: int = 1

    def add(self, block: str) -> None:
        block = block.strip()
        if block:
            self.blocks.append(block)


def _append_content_with_emphasis(content: Element, block: str) -> None:
    """Append ``block`` to ``content``, turning ``**span**`` into <b>."""
    remaining = block
    while True:
        start = remaining.find("**")
        if start == -1:
            break
        end = remaining.find("**", start + 2)
        if end == -1:
            break
        if start:
            content.append_text(remaining[:start])
        bold = content.make_child("b")
        bold.append_text(remaining[start + 2:end])
        remaining = remaining[end + 2:]
    if remaining:
        content.append_text(remaining)


def build_document(
    name: str,
    sections: Sequence[Section],
    metadata: dict[str, Any] | None = None,
) -> Document:
    """Assemble canonical context/content XML from upmarked sections."""
    root = Element("document")
    meta = dict(metadata or {})
    meta.setdefault("format", "unknown")
    for section in sections:
        if not section.blocks and not section.title:
            continue
        wrapper = root.make_child("section")
        wrapper.synthetic = True
        if section.level != 1:
            wrapper.attributes["level"] = str(section.level)
        context = wrapper.make_child("context")
        title = section.title.strip()
        if not title:
            # Untitled leading material: synthesise a context so the
            # content stays reachable by context search.
            title = Path(name).stem or "Untitled"
            context.synthetic = True
        context.append_text(title)
        for block in section.blocks:
            content = wrapper.make_child("content")
            _append_content_with_emphasis(content, block)
    if not root.children:
        wrapper = root.make_child("section")
        wrapper.synthetic = True
        context = wrapper.make_child("context")
        context.synthetic = True
        context.append_text(Path(name).stem or "Untitled")
    return Document(root, name=name, metadata=meta)


class Converter:
    """Base class for format converters.

    Subclasses set :attr:`format_name`, :attr:`extensions` and implement
    :meth:`upmark`, returning a list of :class:`Section`.  ``sniff`` may be
    overridden for content-based detection (used when the extension lies).
    """

    format_name: str = "unknown"
    extensions: tuple[str, ...] = ()
    #: Sniffing order: higher priorities are consulted first, so magic-
    #: header formats outrank heuristic ones and the plain-text fallback
    #: (priority 0) goes last.
    sniff_priority: int = 50

    def upmark(self, text: str, name: str) -> list[Section]:
        raise NotImplementedError

    def metadata(self, text: str, name: str) -> dict[str, Any]:
        """Facts recorded in the DOC table alongside the node rows."""
        return {
            "format": self.format_name,
            "char_size": len(text),
            "line_count": text.count("\n") + 1 if text else 0,
        }

    def sniff(self, text: str) -> bool:
        """Content-based detection; default never matches."""
        return False

    def convert(self, text: str, name: str) -> Document:
        """Upmark ``text`` and assemble the canonical document."""
        sections = self.upmark(text, name)
        return build_document(name, sections, self.metadata(text, name))


class ConverterRegistry:
    """Extension- and content-based dispatch over registered converters."""

    def __init__(self) -> None:
        self._by_extension: dict[str, Converter] = {}
        self._converters: list[Converter] = []

    def register(self, converter: Converter) -> Converter:
        for extension in converter.extensions:
            extension = extension.lower().lstrip(".")
            if extension in self._by_extension:
                raise ConverterError(
                    f"extension .{extension} already registered to "
                    f"{self._by_extension[extension].format_name}"
                )
            self._by_extension[extension] = converter
        self._converters.append(converter)
        return converter

    def unregister(self, converter: Converter) -> None:
        """Remove ``converter`` (no-op if absent) — test fixtures only."""
        for extension in converter.extensions:
            extension = extension.lower().lstrip(".")
            if self._by_extension.get(extension) is converter:
                del self._by_extension[extension]
        if converter in self._converters:
            self._converters.remove(converter)

    def for_name(self, name: str) -> Converter | None:
        extension = Path(name).suffix.lower().lstrip(".")
        return self._by_extension.get(extension)

    def resolve(self, name: str, text: str) -> Converter:
        """Pick a converter by extension, then by content sniffing."""
        converter = self.for_name(name)
        if converter is not None:
            return converter
        ranked = sorted(
            self._converters,
            key=lambda candidate: -candidate.sniff_priority,
        )
        for candidate in ranked:
            if candidate.sniff(text):
                return candidate
        raise UnsupportedFormatError(
            f"no converter for {name!r} (extension unknown, content "
            "not recognised)"
        )

    def formats(self) -> tuple[str, ...]:
        return tuple(converter.format_name for converter in self._converters)

    def extensions_supported(self) -> tuple[str, ...]:
        return tuple(sorted(self._by_extension))


#: The default registry; populated by the format modules at import time.
# repro: guarded-by(import-time) format modules register themselves on import; read-only afterwards
registry = ConverterRegistry()


def convert(text: str, name: str) -> Document:
    """Convert ``text`` (file content) named ``name`` via the registry."""
    return registry.resolve(name, text).convert(text, name)


def split_paragraphs(text: str) -> Iterable[str]:
    """Split plain text into paragraphs on blank lines."""
    paragraph: list[str] = []
    for line in text.splitlines():
        if line.strip():
            paragraph.append(line.strip())
        elif paragraph:
            yield " ".join(paragraph)
            paragraph = []
    if paragraph:
        yield " ".join(paragraph)
