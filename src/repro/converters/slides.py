"""Presentation converter (synthetic ``.nppt`` format).

PowerPoint upmarking in the paper maps slide titles to contexts and slide
bodies to content.  **NPPT** carries that structure in text form::

    #NPPT
    == Slide 1: Project Overview ==
    * Integrated access to 40 sources
    * Schema-less storage
    notes: emphasise the cost curve

    == Slide 2: Architecture ==
    * Daemon -> SGML parser -> XML store

Each slide becomes one section (level 1) titled by the slide title; its
bullets and free lines become content blocks.  ``notes:`` lines become a
trailing block prefixed ``Speaker notes:`` so they remain searchable — the
paper's applications routinely query presentation content.
"""

from __future__ import annotations

import re

from repro.converters.base import Converter, Section, registry
from repro.errors import ConverterError

_SLIDE_RE = re.compile(r"^==\s*(?:Slide\s+\d+:\s*)?(.*?)\s*==\s*$")
_BULLET_RE = re.compile(r"^\s*[*\-]\s+(.*)$")
_NOTES_RE = re.compile(r"^notes:\s*(.*)$", re.IGNORECASE)

MAGIC = "#NPPT"


class SlidesConverter(Converter):
    """Upmark ``.nppt`` slide decks, one section per slide."""

    format_name = "slides"
    extensions = ("nppt", "ppt", "pptx")
    sniff_priority = 100

    def sniff(self, text: str) -> bool:
        return text.lstrip().startswith(MAGIC)

    def upmark(self, text: str, name: str) -> list[Section]:
        lines = text.splitlines()
        if not lines or not lines[0].strip().startswith(MAGIC):
            raise ConverterError(
                f"{name!r} is not an NPPT file (missing {MAGIC} header)"
            )
        sections: list[Section] = []
        for raw_line in lines[1:]:
            line = raw_line.rstrip()
            if not line.strip():
                continue
            slide = _SLIDE_RE.match(line.strip())
            if slide:
                sections.append(Section(title=slide.group(1), level=1))
                continue
            if not sections:
                sections.append(Section(title="", level=1))
            notes = _NOTES_RE.match(line.strip())
            if notes:
                if notes.group(1):
                    sections[-1].add(f"Speaker notes: {notes.group(1)}")
                continue
            bullet = _BULLET_RE.match(line)
            if bullet:
                sections[-1].add(bullet.group(1))
            else:
                sections[-1].add(line.strip())
        return [section for section in sections if section.blocks or section.title]


registry.register(SlidesConverter())
