"""Document converters ("upmark" parsers).

Each module registers a :class:`~repro.converters.base.Converter` for one
format family; :func:`convert` dispatches by file extension with a
content-sniffing fallback.  Binary office formats are replaced by
text-serialised stand-ins (``.ndoc``, ``.npdf``, ``.nppt``) that preserve
the structural cues real parsers extract — see DESIGN.md §2.
"""

from repro.converters.base import (
    Converter,
    ConverterRegistry,
    Section,
    build_document,
    convert,
    registry,
    split_paragraphs,
)

# Importing the format modules registers them with the default registry.
from repro.converters.html import HtmlConverter
from repro.converters.markdown import MarkdownConverter
from repro.converters.pdfdoc import PdfConverter
from repro.converters.plaintext import PlainTextConverter
from repro.converters.slides import SlidesConverter
from repro.converters.spreadsheet import SpreadsheetConverter, parse_delimited
from repro.converters.worddoc import WordDocConverter
from repro.converters.xmlpass import XmlConverter

__all__ = [
    "Converter",
    "ConverterRegistry",
    "HtmlConverter",
    "MarkdownConverter",
    "PdfConverter",
    "PlainTextConverter",
    "Section",
    "SlidesConverter",
    "SpreadsheetConverter",
    "WordDocConverter",
    "XmlConverter",
    "build_document",
    "convert",
    "parse_delimited",
    "registry",
    "split_paragraphs",
]
