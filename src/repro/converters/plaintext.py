"""Plain-text converter.

Detects headings from layout cues only (there is no markup):

* underlined lines (``====`` or ``----`` under a short line),
* numbered headings (``1. Introduction``, ``2.3 Query Processing``),
* short ALL-CAPS lines.

Everything else groups into paragraphs under the nearest heading.
"""

from __future__ import annotations

import re

from repro.converters.base import Converter, Section, registry

_NUMBERED_RE = re.compile(r"^\s*(\d+(?:\.\d+)*)[.)]?\s+(\S.*)$")
_UNDERLINE_RE = re.compile(r"^\s*(={3,}|-{3,})\s*$")


def _is_all_caps_heading(line: str) -> bool:
    stripped = line.strip()
    if not (3 <= len(stripped) <= 60):
        return False
    letters = [char for char in stripped if char.isalpha()]
    return bool(letters) and all(char.isupper() for char in letters)


class PlainTextConverter(Converter):
    """Upmark ``.txt`` files using layout heuristics."""

    format_name = "text"
    extensions = ("txt", "text")
    sniff_priority = 0

    def sniff(self, text: str) -> bool:
        # Plain text is the fallback of last resort: accept anything that
        # is not markup-like.
        return not text.lstrip().startswith("<")

    def upmark(self, text: str, name: str) -> list[Section]:
        sections: list[Section] = [Section(title="", level=1)]
        paragraph: list[str] = []
        lines = text.splitlines()

        def flush_paragraph() -> None:
            if paragraph:
                sections[-1].add(" ".join(paragraph))
                paragraph.clear()

        index = 0
        while index < len(lines):
            line = lines[index]
            next_line = lines[index + 1] if index + 1 < len(lines) else ""
            stripped = line.strip()
            if not stripped:
                flush_paragraph()
                index += 1
                continue
            if _UNDERLINE_RE.match(next_line) and len(stripped) <= 80:
                flush_paragraph()
                level = 1 if next_line.strip().startswith("=") else 2
                sections.append(Section(title=stripped, level=level))
                index += 2
                continue
            numbered = _NUMBERED_RE.match(line)
            if numbered and len(stripped) <= 80 and not stripped.endswith("."):
                flush_paragraph()
                depth = numbered.group(1).count(".") + 1
                sections.append(Section(title=numbered.group(2), level=depth))
                index += 1
                continue
            if _is_all_caps_heading(line):
                flush_paragraph()
                sections.append(Section(title=stripped.title(), level=1))
                index += 1
                continue
            paragraph.append(stripped)
            index += 1
        flush_paragraph()
        return [section for section in sections if section.blocks or section.title]


registry.register(PlainTextConverter())
