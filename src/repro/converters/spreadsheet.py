"""Spreadsheet converter (CSV/TSV).

The paper's motivating data "could well be stored in a spreadsheet";
proposal budgets at NASA arrive as spreadsheets that must still answer
context searches.  The upmark rule: the header row names the columns,
and **each data row becomes one section** whose context is the row's
first-column value and whose content lists ``Header: value`` pairs.
A row keyed ``Travel`` in a budget sheet is thereby found by
``Context=Travel`` exactly like a "Travel" heading in a Word document —
the uniformity that lets NETMARK integrate spreadsheets and documents in
one query.

Quoting follows RFC 4180: fields may be double-quoted, quotes escape by
doubling, and quoted fields may contain the delimiter and newlines.
"""

from __future__ import annotations

from typing import Any

from repro.converters.base import Converter, Section, registry
from repro.errors import ConverterError


def parse_delimited(text: str, delimiter: str = ",") -> list[list[str]]:
    """Parse RFC-4180-style delimited text into rows of fields."""
    rows: list[list[str]] = []
    field_chars: list[str] = []
    row: list[str] = []
    in_quotes = False
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if in_quotes:
            if char == '"':
                if index + 1 < length and text[index + 1] == '"':
                    field_chars.append('"')
                    index += 2
                    continue
                in_quotes = False
                index += 1
                continue
            field_chars.append(char)
            index += 1
            continue
        if char == '"' and not field_chars:
            in_quotes = True
            index += 1
            continue
        if char == delimiter:
            row.append("".join(field_chars))
            field_chars = []
            index += 1
            continue
        if char == "\n" or (char == "\r" and index + 1 < length and text[index + 1] == "\n"):
            row.append("".join(field_chars))
            field_chars = []
            rows.append(row)
            row = []
            index += 2 if char == "\r" else 1
            continue
        if char == "\r":
            row.append("".join(field_chars))
            field_chars = []
            rows.append(row)
            row = []
            index += 1
            continue
        field_chars.append(char)
        index += 1
    if in_quotes:
        raise ConverterError("unterminated quoted field in delimited input")
    if field_chars or row:
        row.append("".join(field_chars))
        rows.append(row)
    return [r for r in rows if any(fieldvalue.strip() for fieldvalue in r)]


class SpreadsheetConverter(Converter):
    """Upmark CSV/TSV sheets, one section per data row."""

    format_name = "spreadsheet"
    extensions = ("csv", "tsv")

    def _delimiter(self, name: str, text: str) -> str:
        if name.lower().endswith(".tsv"):
            return "\t"
        # Sniff: a tab in the first line with no comma means TSV content.
        first_line = text.splitlines()[0] if text.splitlines() else ""
        if "\t" in first_line and "," not in first_line:
            return "\t"
        return ","

    def metadata(self, text: str, name: str) -> dict[str, Any]:
        meta = super().metadata(text, name)
        rows = parse_delimited(text, self._delimiter(name, text))
        meta["row_count"] = max(0, len(rows) - 1)
        meta["column_count"] = len(rows[0]) if rows else 0
        return meta

    def upmark(self, text: str, name: str) -> list[Section]:
        rows = parse_delimited(text, self._delimiter(name, text))
        if not rows:
            return []
        header = [fieldvalue.strip() for fieldvalue in rows[0]]
        sections: list[Section] = []
        for row in rows[1:]:
            title = row[0].strip() if row else ""
            section = Section(title=title, level=1)
            pairs = []
            for column, value in zip(header[1:], row[1:]):
                value = value.strip()
                if value:
                    pairs.append(f"{column}: {value}")
            if pairs:
                section.add("; ".join(pairs))
            sections.append(section)
        return [section for section in sections if section.blocks or section.title]


registry.register(SpreadsheetConverter())
