r"""Word-processor converter (synthetic ``.ndoc`` format).

The paper ingests real Microsoft Word files; their binary format is not
available here, so this reproduction defines **NDOC**, a minimal
text-serialised stand-in that preserves the one thing the upmark pipeline
consumes from Word: *named paragraph styles*.  A ``.ndoc`` file is a
sequence of style-tagged paragraphs::

    {\ndoc1}
    {\meta author D. Maluf}
    {\style Title}Proposal 0042: Lean Middleware
    {\style Heading1}Budget
    {\style Normal}We request **$1.2M** over two years.
    {\style Heading2}Travel
    {\style Normal}Two conferences per year.

``Title`` and ``HeadingN`` styles become CONTEXT sections at the matching
level; ``Normal`` (and any unknown style) paragraphs become content
blocks.  ``{\meta key value}`` lines populate document metadata.  This
preserves the paper-relevant behaviour: heading styles are the formatting
cue Word parsers use to upmark documents.
"""

from __future__ import annotations

import re
from typing import Any

from repro.converters.base import Converter, Section, registry
from repro.errors import ConverterError

_DIRECTIVE_RE = re.compile(r"^\{\\(\w+)(?:\s+([^}]*))?\}(.*)$")
_HEADING_STYLE_RE = re.compile(r"^heading(\d)$", re.IGNORECASE)

MAGIC = r"{\ndoc1}"


class WordDocConverter(Converter):
    """Upmark ``.ndoc`` word-processor documents by paragraph style."""

    format_name = "word"
    extensions = ("ndoc", "doc")
    sniff_priority = 100

    def sniff(self, text: str) -> bool:
        return text.lstrip().startswith(MAGIC)

    def metadata(self, text: str, name: str) -> dict[str, Any]:
        meta = super().metadata(text, name)
        for line in text.splitlines():
            match = _DIRECTIVE_RE.match(line.strip())
            if match and match.group(1) == "meta" and match.group(2):
                key, _, value = match.group(2).partition(" ")
                meta[key.strip()] = value.strip()
        return meta

    def upmark(self, text: str, name: str) -> list[Section]:
        lines = text.splitlines()
        if not lines or not lines[0].strip().startswith(MAGIC):
            raise ConverterError(
                f"{name!r} is not an NDOC file (missing {MAGIC} header)"
            )
        sections: list[Section] = [Section(title="", level=1)]
        for raw_line in lines[1:]:
            line = raw_line.rstrip()
            if not line.strip():
                continue
            match = _DIRECTIVE_RE.match(line.strip())
            if match is None:
                # Continuation of the previous paragraph.
                sections[-1].add(line.strip())
                continue
            directive, argument, rest = match.groups()
            rest = (rest or "").strip()
            if directive == "meta":
                continue
            if directive != "style":
                raise ConverterError(
                    f"{name!r}: unknown NDOC directive \\{directive}"
                )
            style = (argument or "Normal").strip()
            if style.lower() == "title":
                sections.append(Section(title=rest, level=1))
                continue
            heading = _HEADING_STYLE_RE.match(style)
            if heading:
                sections.append(Section(title=rest, level=int(heading.group(1))))
                continue
            if rest:
                sections[-1].add(rest)
        return [section for section in sections if section.blocks or section.title]


registry.register(WordDocConverter())
