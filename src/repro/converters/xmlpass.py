"""XML pass-through converter.

Well-formed XML already carries its own structure; NETMARK stores it
as-is (the schema-less store accepts *any* element tree).  The converter
therefore parses strictly and returns the document unchanged — no
section synthesis.  ``convert`` is overridden because the upmark/build
pipeline in :class:`~repro.converters.base.Converter` assumes section
flattening, which would destroy arbitrary XML structure.
"""

from __future__ import annotations

from typing import Any

from repro.converters.base import Converter, Section, registry
from repro.sgml.dom import Document
from repro.sgml.parser import parse_xml


class XmlConverter(Converter):
    """Accept well-formed XML verbatim."""

    format_name = "xml"
    extensions = ("xml",)
    sniff_priority = 60

    def sniff(self, text: str) -> bool:
        head = text.lstrip()
        return head.startswith("<?xml") or (
            head.startswith("<") and not head.lower().startswith("<!doctype html")
        )

    def upmark(self, text: str, name: str) -> list[Section]:  # pragma: no cover
        raise NotImplementedError("XmlConverter overrides convert() directly")

    def metadata(self, text: str, name: str) -> dict[str, Any]:
        return super().metadata(text, name)

    def convert(self, text: str, name: str) -> Document:
        document = parse_xml(text, name=name)
        document.metadata.update(self.metadata(text, name))
        return document


registry.register(XmlConverter())
