"""PDF converter (synthetic ``.npdf`` format).

Real PDF extraction yields text runs with font sizes; headings are the
runs set in larger type.  **NPDF** serialises exactly that signal: each
line is ``[F<size>] text``::

    %NPDF-1.0
    [F24] Integrated Budget Performance Document
    [F14] Executive Summary
    [F10] This document unifies previously disconnected budgets.
    [F14] Task Plans
    [F10] Totals are aggregated per NASA center.

The converter infers the *body* size as the most frequent font size, then
maps every larger size to a heading level by descending rank — the same
dominant-font heuristic real PDF upmarkers use.  Consecutive body lines
merge into paragraphs; a blank line separates paragraphs.
"""

from __future__ import annotations

import re
from collections import Counter

from repro.converters.base import Converter, Section, registry
from repro.errors import ConverterError

_LINE_RE = re.compile(r"^\[F(\d+(?:\.\d+)?)\]\s?(.*)$")

MAGIC = "%NPDF"


class PdfConverter(Converter):
    """Upmark ``.npdf`` documents by font-size ranking."""

    format_name = "pdf"
    extensions = ("npdf", "pdf")
    sniff_priority = 100

    def sniff(self, text: str) -> bool:
        return text.lstrip().startswith(MAGIC)

    def upmark(self, text: str, name: str) -> list[Section]:
        lines = text.splitlines()
        if not lines or not lines[0].strip().startswith(MAGIC):
            raise ConverterError(
                f"{name!r} is not an NPDF file (missing {MAGIC} header)"
            )
        runs: list[tuple[float | None, str]] = []
        for raw_line in lines[1:]:
            if not raw_line.strip():
                runs.append((None, ""))  # paragraph break
                continue
            match = _LINE_RE.match(raw_line.strip())
            if match is None:
                raise ConverterError(
                    f"{name!r}: NPDF line missing [F<size>] marker: "
                    f"{raw_line.strip()[:40]!r}"
                )
            runs.append((float(match.group(1)), match.group(2).strip()))

        # The body size is the one carrying the most *characters* (heading
        # lines are short); ties break toward the smaller size, since body
        # text is never set larger than headings.
        sizes: Counter[float] = Counter()
        for size, text_run in runs:
            if size is not None and text_run:
                sizes[size] += len(text_run)
        if not sizes:
            return []
        body_size = min(
            sizes, key=lambda size: (-sizes[size], size)
        )
        heading_sizes = sorted(
            {size for size in sizes if size > body_size}, reverse=True
        )
        level_of = {size: rank + 1 for rank, size in enumerate(heading_sizes)}

        sections: list[Section] = [Section(title="", level=1)]
        paragraph: list[str] = []

        def flush() -> None:
            if paragraph:
                sections[-1].add(" ".join(paragraph))
                paragraph.clear()

        for size, text_run in runs:
            if size is None:
                flush()
                continue
            if not text_run:
                continue
            if size in level_of:
                flush()
                sections.append(Section(title=text_run, level=level_of[size]))
            else:
                paragraph.append(text_run)
        flush()
        return [section for section in sections if section.blocks or section.title]


registry.register(PdfConverter())
