"""Markdown converter.

Handles the Markdown subset enterprise documents actually use: ``#``
headings (levels 1-6), Setext underlines, paragraph grouping, ``-``/``*``
bullet lists (flattened to sentence-per-bullet blocks), fenced code blocks
(kept verbatim as one block), and ``**bold**`` emphasis, which the section
builder renders as INTENSE nodes.
"""

from __future__ import annotations

import re

from repro.converters.base import Converter, Section, registry

_ATX_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_BULLET_RE = re.compile(r"^\s*[-*+]\s+(.*)$")
_SETEXT_RE = re.compile(r"^\s*(={3,}|-{3,})\s*$")
_FENCE_RE = re.compile(r"^```")


class MarkdownConverter(Converter):
    """Upmark ``.md`` files."""

    format_name = "markdown"
    extensions = ("md", "markdown")
    sniff_priority = 40

    def sniff(self, text: str) -> bool:
        return bool(re.search(r"^#{1,6}\s+\S", text, re.MULTILINE))

    def upmark(self, text: str, name: str) -> list[Section]:
        sections: list[Section] = [Section(title="", level=1)]
        paragraph: list[str] = []
        in_fence = False
        fence_lines: list[str] = []
        lines = text.splitlines()

        def flush_paragraph() -> None:
            if paragraph:
                sections[-1].add(" ".join(paragraph))
                paragraph.clear()

        index = 0
        while index < len(lines):
            line = lines[index]
            if _FENCE_RE.match(line):
                if in_fence:
                    sections[-1].add("\n".join(fence_lines))
                    fence_lines.clear()
                    in_fence = False
                else:
                    flush_paragraph()
                    in_fence = True
                index += 1
                continue
            if in_fence:
                fence_lines.append(line)
                index += 1
                continue
            heading = _ATX_RE.match(line)
            if heading:
                flush_paragraph()
                sections.append(
                    Section(title=heading.group(2), level=len(heading.group(1)))
                )
                index += 1
                continue
            next_line = lines[index + 1] if index + 1 < len(lines) else ""
            if line.strip() and _SETEXT_RE.match(next_line):
                flush_paragraph()
                level = 1 if next_line.strip().startswith("=") else 2
                sections.append(Section(title=line.strip(), level=level))
                index += 2
                continue
            bullet = _BULLET_RE.match(line)
            if bullet:
                flush_paragraph()
                sections[-1].add(bullet.group(1))
                index += 1
                continue
            if not line.strip():
                flush_paragraph()
            else:
                paragraph.append(line.strip())
            index += 1
        if in_fence and fence_lines:
            sections[-1].add("\n".join(fence_lines))
        flush_paragraph()
        return [section for section in sections if section.blocks or section.title]


registry.register(MarkdownConverter())
