"""The Fig 1 cost model: user cost versus number of consumers.

The paper's figure contrasts two curves as an enterprise adds integration
*consumers* (applications and their users):

* **current trend** — cost grows linearly, because every new application
  re-pays schema and mapping engineering for the sources it touches;
* **cost-scaling vision** — per-consumer cost *falls*, because sources,
  once reachable, are reused by every later application at ~zero marginal
  engineering (a databank line).

:func:`consumer_cost_curves` simulates an enterprise growing one
application at a time.  Each application uses ``sources_per_app`` sources,
of which a fraction are new to the enterprise (early apps bring many new
sources; later ones mostly reuse).  The per-application engineering charge
comes from the *measured* artifact accounting in
:mod:`repro.costmodel.accounting` — the model only supplies the growth
scenario, not the costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.accounting import (
    DATABANK_LINE,
    GAV_MAPPING_LINES,
    GAV_SCHEMA_LINES,
)


@dataclass(frozen=True)
class CostPoint:
    """One point of a cost curve."""

    consumers: int
    cumulative_cost: float
    marginal_cost: float

    @property
    def cost_per_consumer(self) -> float:
        return self.cumulative_cost / self.consumers


@dataclass(frozen=True)
class GrowthScenario:
    """How the synthetic enterprise grows."""

    applications: int = 16
    sources_per_app: int = 6
    #: Number of *new* sources the n-th application introduces; the rest
    #: are reused.  Defaults model early apps onboarding the enterprise's
    #: repositories and later apps reusing them.
    new_sources_first_app: int = 6
    new_sources_later_apps: int = 1

    def new_sources(self, app_index: int) -> int:
        if app_index == 0:
            return min(self.new_sources_first_app, self.sources_per_app)
        return min(self.new_sources_later_apps, self.sources_per_app)


def gav_marginal_cost(new_sources: int, sources_used: int) -> float:
    """Spec lines to add one application under GAV mediation.

    Every new source needs its schema (source view); the application needs
    its own global view(s) and one mapping rule per source it integrates —
    reuse does not waive the mapping work, because the new application's
    views must be related to every source view it draws from.
    """
    schema_cost = new_sources * (GAV_SCHEMA_LINES * 3)  # schema + 2 relations
    view_cost = 2 * GAV_SCHEMA_LINES  # the app's global relations
    mapping_cost = 2 * sources_used * GAV_MAPPING_LINES
    return float(schema_cost + view_cost + mapping_cost)


def netmark_marginal_cost(new_sources: int, sources_used: int) -> float:
    """Spec lines to add one application under NETMARK.

    A new source costs one adapter registration line; the application
    costs one databank declaration plus one line per source used.  No
    schemas, no mappings.
    """
    return float(new_sources * DATABANK_LINE + 1 + sources_used * DATABANK_LINE)


def consumer_cost_curves(
    scenario: GrowthScenario | None = None,
) -> dict[str, list[CostPoint]]:
    """Cumulative cost curves for both systems under one growth scenario."""
    scenario = scenario or GrowthScenario()
    curves: dict[str, list[CostPoint]] = {"gav": [], "netmark": []}
    gav_total = 0.0
    netmark_total = 0.0
    for app_index in range(scenario.applications):
        new = scenario.new_sources(app_index)
        used = scenario.sources_per_app
        gav_step = gav_marginal_cost(new, used)
        netmark_step = netmark_marginal_cost(new, used)
        gav_total += gav_step
        netmark_total += netmark_step
        consumers = app_index + 1
        curves["gav"].append(CostPoint(consumers, gav_total, gav_step))
        curves["netmark"].append(CostPoint(consumers, netmark_total, netmark_step))
    return curves


def is_linear_growth(points: list[CostPoint], tolerance: float = 0.25) -> bool:
    """Does cumulative cost grow (at least) linearly in consumers?

    Checks that the marginal cost never falls below (1 - tolerance) of the
    steady-state marginal cost — i.e. no economies of scale.
    """
    if len(points) < 3:
        return True
    steady = [point.marginal_cost for point in points[1:]]
    reference = sum(steady) / len(steady)
    return all(margin >= reference * (1 - tolerance) for margin in steady)


def shows_economies_of_scale(
    points: list[CostPoint],
    linear_reference: list[CostPoint],
    advantage: float = 5.0,
) -> bool:
    """Does this curve realise Fig 1's "cost scaling vision"?

    Any one-time-setup model has a falling per-consumer *average*, so that
    alone cannot distinguish the two curves.  The vision curve is the one
    whose per-consumer cost (a) falls monotonically and (b) ends at least
    ``advantage``× below the linear reference's — the consumer pays a
    vanishing share, not merely an amortised constant.
    """
    per_consumer = [point.cost_per_consumer for point in points]
    falling = all(
        later < earlier
        for earlier, later in zip(per_consumer, per_consumer[1:])
    )
    if not falling or not linear_reference:
        return False
    return per_consumer[-1] * advantage <= linear_reference[-1].cost_per_consumer


def scaling_advantage(
    gav_points: list[CostPoint], netmark_points: list[CostPoint]
) -> float:
    """Steady-state marginal-cost ratio (GAV / NETMARK) — Fig 1's gap."""
    gav_margin = gav_points[-1].marginal_cost
    netmark_margin = netmark_points[-1].marginal_cost
    return gav_margin / netmark_margin if netmark_margin else float("inf")
