"""Integration-cost accounting and the Fig 1 cost curves."""

from repro.costmodel.accounting import (
    DATABANK_LINE,
    GAV_MAPPING_LINES,
    GAV_SCHEMA_LINES,
    IntegrationBuild,
    artifact_curves,
    build_gav_integration,
    build_netmark_integration,
)
from repro.costmodel.model import (
    CostPoint,
    GrowthScenario,
    consumer_cost_curves,
    gav_marginal_cost,
    is_linear_growth,
    netmark_marginal_cost,
    scaling_advantage,
    shows_economies_of_scale,
)

__all__ = [
    "CostPoint",
    "DATABANK_LINE",
    "GAV_MAPPING_LINES",
    "GAV_SCHEMA_LINES",
    "GrowthScenario",
    "IntegrationBuild",
    "artifact_curves",
    "build_gav_integration",
    "build_netmark_integration",
    "consumer_cost_curves",
    "gav_marginal_cost",
    "is_linear_growth",
    "netmark_marginal_cost",
    "scaling_advantage",
    "shows_economies_of_scale",
]
