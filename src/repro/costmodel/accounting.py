"""Measured integration-artifact accounting.

FIG1's input data: for a given number of sources, *actually build* both
integrations and count the artifacts each one required.  Nothing here is
asserted — the numbers come out of the constructed systems' own ledgers
(:attr:`Mediator.engineering_artifacts`,
:attr:`DatabankRegistry.total_artifacts`).

The synthetic enterprise: every source exports two relations
(``DOCS(doc_id, title, division, amount)`` and
``SECTIONS(doc_id, heading, body)``); an integration application needs a
global view over each.  That is the *minimal* GAV footprint — real
deployments add more relations and more mappings, so the measured gap is
a lower bound on the paper's claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gav import (
    GavMapping,
    Mediator,
    RelationSchema,
    SourceQuery,
    SourceSchema,
)
from repro.federation.databank import DatabankRegistry
from repro.federation.sources import ContentOnlySource


@dataclass(frozen=True)
class IntegrationBuild:
    """Artifact counts for one constructed integration."""

    system: str
    sources: int
    artifacts: int
    spec_lines: int  # artifacts weighted by typical spec size


#: Typical specification sizes per artifact kind, in lines of spec text.
#: These are the only modelled constants; everything else is measured.
GAV_SCHEMA_LINES = 12       # a source schema/view definition
GAV_MAPPING_LINES = 6       # one mapping rule (rename + filter)
DATABANK_LINE = 1           # one databank source declaration


def build_gav_integration(source_count: int) -> tuple[Mediator, IntegrationBuild]:
    """Stand up a GAV mediator over ``source_count`` sources."""
    mediator = Mediator()
    mediator.define_global_relation(
        RelationSchema("G_DOCS", ("DOC_ID", "TITLE", "DIVISION", "AMOUNT"))
    )
    mediator.define_global_relation(
        RelationSchema("G_SECTIONS", ("DOC_ID", "HEADING", "BODY"))
    )
    docs_mapping = GavMapping("G_DOCS")
    sections_mapping = GavMapping("G_SECTIONS")
    for index in range(source_count):
        source_name = f"src{index:03d}"
        schema = SourceSchema(source_name)
        # Sources disagree on attribute names — the reconciliation work
        # GAV mappings exist to do.
        doc_attrs = ("ID", "NAME", "ORG", "DOLLARS") if index % 2 else (
            "DOC_ID", "TITLE", "DIVISION", "AMOUNT"
        )
        schema.add_relation(RelationSchema("DOCS", doc_attrs))
        schema.add_relation(RelationSchema("SECTIONS", ("DOC_ID", "HEADING", "BODY")))
        mediator.register_source(schema)
        mediator.bind_extension(source_name, "DOCS", list)
        mediator.bind_extension(source_name, "SECTIONS", list)
        docs_mapping.add(
            SourceQuery(
                source_name,
                "DOCS",
                tuple(
                    zip(("DOC_ID", "TITLE", "DIVISION", "AMOUNT"), doc_attrs)
                ),
            )
        )
        sections_mapping.add(
            SourceQuery(
                source_name,
                "SECTIONS",
                (("DOC_ID", "DOC_ID"), ("HEADING", "HEADING"), ("BODY", "BODY")),
            )
        )
    mediator.define_mapping(docs_mapping)
    mediator.define_mapping(sections_mapping)
    artifacts = mediator.engineering_artifacts
    # Weight: schemas and relations at schema cost, mappings at rule cost.
    schema_artifacts = sum(
        source.schema.artifact_count for source in mediator._sources.values()
    ) + mediator.global_schema.artifact_count
    mapping_artifacts = artifacts - schema_artifacts
    spec_lines = (
        schema_artifacts * GAV_SCHEMA_LINES
        + mapping_artifacts * GAV_MAPPING_LINES
    )
    return mediator, IntegrationBuild("gav", source_count, artifacts, spec_lines)


def build_netmark_integration(
    source_count: int,
) -> tuple[DatabankRegistry, IntegrationBuild]:
    """Stand up a NETMARK databank over ``source_count`` sources."""
    registry = DatabankRegistry()
    databank = registry.create("application", "synthetic integration app")
    for index in range(source_count):
        databank.add_source(ContentOnlySource(f"src{index:03d}"))
    artifacts = registry.total_artifacts
    return registry, IntegrationBuild(
        "netmark", source_count, artifacts, artifacts * DATABANK_LINE
    )


def artifact_curves(
    source_counts: list[int],
) -> dict[str, list[IntegrationBuild]]:
    """Measured artifact counts for both systems across source counts."""
    gav_builds = [build_gav_integration(k)[1] for k in source_counts]
    netmark_builds = [build_netmark_integration(k)[1] for k in source_counts]
    return {"gav": gav_builds, "netmark": netmark_builds}
