"""Query augmentation: run what the source can, finish the rest client-side.

The paper's worked example (§2.1.5): for
``Context=Title&Content=Engine`` against the Lessons Learned server,
"NETMARK will pass on to the original source whatever portions of the
query it can process (... retrieving documents that contain the word
'Engine').  Further processing is then done in NETMARK where NETMARK then
extracts the 'Title' sections from only those documents that contain the
word 'Engine' in the 'Title' section, from amongst the initial results
returned by the original server."

:func:`plan` decides the split; :func:`execute_augmented` performs it:

1. strip the query down to the source's declared capabilities,
2. run the stripped query natively (candidate documents),
3. fetch each candidate's raw content, upmark it through the normal
   converter pipeline into a *scratch* NETMARK store, and
4. run the **full** original query against the scratch store.

Step 3/4 reuse the production ingestion and query paths rather than a
separate matching implementation, so augmented semantics are identical to
native NETMARK semantics by construction — and the work they do is
metered (`residual_documents`, `residual_nodes`) for the ABL-AUG bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapabilityError
from repro.federation.capabilities import Capability, supports
from repro.federation.sources import InformationSource
from repro.query.ast import ContentSpec, XdbQuery
from repro.query.engine import QueryEngine
from repro.query.results import SectionMatch
from repro.resilience.deadline import Budget
from repro.store.xmlstore import XmlStore


@dataclass(frozen=True)
class AugmentationPlan:
    """The capability split for one (query, source) pair."""

    native_query: XdbQuery | None  # what the source runs (None: fetch-all)
    needs_residual: bool  # client-side pass required?

    @property
    def fully_native(self) -> bool:
        return self.native_query is not None and not self.needs_residual


@dataclass
class AugmentationReport:
    """Work accounting for one augmented execution."""

    native_candidates: int = 0
    residual_documents: int = 0
    residual_nodes: int = 0


def plan(query: XdbQuery, source: InformationSource) -> AugmentationPlan:
    """Decide what ``source`` runs natively and whether residual work remains."""
    if supports(source.capabilities, query):
        return AugmentationPlan(native_query=query, needs_residual=False)
    native = _strip_to_capabilities(query, source.capabilities)
    if native is None and not (source.capabilities & Capability.DOCUMENT_FETCH):
        raise CapabilityError(
            f"source {source.name!r} supports neither the query nor "
            "document fetch; it cannot participate"
        )
    return AugmentationPlan(native_query=native, needs_residual=True)


def _strip_to_capabilities(
    query: XdbQuery, capabilities: Capability
) -> XdbQuery | None:
    """Largest sub-query the source can answer natively (None if empty)."""
    context = query.context
    content = query.content
    if context is not None and not (capabilities & Capability.CONTEXT_SEARCH):
        context = None
    if content is not None:
        if not (capabilities & Capability.CONTENT_SEARCH):
            content = None
        elif content.mode == "phrase" and not (
            capabilities & Capability.PHRASE_SEARCH
        ):
            # Degrade the phrase to a conjunctive bag of terms; this can
            # only over-return, never miss, so the residual pass stays
            # sound and complete.
            from repro.ordbms.textindex import tokenize

            content = ContentSpec(tuple(tokenize(content.text)), "all")
    if context is None and content is None:
        return None
    return XdbQuery(context=context, content=content)


def execute_augmented(
    query: XdbQuery,
    source: InformationSource,
    report: AugmentationReport | None = None,
    budget: Budget | None = None,
) -> list[SectionMatch]:
    """Run ``query`` against ``source``, augmenting as planned.

    ``budget`` is the request's remaining deadline envelope; it rides
    into the native search, gates each residual document fetch, and
    bounds the residual query — so one slow source cannot spend another
    source's share of the request.
    """
    the_plan = plan(query, source)
    if the_plan.fully_native:
        if the_plan.native_query is None:
            raise CapabilityError(
                "augmentation plan is marked fully native but carries "
                "no native query"
            )
        return _native_search(source, the_plan.native_query, budget)

    report = report if report is not None else AugmentationReport()
    if the_plan.native_query is not None:
        native_matches = _native_search(
            source, the_plan.native_query, budget
        )
        candidate_names = _distinct_names(native_matches)
    else:
        candidate_names = source.document_names()
    report.native_candidates = len(candidate_names)

    # Residual pass: re-ingest candidates into a scratch store and run the
    # full query through the normal engine.
    scratch = XmlStore()
    name_map: dict[int, str] = {}
    for file_name in candidate_names:
        if budget is not None and not budget.admits(source.name):
            break
        raw = source.fetch_document(file_name)
        result = scratch.store_text(raw, file_name)
        name_map[result.doc_id] = file_name
        report.residual_documents += 1
        report.residual_nodes += result.node_count
    engine = QueryEngine(scratch)
    refined = engine.execute(
        XdbQuery(
            context=query.context, content=query.content, limit=query.limit
        ),
        budget=budget,
    )
    attributed: list[SectionMatch] = []
    for match in refined:
        clone = match.with_source(source.name)
        clone.file_name = name_map.get(match.doc_id, match.file_name)
        clone.score = 1.0  # federated answers rank uniformly
        attributed.append(clone)
    return attributed


def _native_search(
    source: InformationSource, query: XdbQuery, budget: Budget | None
) -> list[SectionMatch]:
    """Dispatch a native search, passing the budget only when one exists.

    Sources are duck-typed at the federation boundary; an adapter written
    before deadlines existed keeps working as long as no deadline is in
    play (and under one, a budget-blind source simply runs to completion
    — the router's own boundary check still bounds the fan-out).
    """
    if budget is None:
        return source.native_search(query)
    return source.native_search(query, budget=budget)


def _distinct_names(matches: list[SectionMatch]) -> list[str]:
    names: list[str] = []
    for match in matches:
        if match.file_name not in names:
            names.append(match.file_name)
    return names
