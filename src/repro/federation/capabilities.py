"""Source capability model.

"For each data source that is accessed, an administrator will have to
look at the query capabilities of that source and engineer what query
processing can be used from the source and what must further be augmented
by Netmark."

A capability names one kind of query a source can answer *natively*.
The administrator declares a source's :class:`CapabilitySet`; the
augmenter plans around it mechanically.
"""

from __future__ import annotations

import enum

from repro.errors import CapabilityError
from repro.query.ast import XdbQuery


class Capability(enum.Flag):
    """One natively-supported query feature."""

    NONE = 0
    #: Keyword search over document content ("Content=Shuttle").
    CONTENT_SEARCH = enum.auto()
    #: Heading-based section search ("Context=Budget").
    CONTEXT_SEARCH = enum.auto()
    #: Exact phrase matching within content.
    PHRASE_SEARCH = enum.auto()
    #: The source can return the full text of a named document —
    #: the hook client-side augmentation needs.
    DOCUMENT_FETCH = enum.auto()


#: What a full NETMARK node offers.
FULL = (
    Capability.CONTENT_SEARCH
    | Capability.CONTEXT_SEARCH
    | Capability.PHRASE_SEARCH
    | Capability.DOCUMENT_FETCH
)

#: A content-only source such as the NASA Lessons Learned server.
CONTENT_ONLY = Capability.CONTENT_SEARCH | Capability.DOCUMENT_FETCH


def required_for(query: XdbQuery) -> Capability:
    """The capabilities a source needs to answer ``query`` natively."""
    needed = Capability.NONE
    if query.context is not None:
        needed |= Capability.CONTEXT_SEARCH
    if query.content is not None:
        needed |= Capability.CONTENT_SEARCH
        if query.content.mode == "phrase":
            needed |= Capability.PHRASE_SEARCH
    return needed


def supports(capabilities: Capability, query: XdbQuery) -> bool:
    """True when ``query`` can run natively under ``capabilities``."""
    needed = required_for(query)
    return (capabilities & needed) == needed


def check_supports(capabilities: Capability, query: XdbQuery, source: str) -> None:
    """Raise :class:`CapabilityError` when the query exceeds the source."""
    if not supports(capabilities, query):
        missing = required_for(query) & ~capabilities
        raise CapabilityError(
            f"source {source!r} cannot natively answer this query; "
            f"missing {missing!r}"
        )
