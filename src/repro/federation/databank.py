"""Databanks: declarative application-to-sources bindings.

"Integrated query access to multiple information sources ... is done
through a simple declarative process where an administrator creates a
'Databank' for an application.  The databank specifies what sources are to
be queried when a user fires a query to that application."

This is the *entire* per-source integration artifact in NETMARK — one
registry line.  The registry counts those lines (`artifact_count`) because
they are exactly what the FIG1 cost experiment compares against the GAV
baseline's schemas and mappings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FederationError, UnknownDatabankError
from repro.federation.sources import InformationSource


@dataclass
class Databank:
    """One application's declared source set."""

    name: str
    description: str = ""
    sources: list[InformationSource] = field(default_factory=list)

    def add_source(self, source: InformationSource) -> None:
        """Declare one more source — one line of integration work."""
        if any(existing.name == source.name for existing in self.sources):
            raise FederationError(
                f"databank {self.name!r} already contains source "
                f"{source.name!r}"
            )
        self.sources.append(source)

    def source_names(self) -> list[str]:
        return [source.name for source in self.sources]

    @property
    def artifact_count(self) -> int:
        """Integration artifacts this databank cost: one per source line."""
        return len(self.sources)

    def __len__(self) -> int:
        return len(self.sources)


class DatabankRegistry:
    """All databanks of one NETMARK deployment."""

    def __init__(self) -> None:
        self._databanks: dict[str, Databank] = {}

    def create(self, name: str, description: str = "") -> Databank:
        if name in self._databanks:
            raise FederationError(f"databank {name!r} already exists")
        databank = Databank(name=name, description=description)
        self._databanks[name] = databank
        return databank

    def get(self, name: str) -> Databank:
        try:
            return self._databanks[name]
        except KeyError:
            raise UnknownDatabankError(f"no databank named {name!r}") from None

    def drop(self, name: str) -> None:
        if name not in self._databanks:
            raise UnknownDatabankError(f"no databank named {name!r}")
        del self._databanks[name]

    def names(self) -> list[str]:
        return sorted(self._databanks)

    def __len__(self) -> int:
        return len(self._databanks)

    def __contains__(self, name: str) -> bool:
        return name in self._databanks

    @property
    def total_artifacts(self) -> int:
        """All integration artifacts across databanks (FIG1 numerator)."""
        return sum(
            databank.artifact_count for databank in self._databanks.values()
        )
