"""Client-side, on-the-fly integration: databanks, augmentation, routing."""

from repro.federation.aliases import ContextAliasRegistry
from repro.federation.augment import (
    AugmentationPlan,
    AugmentationReport,
    execute_augmented,
    plan,
)
from repro.federation.capabilities import (
    CONTENT_ONLY,
    FULL,
    Capability,
    check_supports,
    required_for,
    supports,
)
from repro.federation.databank import Databank, DatabankRegistry
from repro.federation.router import Router, RoutingReport
from repro.federation.spec import SpecReport, dump_spec, load_spec
from repro.federation.sources import (
    ContentOnlySource,
    InformationSource,
    NetmarkSource,
    Record,
    SourceStats,
    StructuredSource,
)

__all__ = [
    "AugmentationPlan",
    "AugmentationReport",
    "CONTENT_ONLY",
    "Capability",
    "ContentOnlySource",
    "ContextAliasRegistry",
    "Databank",
    "DatabankRegistry",
    "FULL",
    "InformationSource",
    "NetmarkSource",
    "Record",
    "Router",
    "RoutingReport",
    "SourceStats",
    "SpecReport",
    "StructuredSource",
    "check_supports",
    "dump_spec",
    "execute_augmented",
    "load_spec",
    "plan",
    "required_for",
    "supports",
]
