"""Context aliases — the lean alternative to GAV virtual views (§4).

The paper concedes one GAV convenience NETMARK lacks: "If the Budget
section happens to be referred to as 'Cost Details' in another source
then, strictly speaking, in NETMARK we have to specify two Context
queries."  Its position is that full virtual-view machinery is not worth
its schemas and mappings — but nothing stops a *lean* version: a named
alias that expands to context alternatives at query time.

An alias is one declarative line (``Budget -> Budget | Cost Details |
Funding``), lives client-side like everything else in NETMARK, and
involves no schemas: it is exactly the paper's "two Context queries"
folded behind a name.  Aliases expand recursively (an alias may mention
another); a phrase that would re-enter an alias already being expanded is
kept as a literal phrase, so the natural self-including definition
(``Budget -> Budget | Cost Details``) works and expansion always
terminates.
"""

from __future__ import annotations

from repro.errors import FederationError
from repro.query.ast import ContextSpec, XdbQuery


class ContextAliasRegistry:
    """Named context expansions, applied by query rewriting."""

    def __init__(self) -> None:
        self._aliases: dict[str, tuple[str, ...]] = {}

    def define(self, name: str, *phrases: str) -> None:
        """Declare ``name`` to stand for the given context phrases."""
        key = name.strip().lower()
        if not key:
            raise FederationError("alias name is empty")
        cleaned = tuple(phrase.strip() for phrase in phrases if phrase.strip())
        if not cleaned:
            raise FederationError(f"alias {name!r} has no expansion phrases")
        if key in self._aliases:
            raise FederationError(f"alias {name!r} already defined")
        self._aliases[key] = cleaned

    def drop(self, name: str) -> None:
        try:
            del self._aliases[name.strip().lower()]
        except KeyError:
            raise FederationError(f"no alias named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._aliases)

    def __len__(self) -> int:
        return len(self._aliases)

    def __contains__(self, name: str) -> bool:
        return name.strip().lower() in self._aliases

    # -- rewriting -----------------------------------------------------------

    def expand(self, spec: ContextSpec) -> ContextSpec:
        """Expand every aliased phrase; non-aliases pass through."""
        phrases: list[str] = []
        for phrase in spec.phrases:
            for expanded in self._expand_phrase(phrase, seen=set()):
                if expanded not in phrases:
                    phrases.append(expanded)
        return ContextSpec(tuple(phrases))

    def rewrite(self, query: XdbQuery) -> XdbQuery:
        """Return ``query`` with its context specification expanded."""
        if query.context is None or not self._aliases:
            return query
        expanded = self.expand(query.context)
        if expanded == query.context:
            return query
        return XdbQuery(
            context=expanded,
            content=query.content,
            nodename=query.nodename,
            doc=query.doc,
            format=query.format,
            stylesheet=query.stylesheet,
            databank=query.databank,
            limit=query.limit,
            extras=query.extras,
        )

    def _expand_phrase(self, phrase: str, seen: set[str]) -> list[str]:
        key = phrase.strip().lower()
        expansion = self._aliases.get(key)
        if expansion is None or key in seen:
            # Not an alias — or an alias already being expanded, which is
            # then meant literally (the self-including common case).
            return [phrase.strip()]
        seen.add(key)
        result: list[str] = []
        for target in expansion:
            for expanded in self._expand_phrase(target, seen):
                if expanded not in result:
                    result.append(expanded)
        seen.discard(key)
        return result
