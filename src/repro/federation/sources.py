"""Information-source adapters.

Each adapter presents one remote repository behind a uniform interface:
declared :class:`~repro.federation.capabilities.Capability` set, a
``native_search`` restricted to those capabilities, and (when the source
allows it) ``fetch_document`` for client-side augmentation.

Adapters provided:

* :class:`NetmarkSource` — a full NETMARK node (wraps an
  :class:`~repro.store.xmlstore.XmlStore`).
* :class:`ContentOnlySource` — a keyword-search-only repository, modelled
  on the NASA Lessons Learned Information Server the paper integrates
  ("this source allows only 'Content search' kinds of queries").
* :class:`StructuredSource` — a record-oriented database (the anomaly
  tracking databases of §3): fielded records, equality/keyword search,
  each record rendered as a section whose context is its key field.

Every adapter counts the native work it performs (`queries_served`,
`documents_served`) so the federation benchmarks can attribute cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import CapabilityError, DocumentNotFoundError
from repro.federation.capabilities import (
    CONTENT_ONLY,
    FULL,
    Capability,
    check_supports,
)
from repro.ordbms.textindex import tokenize
from repro.query.ast import XdbQuery
from repro.query.engine import QueryEngine
from repro.query.results import SectionMatch
from repro.resilience.deadline import Budget
from repro.sgml.serializer import serialize
from repro.store.xmlstore import XmlStore


class InformationSource:
    """Base class: a named, capability-scoped remote repository."""

    def __init__(self, name: str, capabilities: Capability) -> None:
        self.name = name
        self.capabilities = capabilities
        self.queries_served = 0
        self.documents_served = 0

    def native_search(
        self, query: XdbQuery, budget: Budget | None = None
    ) -> list[SectionMatch]:
        """Answer ``query`` with native machinery only.

        Raises :class:`~repro.errors.CapabilityError` if the query needs
        more than this source declares — the router must augment instead.
        ``budget`` carries the *remaining* request deadline (absolute
        expiry on the shared clock): sources check it cooperatively and
        stop — or raise :class:`~repro.errors.QueryTimeoutError` — when
        it runs out mid-search.
        """
        raise NotImplementedError

    def fetch_document(self, file_name: str) -> str:
        """Raw stored content of one document (for augmentation)."""
        raise CapabilityError(
            f"source {self.name!r} does not support document fetch"
        )

    def document_names(self) -> list[str]:
        """Names of all documents this source holds."""
        raise CapabilityError(
            f"source {self.name!r} does not enumerate documents"
        )

    def _count_query(self) -> None:
        self.queries_served += 1


class NetmarkSource(InformationSource):
    """A full NETMARK node: everything runs natively."""

    def __init__(self, name: str, store: XmlStore) -> None:
        super().__init__(name, FULL)
        self.store = store
        self._engine = QueryEngine(store)

    def native_search(
        self, query: XdbQuery, budget: Budget | None = None
    ) -> list[SectionMatch]:
        check_supports(self.capabilities, query, self.name)
        self._count_query()
        attributed: list[SectionMatch] = []
        for match in self._engine.execute(query, budget=budget).matches:
            clone = match.with_source(self.name)
            # Federated answers rank uniformly: local INTENSE boosts are
            # not comparable across repositories, and the router's
            # limit pushdown relies on uniform scores.
            clone.score = 1.0
            attributed.append(clone)
        return attributed

    def fetch_document(self, file_name: str) -> str:
        entry = self.store.lookup_by_name(file_name)
        if entry is None:
            raise DocumentNotFoundError(
                f"{self.name!r} has no document {file_name!r}"
            )
        self.documents_served += 1
        return serialize(self.store.document(entry.doc_id))

    def document_names(self) -> list[str]:
        return [entry.file_name for entry in self.store.documents()]


class ContentOnlySource(InformationSource):
    """A repository whose search box only does keyword search.

    Documents are plain named texts; the native search returns *document
    hits* (name + snippet), exactly what a legacy web search form gives
    back.  Context processing must happen client-side — the augmentation
    path the paper walks through with ``Context=Title&Content=Engine``.
    """

    def __init__(self, name: str, documents: Mapping[str, str] | None = None) -> None:
        super().__init__(name, CONTENT_ONLY)
        self._documents: dict[str, str] = dict(documents or {})

    def add_document(self, file_name: str, content: str) -> None:
        self._documents[file_name] = content

    def native_search(
        self, query: XdbQuery, budget: Budget | None = None
    ) -> list[SectionMatch]:
        check_supports(self.capabilities, query, self.name)
        if query.content is None:  # content-only ⇒ must have content
            raise CapabilityError(
                f"source {self.name!r} answers content searches only"
            )
        self._count_query()
        matches: list[SectionMatch] = []
        for doc_index, (file_name, content) in enumerate(
            sorted(self._documents.items())
        ):
            if budget is not None and not budget.admits(self.name):
                break
            tokens = set(tokenize(content, keep_stopwords=True))
            wanted = [term.lower() for term in query.content.terms]
            if query.content.mode == "any":
                hit = any(term in tokens for term in wanted)
            else:
                # Phrase narrowing is beyond this source; it over-returns
                # conjunctive hits and lets the client refine (the paper's
                # "whatever portions of the query it can process").
                hit = all(term in tokens for term in wanted)
            if hit:
                matches.append(
                    SectionMatch(
                        doc_id=doc_index,
                        file_name=file_name,
                        context=file_name,
                        content=self._snippet(content, wanted),
                        section=None,
                        source=self.name,
                    )
                )
        return matches

    def fetch_document(self, file_name: str) -> str:
        try:
            content = self._documents[file_name]
        except KeyError:
            raise DocumentNotFoundError(
                f"{self.name!r} has no document {file_name!r}"
            ) from None
        self.documents_served += 1
        return content

    def document_names(self) -> list[str]:
        return sorted(self._documents)

    @staticmethod
    def _snippet(content: str, terms: Sequence[str], width: int = 120) -> str:
        lowered = content.lower()
        position = min(
            (lowered.find(term) for term in terms if lowered.find(term) >= 0),
            default=0,
        )
        start = max(0, position - width // 4)
        return " ".join(content[start:start + width].split())


@dataclass(frozen=True)
class Record:
    """One structured record: a key plus named fields."""

    key: str
    fields: tuple[tuple[str, str], ...]

    def as_text(self) -> str:
        return "; ".join(f"{name}: {value}" for name, value in self.fields)


class StructuredSource(InformationSource):
    """A record database (anomaly tracker style).

    Context search maps to the *field name* (``Context=Description``
    returns each record's Description field); content search is keyword
    match across all fields.  Both are native — what the source cannot do
    is phrase search, which the router augments.
    """

    def __init__(self, name: str, records: Sequence[Record] = ()) -> None:
        super().__init__(
            name,
            Capability.CONTENT_SEARCH
            | Capability.CONTEXT_SEARCH
            | Capability.DOCUMENT_FETCH,
        )
        self._records: list[Record] = list(records)

    def add_record(self, record: Record) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def native_search(
        self, query: XdbQuery, budget: Budget | None = None
    ) -> list[SectionMatch]:
        check_supports(self.capabilities, query, self.name)
        self._count_query()
        matches: list[SectionMatch] = []
        for index, record in enumerate(self._records):
            if budget is not None and not budget.admits(self.name):
                break
            sections = self._matching_sections(record, query)
            for context, content in sections:
                matches.append(
                    SectionMatch(
                        doc_id=index,
                        file_name=record.key,
                        context=context,
                        content=content,
                        section=None,
                        source=self.name,
                    )
                )
        return matches

    def _matching_sections(
        self, record: Record, query: XdbQuery
    ) -> list[tuple[str, str]]:
        field_map = {name.lower(): (name, value) for name, value in record.fields}
        candidates: list[tuple[str, str]]
        if query.context is not None:
            candidates = []
            for phrase in query.context.phrases:
                found = field_map.get(phrase.lower())
                if found is not None:
                    candidates.append(found)
        else:
            candidates = [(record.key, record.as_text())]
        if query.content is None:
            return candidates
        wanted = [term.lower() for term in query.content.terms]
        kept = []
        for context, content in candidates:
            # Content scope: the record as a whole (a record is the
            # retrieval unit, like a document).
            tokens = set(tokenize(record.as_text(), keep_stopwords=True))
            if query.content.mode == "any":
                ok = any(term in tokens for term in wanted)
            else:
                ok = all(term in tokens for term in wanted)
            if ok:
                kept.append((context, content))
        return kept

    def fetch_document(self, file_name: str) -> str:
        for record in self._records:
            if record.key == file_name:
                self.documents_served += 1
                lines = [f"# {record.key}"] + [
                    f"## {name}\n{value}" for name, value in record.fields
                ]
                return "\n".join(lines) + "\n"
        raise DocumentNotFoundError(
            f"{self.name!r} has no record {file_name!r}"
        )

    def document_names(self) -> list[str]:
        return [record.key for record in self._records]


@dataclass
class SourceStats:
    """Read-only snapshot used by the federation benchmarks."""

    name: str
    queries_served: int
    documents_served: int

    @classmethod
    def of(cls, source: InformationSource) -> "SourceStats":
        return cls(source.name, source.queries_served, source.documents_served)
