"""The thin router.

"Middleware requirements are reduced to needing just a thin router
capability across the various information sources." (§2.1.5)

The router is deliberately dumb: given a query naming a databank, it fans
the query out to every declared source, augmenting per source capability,
and concatenates the answers in stable (source, document, context) order.
There is no global schema, no view unfolding, no reconciliation — the
paper's whole point.  What little state it has is bookkeeping for the
FIG8 benchmark (per-source match counts and augmentation reports).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.federation.augment import AugmentationReport, execute_augmented, plan
from repro.federation.databank import Databank, DatabankRegistry
from repro.query.ast import XdbQuery
from repro.query.language import format_query, parse_query
from repro.query.results import ResultSet, SectionMatch


@dataclass
class RoutingReport:
    """What one fan-out did, per source."""

    databank: str = ""
    source_matches: dict[str, int] = field(default_factory=dict)
    augmented_sources: list[str] = field(default_factory=list)
    augmentation: dict[str, AugmentationReport] = field(default_factory=dict)

    @property
    def fan_out(self) -> int:
        return len(self.source_matches)


class Router:
    """Fans XDB queries out across a databank's sources."""

    def __init__(
        self,
        registry: DatabankRegistry | None = None,
        aliases: "ContextAliasRegistry | None" = None,
    ) -> None:
        from repro.federation.aliases import ContextAliasRegistry

        # Explicit None tests: an empty registry is falsy (len == 0) but
        # must still be honoured — the caller will fill it later.
        self.registry = registry if registry is not None else DatabankRegistry()
        self.aliases = aliases if aliases is not None else ContextAliasRegistry()
        self.last_report: RoutingReport | None = None

    # -- administration (delegates kept for a one-stop facade) -----------------

    def create_databank(self, name: str, description: str = "") -> Databank:
        return self.registry.create(name, description)

    # -- query execution ----------------------------------------------------------

    def execute(self, query: XdbQuery | str, databank: str | None = None) -> ResultSet:
        """Run ``query`` against ``databank`` (or the query's own databank)."""
        if isinstance(query, str):
            query = parse_query(query)
        query = self.aliases.rewrite(query)
        target = databank or query.databank
        if target is None:
            from repro.errors import FederationError

            raise FederationError("query names no databank and none was given")
        bank = self.registry.get(target)
        report = RoutingReport(databank=bank.name)
        matches: list[SectionMatch] = []
        for source in bank.sources:
            source_plan = plan(query, source)
            augmentation = AugmentationReport()
            source_matches = execute_augmented(query, source, augmentation)
            report.source_matches[source.name] = len(source_matches)
            if not source_plan.fully_native:
                report.augmented_sources.append(source.name)
                report.augmentation[source.name] = augmentation
            matches.extend(source_matches)
        matches.sort(key=lambda match: (match.source, match.file_name, match.context))
        self.last_report = report
        result = ResultSet(format_query(query))
        result.extend(matches)
        return result.limited(query.limit)
