"""The thin router.

"Middleware requirements are reduced to needing just a thin router
capability across the various information sources." (§2.1.5)

The router is deliberately dumb: given a query naming a databank, it fans
the query out to every declared source, augmenting per source capability,
and concatenates the answers in stable (source, document, context) order.
There is no global schema, no view unfolding, no reconciliation — the
paper's whole point.

It is, however, *fault-tolerant*: a failing source is isolated, retried
under the optional :class:`~repro.resilience.policy.ResiliencePolicy`,
skipped outright while its circuit breaker is open, and reported in the
:class:`RoutingReport` — the answer degrades to a partial
:class:`ResultSet` instead of dying on the first exception.  Only a
total loss (every source failed or skipped) raises
:class:`~repro.errors.AllSourcesFailedError`.  ``last_report`` is set
before any raise, so post-mortems always see what happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.errors import (
    AllSourcesFailedError,
    FederationError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
)
from repro.federation.augment import AugmentationReport, execute_augmented, plan
from repro.federation.databank import Databank, DatabankRegistry
from repro.federation.sources import InformationSource
from repro.query.ast import XdbQuery
from repro.query.language import format_query, parse_query
from repro.query.results import ResultSet, SectionMatch
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN
from repro.resilience.deadline import Budget, Deadline
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.retry import RetryStats, call_with_retry
from repro.sgml.dom import Document, Element


@dataclass
class RoutingReport:
    """What one fan-out did, per source — including what went wrong."""

    databank: str = ""
    source_matches: dict[str, int] = field(default_factory=dict)
    augmented_sources: list[str] = field(default_factory=list)
    augmentation: dict[str, AugmentationReport] = field(default_factory=dict)
    #: source name -> error summary, for sources that failed (after retries).
    failed_sources: dict[str, str] = field(default_factory=dict)
    #: sources not contacted because their circuit breaker was open.
    skipped_sources: list[str] = field(default_factory=list)
    #: sources not contacted because the limit was already satisfied.
    limit_skipped_sources: list[str] = field(default_factory=list)
    #: sources not contacted because the request's deadline had already
    #: expired when the fan-out reached them.
    deadline_skipped_sources: list[str] = field(default_factory=list)
    #: source name -> retry count, for sources that needed retries.
    retries: dict[str, int] = field(default_factory=dict)

    @property
    def fan_out(self) -> int:
        """Sources this query was routed at (answered, failed, or skipped)."""
        return (
            len(self.source_matches)
            + len(self.failed_sources)
            + len(self.skipped_sources)
        )

    @property
    def degraded(self) -> bool:
        """Did any source fail to contribute?"""
        return bool(
            self.failed_sources
            or self.skipped_sources
            or self.deadline_skipped_sources
        )

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    def error_summary(self) -> dict[str, str]:
        """Per-source trouble, failed and skipped alike (for results)."""
        summary = dict(self.failed_sources)
        for name in self.skipped_sources:
            summary[name] = "skipped: circuit open"
        for name in self.deadline_skipped_sources:
            summary[name] = "skipped: deadline expired"
        return summary


#: Breaker states as gauge values: closed=0, half-open=1, open=2 — the
#: conventional "bigger is worse" encoding, so dashboards can alert on
#: ``repro_federation_breaker_state > 0``.
_BREAKER_STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


def _note_breaker(name: str, breaker) -> None:
    obs.set_gauge(
        "repro_federation_breaker_state",
        _BREAKER_STATE_VALUES.get(breaker.state, 2),
        source=name,
    )


class Router:
    """Fans XDB queries out across a databank's sources."""

    def __init__(
        self,
        registry: DatabankRegistry | None = None,
        aliases: "ContextAliasRegistry | None" = None,
        resilience: ResiliencePolicy | None = None,
    ) -> None:
        from repro.federation.aliases import ContextAliasRegistry

        # Explicit None tests: an empty registry is falsy (len == 0) but
        # must still be honoured — the caller will fill it later.
        self.registry = registry if registry is not None else DatabankRegistry()
        self.aliases = aliases if aliases is not None else ContextAliasRegistry()
        self.resilience = resilience
        self.last_report: RoutingReport | None = None

    # -- administration (delegates kept for a one-stop facade) -----------------

    def create_databank(self, name: str, description: str = "") -> Databank:
        return self.registry.create(name, description)

    # -- query execution ----------------------------------------------------------

    def execute(
        self,
        query: XdbQuery | str,
        databank: str | None = None,
        budget: "Budget | Deadline | None" = None,
    ) -> ResultSet:
        """Run ``query`` against ``databank`` (or the query's own databank).

        With ``budget`` each source receives the *remaining* request
        deadline (the budget carries an absolute expiry on the shared
        clock, so whatever one source spends is gone for the next).
        When the deadline expires mid-fan-out, the uncontacted sources
        are folded into the ``<partial>`` envelope as
        ``skipped: deadline expired`` — unless the budget forbids
        partial answers, in which case the fan-out raises
        :class:`~repro.errors.QueryTimeoutError`.
        """
        if isinstance(query, str):
            query = parse_query(query)
        query = self.aliases.rewrite(query)
        if isinstance(budget, Deadline):
            budget = Budget(deadline=budget)
        if budget is not None and query.partial_ok:
            budget.partial_ok = True
        target = databank or query.databank
        if target is None:
            self.last_report = RoutingReport()
            raise FederationError("query names no databank and none was given")
        report = RoutingReport(databank=target)
        self.last_report = report
        bank = self.registry.get(target)
        matches: list[SectionMatch] = []
        for position, source in enumerate(bank.sources):
            remaining = bank.sources[position:]
            if budget is not None and not budget.admits("router fan-out"):
                report.deadline_skipped_sources = [
                    skipped.name for skipped in remaining
                ]
                obs.inc(
                    "repro_federation_deadline_skips_total", len(remaining)
                )
                break
            if self._limit_satisfied(query.limit, matches, remaining):
                report.limit_skipped_sources = [
                    skipped.name for skipped in remaining
                ]
                break
            matches.extend(
                self._route_to_source(query, source, report, budget)
            )
        if (
            bank.sources
            and not report.source_matches
            and not report.deadline_skipped_sources
        ):
            # A deadline that expired before any source answered is a
            # timeout (handled above), not a source outage: with
            # Partial=1 the honest answer is an empty partial result.
            raise AllSourcesFailedError(
                f"databank {target!r}: no source answered "
                f"(failed: {sorted(report.failed_sources)}, "
                f"skipped: {report.skipped_sources})"
            )
        matches.sort(key=lambda match: (match.source, match.file_name, match.context))
        result = ResultSet(
            format_query(query),
            partial=report.degraded,
            source_errors=report.error_summary(),
            deadline_expired=bool(
                report.deadline_skipped_sources
                or (budget is not None and budget.timed_out)
            ),
        )
        result.extend(matches)
        return result.limited(query.limit)

    def explain(
        self, query: XdbQuery | str, databank: str | None = None
    ) -> Document:
        """Run the fan-out and render the federated plan with row counts.

        The tree has one ``<source>`` element per databank source, in
        routing order, with the observed match count (``rows``), its
        status (answered / failed / skipped / not-contacted when limit
        pushdown stopped the fan-out early) and whether augmentation was
        needed — plus a final ``<limit>`` operator with the row count
        actually returned.
        """
        if isinstance(query, str):
            query = parse_query(query)
        result = self.execute(query, databank)
        report = self.last_report
        if report is None:  # execute always sets it; belt and braces
            raise FederationError("routing produced no report to explain")
        plan_element = Element(
            "plan",
            {
                "query": format_query(query),
                "kind": "federated",
                "databank": report.databank,
            },
        )
        for name in sorted(report.source_matches):
            attributes = {
                "name": name,
                "rows": str(report.source_matches[name]),
                "status": "answered",
            }
            if name in report.augmented_sources:
                attributes["augmented"] = "true"
            plan_element.append(Element("source", attributes))
        for name in sorted(report.failed_sources):
            failed = Element("source", {"name": name, "status": "failed"})
            failed.append_text(report.failed_sources[name])
            plan_element.append(failed)
        for name in report.skipped_sources:
            plan_element.append(
                Element("source", {"name": name, "status": "skipped"})
            )
        for name in report.deadline_skipped_sources:
            plan_element.append(
                Element("source", {"name": name, "status": "deadline-skipped"})
            )
        for name in report.limit_skipped_sources:
            plan_element.append(
                Element("source", {"name": name, "status": "not-contacted"})
            )
        limit_element = Element(
            "operator", {"name": "limit", "rows": str(len(result))}
        )
        if query.limit is not None:
            limit_element.attributes["detail"] = str(query.limit)
        plan_element.append(limit_element)
        return Document(plan_element, name="plan.xml")

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _limit_satisfied(
        limit: int | None,
        matches: list[SectionMatch],
        remaining: list[InformationSource],
    ) -> bool:
        """Can the remaining sources be skipped without changing the answer?

        Sound only when every collected match ranks uniformly (score
        1.0, which the source adapters normalize to): the final order is
        then the stable (source, document, context) sort, so once
        ``limit`` matches come from sources whose names sort *before*
        every remaining source's name, nothing a remaining source could
        return displaces them.
        """
        if limit is None or not remaining:
            return False
        floor = min(source.name for source in remaining)
        guaranteed = 0
        for match in matches:
            if match.score != 1.0:
                return False  # ranked scores: cannot reason positionally
            if match.source < floor:
                guaranteed += 1
        return guaranteed >= limit

    def _route_to_source(
        self,
        query: XdbQuery,
        source: InformationSource,
        report: RoutingReport,
        budget: Budget | None = None,
    ) -> list[SectionMatch]:
        """One source's contribution; failures land in ``report``, not up."""
        policy = self.resilience
        breaker = (
            policy.breakers.breaker(source.name) if policy is not None else None
        )
        if breaker is not None and not breaker.allow():
            report.skipped_sources.append(source.name)
            obs.inc(
                "repro_federation_source_requests_total",
                source=source.name, status="skipped",
            )
            _note_breaker(source.name, breaker)
            return []

        def attempt() -> tuple[bool, AugmentationReport, list[SectionMatch]]:
            # Fresh augmentation accounting per attempt: a retried source
            # must not double-count the work of its failed tries.
            augmentation = AugmentationReport()
            source_plan = plan(query, source)
            found = execute_augmented(query, source, augmentation, budget)
            return source_plan.fully_native, augmentation, found

        stats = RetryStats()
        started = policy.clock.now() if policy is not None else None
        try:
            if policy is not None:
                native, augmentation, found = call_with_retry(
                    attempt, policy.retry, policy.clock, policy.rng, stats
                )
            else:
                native, augmentation, found = attempt()
        except (QueryTimeoutError, QueryCancelledError):
            # The *request* ran out of time (or its client left) — that
            # is not a source failure to degrade around; it propagates
            # so the HTTP layer can answer 504 (or 499).
            raise
        except ReproError as error:
            if stats.retries:
                report.retries[source.name] = stats.retries
                obs.inc(
                    "repro_federation_retries_total", stats.retries,
                    source=source.name,
                )
            report.failed_sources[source.name] = (
                f"{type(error).__name__}: {error}"
            )
            obs.inc(
                "repro_federation_source_requests_total",
                source=source.name, status="failed",
            )
            if breaker is not None:
                breaker.record_failure()
                _note_breaker(source.name, breaker)
            self._note_latency(source.name, started)
            return []
        if stats.retries:
            report.retries[source.name] = stats.retries
            obs.inc(
                "repro_federation_retries_total", stats.retries,
                source=source.name,
            )
        if breaker is not None:
            breaker.record_success()
            _note_breaker(source.name, breaker)
        self._note_latency(source.name, started)
        report.source_matches[source.name] = len(found)
        obs.inc(
            "repro_federation_source_requests_total",
            source=source.name, status="answered",
        )
        if not native:
            report.augmented_sources.append(source.name)
            report.augmentation[source.name] = augmentation
        return found

    def _note_latency(self, name: str, started: int | None) -> None:
        """Record per-source latency in resilience-clock ticks.

        Only meaningful under a policy: the logical clock advances across
        retry backoffs (and injected faults), so the distribution shows
        which sources burn time before answering or giving up.
        """
        if started is not None and self.resilience is not None:
            obs.observe(
                "repro_federation_source_latency_ticks",
                self.resilience.clock.now() - started,
                source=name,
            )


class ReadBalancer:
    """Round-robin read fan-out over *replicas of one logical store*.

    Unlike the :class:`Router`, which merges answers from sources that
    hold *different* data, the balancer picks **one** source per query —
    every candidate is an in-sync replica holding identical state, so
    the first that answers is the whole answer.  A rotating cursor
    spreads queries across replicas; a failing replica is skipped and
    the next one tried (failover), and only a total loss raises
    :class:`~repro.errors.AllSourcesFailedError`.
    """

    def __init__(self) -> None:
        self._cursor = 0
        #: replica name that served the most recent query (post-mortems).
        self.last_served_by: str | None = None

    def execute(
        self,
        query: "XdbQuery | str",
        sources: list[InformationSource],
    ) -> tuple[list[SectionMatch], str]:
        """Answer ``query`` from one replica; returns (matches, name)."""
        if isinstance(query, str):
            query = parse_query(query)
        if not sources:
            raise AllSourcesFailedError(
                "no source answered: no in-sync replica is available"
            )
        start = self._cursor % len(sources)
        self._cursor += 1
        order = sources[start:] + sources[:start]
        failures: dict[str, str] = {}
        for source in order:
            try:
                found = source.native_search(query)
            except ReproError as error:
                failures[source.name] = f"{type(error).__name__}: {error}"
                obs.inc(
                    "repro_federation_replica_reads_total",
                    source=source.name, status="failed",
                )
                continue
            obs.inc(
                "repro_federation_replica_reads_total",
                source=source.name, status="answered",
            )
            self.last_served_by = source.name
            return found, source.name
        raise AllSourcesFailedError(
            f"no source answered: all {len(order)} replicas failed "
            f"({failures})"
        )
