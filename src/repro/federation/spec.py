"""Declarative databank specifications.

"This is done through a simple declarative process where an administrator
creates a 'Databank' for an application."  This module gives that process
a concrete artifact: a small text format an administrator writes, which
*is* the entire integration spec for an application::

    # engineering.databank
    databank engineering "Everything about engines"
      source ames
      source llis
      source tracker
    alias Budget = Budget | Cost Details | Funding
    alias Description = Description | Summary

* ``databank NAME ["description"]`` opens a databank; the indented
  ``source NAME`` lines that follow declare its sources.
* ``source`` names resolve through a caller-supplied catalog of
  constructed :class:`~repro.federation.sources.InformationSource`
  objects — the spec stays declarative, wiring stays in code.
* ``alias NAME = P1 | P2 | ...`` defines a context alias.
* ``#`` comments and blank lines are ignored.

:func:`load_spec` applies a spec to a router and returns accounting (how
many lines of spec bought how much integration), which feeds the FIG1
experiment's claim that this file is *all* the per-application IT cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import FederationError
from repro.federation.router import Router
from repro.federation.sources import InformationSource


@dataclass
class SpecReport:
    """What one spec load created."""

    databanks: list[str] = field(default_factory=list)
    sources_bound: int = 0
    aliases_defined: int = 0
    spec_lines: int = 0  # meaningful (non-blank, non-comment) lines

    @property
    def artifact_count(self) -> int:
        return len(self.databanks) + self.sources_bound + self.aliases_defined


def load_spec(
    text: str,
    router: Router,
    catalog: Mapping[str, InformationSource],
) -> SpecReport:
    """Parse ``text`` and apply it to ``router``; returns the report."""
    report = SpecReport()
    current_databank = None
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        report.spec_lines += 1
        indented = line[:1].isspace()
        tokens = line.strip()
        if tokens.startswith("databank"):
            name, description = _parse_databank_line(tokens, line_no)
            current_databank = router.create_databank(name, description)
            report.databanks.append(name)
        elif tokens.startswith("source"):
            if not indented or current_databank is None:
                raise FederationError(
                    f"spec line {line_no}: 'source' must be indented under "
                    "a databank"
                )
            source_name = tokens[len("source"):].strip()
            if not source_name:
                raise FederationError(
                    f"spec line {line_no}: source needs a name"
                )
            source = catalog.get(source_name)
            if source is None:
                raise FederationError(
                    f"spec line {line_no}: unknown source {source_name!r} "
                    f"(catalog has: {sorted(catalog)})"
                )
            current_databank.add_source(source)
            report.sources_bound += 1
        elif tokens.startswith("alias"):
            name, phrases = _parse_alias_line(tokens, line_no)
            router.aliases.define(name, *phrases)
            report.aliases_defined += 1
        else:
            raise FederationError(
                f"spec line {line_no}: unrecognised directive {tokens!r}"
            )
    return report


def _parse_databank_line(tokens: str, line_no: int) -> tuple[str, str]:
    rest = tokens[len("databank"):].strip()
    if not rest:
        raise FederationError(f"spec line {line_no}: databank needs a name")
    if '"' in rest:
        name, _, quoted = rest.partition('"')
        name = name.strip()
        description = quoted.rstrip()
        if not description.endswith('"'):
            raise FederationError(
                f"spec line {line_no}: unterminated databank description"
            )
        description = description[:-1]
    else:
        name, description = rest, ""
    if not name or " " in name:
        raise FederationError(
            f"spec line {line_no}: databank name must be a single word"
        )
    return name, description


def _parse_alias_line(tokens: str, line_no: int) -> tuple[str, list[str]]:
    rest = tokens[len("alias"):].strip()
    if "=" not in rest:
        raise FederationError(
            f"spec line {line_no}: alias needs 'NAME = a | b' form"
        )
    name, _, expansion = rest.partition("=")
    phrases = [phrase.strip() for phrase in expansion.split("|")]
    phrases = [phrase for phrase in phrases if phrase]
    if not name.strip() or not phrases:
        raise FederationError(
            f"spec line {line_no}: alias needs a name and expansion phrases"
        )
    return name.strip(), phrases


def dump_spec(router: Router) -> str:
    """Render a router's databanks and aliases back into spec text.

    ``load_spec(dump_spec(router), fresh_router, catalog)`` reproduces the
    same integration given the same source catalog — the spec format is
    the complete integration state.
    """
    lines: list[str] = []
    for name in router.registry.names():
        databank = router.registry.get(name)
        if databank.description:
            lines.append(f'databank {name} "{databank.description}"')
        else:
            lines.append(f"databank {name}")
        for source_name in databank.source_names():
            lines.append(f"  source {source_name}")
    for alias_name in router.aliases.names():
        expansion = " | ".join(
            router.aliases._aliases[alias_name]  # noqa: SLF001 - same module family
        )
        lines.append(f"alias {alias_name} = {expansion}")
    return "\n".join(lines) + ("\n" if lines else "")
