"""A working GAV mediator — the heavy-middleware comparison system."""

from repro.baselines.gav.mappings import FilterPredicate, GavMapping, SourceQuery
from repro.baselines.gav.mediator import (
    Mediator,
    RegisteredSource,
    helper_source_query,
)
from repro.baselines.gav.schema import GlobalSchema, RelationSchema, SourceSchema

__all__ = [
    "FilterPredicate",
    "GavMapping",
    "GlobalSchema",
    "Mediator",
    "RegisteredSource",
    "RelationSchema",
    "SourceQuery",
    "SourceSchema",
    "helper_source_query",
]
