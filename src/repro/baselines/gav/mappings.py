"""GAV view definitions (Global-as-View mappings).

A global relation is defined as a **union of conjunctive queries over
source relations**.  Each :class:`SourceQuery` selects rows from one
source relation, optionally filters them, and renames attributes into the
global vocabulary — exactly the machinery behind the paper's "Top
Employees of NASA" example:

    Top Employees = σ(rating='excellent') Ames.Employees
                  ∪ σ(score<=2)          Johnson.Personnel
                  ∪ σ(rating>='very good') Kennedy.Employees

Filters are restricted to attribute/constant comparisons, which keeps the
mapping language declarative, printable and countable — every mapping is
an engineering artifact the FIG1 experiment tallies.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import MappingError

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class FilterPredicate:
    """``attribute op constant`` over a source relation's rows."""

    attribute: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise MappingError(f"unknown filter operator {self.op!r}")
        object.__setattr__(self, "attribute", self.attribute.upper())

    def accepts(self, row: Mapping[str, Any]) -> bool:
        actual = row.get(self.attribute)
        if actual is None:
            return False
        try:
            return _OPS[self.op](actual, self.value)
        except TypeError:
            return False

    def describe(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


@dataclass(frozen=True)
class SourceQuery:
    """One disjunct: select-project-rename over one source relation.

    ``projection`` maps *global attribute -> source attribute*.
    """

    source_name: str
    relation_name: str
    projection: tuple[tuple[str, str], ...]
    filters: tuple[FilterPredicate, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "relation_name", self.relation_name.upper())
        normalized = tuple(
            (global_attr.upper(), source_attr.upper())
            for global_attr, source_attr in self.projection
        )
        if not normalized:
            raise MappingError("a source query must project at least one attribute")
        object.__setattr__(self, "projection", normalized)

    def apply(self, rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
        output: list[dict[str, Any]] = []
        for row in rows:
            if all(predicate.accepts(row) for predicate in self.filters):
                output.append(
                    {
                        global_attr: row.get(source_attr)
                        for global_attr, source_attr in self.projection
                    }
                )
        return output

    def describe(self) -> str:
        parts = [f"{self.source_name}.{self.relation_name}"]
        if self.filters:
            parts.append(
                "WHERE " + " AND ".join(f.describe() for f in self.filters)
            )
        renames = ", ".join(
            f"{src}->{dst}" for dst, src in self.projection if src != dst
        )
        if renames:
            parts.append(f"RENAME {renames}")
        return " ".join(parts)


@dataclass
class GavMapping:
    """A global relation's definition: a union of source queries."""

    global_relation: str
    disjuncts: list[SourceQuery] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.global_relation = self.global_relation.upper()

    def add(self, disjunct: SourceQuery) -> None:
        self.disjuncts.append(disjunct)

    @property
    def artifact_count(self) -> int:
        """One artifact per disjunct (each is a hand-written mapping rule)."""
        return len(self.disjuncts)

    def describe(self) -> str:
        body = "\n  UNION ".join(d.describe() for d in self.disjuncts)
        return f"{self.global_relation} :=\n  {body}"
