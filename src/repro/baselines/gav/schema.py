"""Schemas for the GAV-mediator baseline.

The heavy-weight approach the paper contrasts with: "the approach in [MIX]
and [Nimble] absolutely requires us to formally define schemas (source
views) for the three information sources, define a virtual 'Top Employees'
view and specify the relationships between the virtual and source views."

A :class:`RelationSchema` is a named attribute list; a
:class:`SourceSchema` is a named set of relations exported by one source;
a :class:`GlobalSchema` is the mediated vocabulary applications query.
Every one of these is an *engineering artifact* — the registry counts them
for the FIG1 cost experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MappingError


@dataclass(frozen=True)
class RelationSchema:
    """One relation: a name and its attribute names (ordered)."""

    name: str
    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.upper())
        attrs = tuple(attribute.upper() for attribute in self.attributes)
        if len(set(attrs)) != len(attrs):
            raise MappingError(f"duplicate attribute in relation {self.name}")
        if not attrs:
            raise MappingError(f"relation {self.name} has no attributes")
        object.__setattr__(self, "attributes", attrs)

    def has_attribute(self, name: str) -> bool:
        return name.upper() in self.attributes


@dataclass
class SourceSchema:
    """The relations one source exports (its *source view*)."""

    source_name: str
    relations: dict[str, RelationSchema] = field(default_factory=dict)

    def add_relation(self, relation: RelationSchema) -> None:
        if relation.name in self.relations:
            raise MappingError(
                f"source {self.source_name!r} already exports {relation.name}"
            )
        self.relations[relation.name] = relation

    def relation(self, name: str) -> RelationSchema:
        try:
            return self.relations[name.upper()]
        except KeyError:
            raise MappingError(
                f"source {self.source_name!r} exports no relation "
                f"{name.upper()!r}"
            ) from None

    @property
    def artifact_count(self) -> int:
        """Engineering artifacts: the schema itself + one per relation."""
        return 1 + len(self.relations)


@dataclass
class GlobalSchema:
    """The mediated (virtual) vocabulary."""

    relations: dict[str, RelationSchema] = field(default_factory=dict)

    def add_relation(self, relation: RelationSchema) -> None:
        if relation.name in self.relations:
            raise MappingError(f"global relation {relation.name} already defined")
        self.relations[relation.name] = relation

    def relation(self, name: str) -> RelationSchema:
        try:
            return self.relations[name.upper()]
        except KeyError:
            raise MappingError(
                f"no global relation {name.upper()!r}"
            ) from None

    @property
    def artifact_count(self) -> int:
        return len(self.relations)
