"""The GAV mediator: query unfolding over registered sources.

This is a working miniature of the MIX/Tukwila-family systems the paper
compares against.  An application queries the *global* schema; the
mediator unfolds the query through the GAV mappings, ships each disjunct
to its source, renames/filters, unions, and applies the residual global
filters.

The point of building it is the ledger: :attr:`engineering_artifacts`
counts the source schemas, global relations and mapping rules that had to
be written — the per-source cost NETMARK's one-line databank entries
avoid.  Adding source k+1 to an integration requires (schema + relations +
≥1 mapping rule) here versus one ``add_source`` line there; FIG1 plots
exactly that difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.baselines.gav.mappings import FilterPredicate, GavMapping, SourceQuery
from repro.baselines.gav.schema import GlobalSchema, RelationSchema, SourceSchema
from repro.errors import MappingError, MediatorError

#: A source-relation extension: a callable returning that relation's rows.
RelationExtension = Callable[[], list[dict[str, Any]]]


@dataclass
class RegisteredSource:
    """A source the mediator can ship sub-queries to."""

    schema: SourceSchema
    extensions: dict[str, RelationExtension] = field(default_factory=dict)

    def rows(self, relation_name: str) -> list[dict[str, Any]]:
        relation_name = relation_name.upper()
        self.schema.relation(relation_name)  # validates it exists
        extension = self.extensions.get(relation_name)
        if extension is None:
            raise MediatorError(
                f"source {self.schema.source_name!r} has no data bound for "
                f"relation {relation_name}"
            )
        return [
            {key.upper(): value for key, value in row.items()}
            for row in extension()
        ]


class Mediator:
    """A Global-as-View integration system."""

    def __init__(self) -> None:
        self.global_schema = GlobalSchema()
        self._sources: dict[str, RegisteredSource] = {}
        self._mappings: dict[str, GavMapping] = {}

    # -- administration (the expensive part) ---------------------------------

    def register_source(self, schema: SourceSchema) -> RegisteredSource:
        if schema.source_name in self._sources:
            raise MediatorError(
                f"source {schema.source_name!r} already registered"
            )
        registered = RegisteredSource(schema)
        self._sources[schema.source_name] = registered
        return registered

    def bind_extension(
        self, source_name: str, relation_name: str, extension: RelationExtension
    ) -> None:
        source = self._require_source(source_name)
        source.schema.relation(relation_name)
        source.extensions[relation_name.upper()] = extension

    def define_global_relation(self, relation: RelationSchema) -> None:
        self.global_schema.add_relation(relation)

    def define_mapping(self, mapping: GavMapping) -> None:
        """Install a view definition (validated against both schemas)."""
        global_relation = self.global_schema.relation(mapping.global_relation)
        for disjunct in mapping.disjuncts:
            source = self._require_source(disjunct.source_name)
            relation = source.schema.relation(disjunct.relation_name)
            for global_attr, source_attr in disjunct.projection:
                if not global_relation.has_attribute(global_attr):
                    raise MappingError(
                        f"mapping for {mapping.global_relation} projects "
                        f"unknown global attribute {global_attr}"
                    )
                if not relation.has_attribute(source_attr):
                    raise MappingError(
                        f"mapping disjunct over {disjunct.relation_name} "
                        f"references unknown attribute {source_attr}"
                    )
            for predicate in disjunct.filters:
                if not relation.has_attribute(predicate.attribute):
                    raise MappingError(
                        f"filter references unknown attribute "
                        f"{predicate.attribute} of {disjunct.relation_name}"
                    )
        if mapping.global_relation in self._mappings:
            raise MediatorError(
                f"mapping for {mapping.global_relation} already defined"
            )
        self._mappings[mapping.global_relation] = mapping

    # -- querying (the easy part, once the artifacts exist) --------------------

    def query(
        self,
        global_relation: str,
        filters: tuple[FilterPredicate, ...] = (),
    ) -> list[dict[str, Any]]:
        """Evaluate a selection over a global relation by GAV unfolding."""
        global_relation = global_relation.upper()
        self.global_schema.relation(global_relation)
        mapping = self._mappings.get(global_relation)
        if mapping is None:
            raise MediatorError(
                f"global relation {global_relation} has no mapping"
            )
        output: list[dict[str, Any]] = []
        for disjunct in mapping.disjuncts:
            source = self._require_source(disjunct.source_name)
            rows = source.rows(disjunct.relation_name)
            for row in disjunct.apply(rows):
                if all(predicate.accepts(row) for predicate in filters):
                    output.append(row)
        return output

    # -- the ledger -----------------------------------------------------------------

    @property
    def engineering_artifacts(self) -> int:
        """Schemas + global relations + mapping rules written by hand."""
        source_artifacts = sum(
            source.schema.artifact_count for source in self._sources.values()
        )
        mapping_artifacts = sum(
            mapping.artifact_count for mapping in self._mappings.values()
        )
        return (
            source_artifacts
            + self.global_schema.artifact_count
            + mapping_artifacts
        )

    @property
    def source_count(self) -> int:
        return len(self._sources)

    def describe(self) -> str:
        """Human-readable inventory of everything an admin had to write."""
        lines = [f"sources: {sorted(self._sources)}"]
        lines.append(f"global relations: {sorted(self.global_schema.relations)}")
        for mapping in self._mappings.values():
            lines.append(mapping.describe())
        return "\n".join(lines)

    def _require_source(self, source_name: str) -> RegisteredSource:
        try:
            return self._sources[source_name]
        except KeyError:
            raise MediatorError(f"unknown source {source_name!r}") from None


def helper_source_query(
    source: str,
    relation: str,
    projection: dict[str, str],
    filters: tuple[FilterPredicate, ...] = (),
) -> SourceQuery:
    """Ergonomic constructor used by examples and benchmarks."""
    return SourceQuery(
        source_name=source,
        relation_name=relation,
        projection=tuple(projection.items()),
        filters=filters,
    )
