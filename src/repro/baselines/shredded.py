"""Schema-dependent XML storage baseline (relational shredding).

The comparison point for NETMARK's schema-less scheme: "Approaches such as
[Shanmugasundaram et al.] define different relations for different XML
element types" — the structure of the database depends on the structure of
the documents stored.

:class:`ShreddedXmlStore` implements that approach over the same ORDBMS
substrate: for every *distinct element tag* it creates a dedicated table
``ELEM_<TAG>`` (plus a shared ``SHRED_TEXT`` table for character data).
Storing a document whose tag set introduces new element types issues new
DDL — the cost the FIG5 experiment measures, since NETMARK's table count
stays at two no matter what arrives.

Functionally the store is equivalent where it matters for comparison:
documents round-trip, and a heading search (`find_sections`) exists so the
benchmarks can run the same workload against both stores.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import DocumentNotFoundError
from repro.ordbms import (
    CLOB,
    INTEGER,
    VARCHAR,
    Column,
    Database,
    TableSchema,
)
from repro.sgml.dom import Document, Element, Node, Text

_TAG_SAFE_RE = re.compile(r"[^A-Z0-9]")


def table_name_for(tag: str) -> str:
    """Relation name for one element type."""
    return "ELEM_" + _TAG_SAFE_RE.sub("_", tag.upper())


TEXT_TABLE = "SHRED_TEXT"
DOC_TABLE = "SHRED_DOC"


@dataclass
class ShredResult:
    doc_id: int
    node_count: int
    new_tables: int  # DDL issued by this load


class ShreddedXmlStore:
    """Table-per-element-type XML storage (the schema-centric baseline)."""

    def __init__(self, database: Database | None = None) -> None:
        self.database = database or Database()
        self._next_doc_id = 1
        self._next_node_id = 1
        self.database.create_table(
            TableSchema(
                DOC_TABLE,
                (
                    Column("DOC_ID", INTEGER, nullable=False),
                    Column("FILE_NAME", VARCHAR, nullable=False),
                    Column("ROOT_TAG", VARCHAR, nullable=False),
                    Column("ROOT_ID", INTEGER, nullable=False),
                ),
                primary_key="DOC_ID",
            )
        )
        self.database.create_table(
            TableSchema(
                TEXT_TABLE,
                (
                    Column("NODE_ID", INTEGER, nullable=False),
                    Column("DOC_ID", INTEGER, nullable=False),
                    Column("PARENT_ID", INTEGER),
                    Column("ORDINAL", INTEGER, nullable=False),
                    Column("DATA", CLOB),
                ),
                primary_key="NODE_ID",
            )
        ).create_index("PARENT_ID")

    # -- storage ---------------------------------------------------------------

    def store_document(self, document: Document) -> ShredResult:
        doc_id = self._next_doc_id
        self._next_doc_id += 1
        ddl_before = self.database.catalog.ddl_statements
        root_id, count = self._insert_element(document.root, doc_id, None, 0)
        self.database.insert(
            DOC_TABLE,
            {
                "DOC_ID": doc_id,
                "FILE_NAME": document.name or f"document-{doc_id}",
                "ROOT_TAG": document.root.tag,
                "ROOT_ID": root_id,
            },
        )
        ddl_after = self.database.catalog.ddl_statements
        return ShredResult(doc_id, count, ddl_after - ddl_before)

    def _ensure_element_table(self, tag: str) -> str:
        name = table_name_for(tag)
        if not self.database.catalog.has_table(name):
            table = self.database.create_table(
                TableSchema(
                    name,
                    (
                        Column("NODE_ID", INTEGER, nullable=False),
                        Column("DOC_ID", INTEGER, nullable=False),
                        Column("PARENT_TAG", VARCHAR),
                        Column("PARENT_ID", INTEGER),
                        Column("ORDINAL", INTEGER, nullable=False),
                        Column("ATTRS", CLOB),
                    ),
                    primary_key="NODE_ID",
                )
            )
            table.create_index("PARENT_ID")
        return name

    def _insert_element(
        self, element: Element, doc_id: int, parent_id: int | None, ordinal: int
    ) -> tuple[int, int]:
        from repro.store.schema import encode_attributes

        node_id = self._next_node_id
        self._next_node_id += 1
        table = self._ensure_element_table(element.tag)
        parent_tag = element.parent.tag if element.parent is not None else None
        self.database.insert(
            table,
            {
                "NODE_ID": node_id,
                "DOC_ID": doc_id,
                "PARENT_TAG": parent_tag,
                "PARENT_ID": parent_id,
                "ORDINAL": ordinal,
                "ATTRS": encode_attributes(element.attributes),
            },
        )
        count = 1
        for child_ordinal, child in enumerate(element.children):
            if isinstance(child, Text):
                text_id = self._next_node_id
                self._next_node_id += 1
                self.database.insert(
                    TEXT_TABLE,
                    {
                        "NODE_ID": text_id,
                        "DOC_ID": doc_id,
                        "PARENT_ID": node_id,
                        "ORDINAL": child_ordinal,
                        "DATA": child.data,
                    },
                )
                count += 1
            else:
                assert isinstance(child, Element)
                _, child_count = self._insert_element(
                    child, doc_id, node_id, child_ordinal
                )
                count += child_count
        return node_id, count

    # -- inspection -----------------------------------------------------------------

    @property
    def table_count(self) -> int:
        """Total relations — grows with document-type diversity."""
        return len(self.database.catalog)

    @property
    def element_table_count(self) -> int:
        return sum(
            1
            for name in self.database.catalog.table_names()
            if name.startswith("ELEM_")
        )

    # -- retrieval -------------------------------------------------------------------

    def reconstruct(self, doc_id: int) -> Document:
        doc_rows = self.database.table(DOC_TABLE).lookup("DOC_ID", doc_id)
        if not doc_rows:
            raise DocumentNotFoundError(f"no shredded document {doc_id}")
        doc_row = doc_rows[0]
        root = self._rebuild_element(
            doc_row["ROOT_TAG"], doc_row["ROOT_ID"], doc_id
        )
        return Document(root, name=doc_row["FILE_NAME"])

    def _rebuild_element(self, tag: str, node_id: int, doc_id: int) -> Element:
        from repro.store.schema import decode_attributes

        table = self.database.table(table_name_for(tag))
        rows = [row for row in table.lookup("NODE_ID", node_id)]
        attrs = decode_attributes(rows[0]["ATTRS"]) if rows else {}
        element = Element(tag, attrs)
        children: list[tuple[int, Node]] = []
        # Element children may live in *any* element table: scan them all.
        for child_table_name in self.database.catalog.table_names():
            if not child_table_name.startswith("ELEM_"):
                continue
            child_table = self.database.table(child_table_name)
            for row in child_table.lookup("PARENT_ID", node_id):
                if row["DOC_ID"] != doc_id:
                    continue
                child_tag = child_table_name[len("ELEM_"):].lower()
                children.append(
                    (
                        row["ORDINAL"],
                        self._rebuild_element(child_tag, row["NODE_ID"], doc_id),
                    )
                )
        for row in self.database.table(TEXT_TABLE).lookup("PARENT_ID", node_id):
            if row["DOC_ID"] == doc_id:
                children.append((row["ORDINAL"], Text(row["DATA"] or "")))
        for _, child in sorted(children, key=lambda pair: pair[0]):
            element.append(child)
        return element

    def find_sections(self, heading: str) -> list[tuple[int, str]]:
        """(doc_id, section text) for sections titled ``heading``.

        The query must name the context *element type's table* — the
        schema-dependence NETMARK avoids.  Here sections follow the
        canonical converter shape (section/context/content).
        """
        heading = heading.lower()
        results: list[tuple[int, str]] = []
        if not self.database.catalog.has_table(table_name_for("context")):
            return results
        context_table = self.database.table(table_name_for("context"))
        text_table = self.database.table(TEXT_TABLE)
        for context_row in context_table.scan():
            texts = text_table.lookup("PARENT_ID", context_row["NODE_ID"])
            title = " ".join(
                (row["DATA"] or "").strip() for row in sorted(
                    texts, key=lambda row: row["ORDINAL"]
                )
            ).strip()
            if title.lower() != heading:
                continue
            # Content: sibling <content> elements under the same parent.
            doc_id = context_row["DOC_ID"]
            parent_id = context_row["PARENT_ID"]
            content_parts: list[str] = []
            if self.database.catalog.has_table(table_name_for("content")):
                content_table = self.database.table(table_name_for("content"))
                for content_row in content_table.lookup("PARENT_ID", parent_id):
                    if content_row["DOC_ID"] != doc_id:
                        continue
                    for text_row in text_table.lookup(
                        "PARENT_ID", content_row["NODE_ID"]
                    ):
                        data = (text_row["DATA"] or "").strip()
                        if data:
                            content_parts.append(data)
            results.append((doc_id, " ".join(content_parts)))
        return results
