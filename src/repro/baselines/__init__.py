"""Comparison systems: relational shredding storage and a GAV mediator."""

from repro.baselines.gav import (
    FilterPredicate,
    GavMapping,
    GlobalSchema,
    Mediator,
    RelationSchema,
    SourceQuery,
    SourceSchema,
    helper_source_query,
)
from repro.baselines.shredded import ShredResult, ShreddedXmlStore, table_name_for

__all__ = [
    "FilterPredicate",
    "GavMapping",
    "GlobalSchema",
    "Mediator",
    "RelationSchema",
    "ShredResult",
    "ShreddedXmlStore",
    "SourceQuery",
    "SourceSchema",
    "helper_source_query",
    "table_name_for",
]
