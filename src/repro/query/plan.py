"""Query plans: explicit operator trees with lazy cursors.

The engine (:mod:`repro.query.engine`) compiles every XDB query into a
small tree of :class:`PlanNode` operators and then *pulls* matches out of
the root.  Each operator is a lazy cursor — ``rows()`` yields items one
at a time and counts them — so a downstream ``Limit`` stops the whole
pipeline early: no section is walked, no title resolved, no match
materialized beyond what the limit requires.

Operator inventory (leaf → root):

``IndexProbe`` / ``Scan``
    TEXT-row sources: the inverted-index probe of paper §2.1.4, or the
    full-table fallback used by the ABL-IDX ablation.
``Union``
    Order-preserving, ROWID-deduplicating merge of several probes.
``ContextLift`` / ``GoverningLift``
    The upward traversal: heading hits lift to their CONTEXT *ancestor*
    (context search), content hits to their *governing* context
    (content search, which also accumulates INTENSE score boosts and
    collects document-level hits that precede every context).
``Sort``
    Stable (document, node) ordering of lifted context rows.
``DocFilter`` / ``FormatFilter``
    The ``Doc=`` / ``Format=`` narrowing filters.
``Intersect``
    Document-level semijoin: content terms must occur *somewhere* in a
    candidate's document, checked purely against index postings before
    any section walk.  Sound and complete at document granularity (a
    section's text is drawn from the document's own TEXT rows), applied
    only for terms the tokenizer maps to themselves.
``Rank``
    Blocking: tags each candidate with its presentation position, then
    re-orders by descending score (stable).  Downstream ``Limit`` is
    thereby *rank-aware* — with INTENSE-boosted scores it keeps the
    best-scored matches, with uniform scores it degenerates to
    presentation order.
``SectionWalk``
    The downward sibling walk: does the candidate's section (heading
    included) satisfy the content spec?  Document-level candidates pass
    through untested, matching the engine's long-standing behaviour.
``ContentFilter``
    Nodename variant: composes the element and tests its text.
``Limit``
    Stops pulling after N rows.
``Present``
    Restores presentation order after ``Rank`` (blocking, cheap).
``Materialize``
    Converts surviving candidates into lazy
    :class:`~repro.query.results.SectionMatch` objects.

``Explain=1`` renders the tree with each operator's observed row count —
see :meth:`PlanNode.explain_element`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import DocumentNotFoundError, QueryError
from repro.obs import PlanProfiler
from repro.ordbms.mvcc import Snapshot
from repro.ordbms.table import ROWID_PSEUDO
from repro.ordbms.textindex import TextIndex, tokenize
from repro.query.ast import ContentSpec
from repro.query.results import SectionMatch
from repro.sgml.dom import Element, Text
from repro.sgml.nodetypes import NodeType
from repro.store.accessor import NodeAccessor
from repro.store.compose import compose_node, compose_section
from repro.store.xmlstore import StoredDocument, XmlStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.deadline import Budget

Row = dict[str, Any]


def phrase_in(phrase: str, text: str) -> bool:
    """Token-level phrase containment, case-insensitive.

    ``Budget`` is contained in ``FY04 Budget Summary`` but not in
    ``Budgetary`` — token boundaries matter, substring match does not.
    """
    needle = tokenize(phrase, keep_stopwords=True)
    haystack = tokenize(text, keep_stopwords=True)
    if not needle:
        return False
    span = len(needle)
    return any(
        haystack[start:start + span] == needle
        for start in range(len(haystack) - span + 1)
    )


def text_satisfies(text: str, spec: ContentSpec) -> bool:
    """Does free text satisfy a content spec (phrase / any / all)?"""
    if spec.mode == "phrase":
        return phrase_in(spec.text, text)
    tokens = set(tokenize(text, keep_stopwords=True))
    wanted = [term.lower() for term in spec.terms]
    if spec.mode == "any":
        return any(term in tokens for term in wanted)
    return all(term in tokens for term in wanted)


def scan_match(key: str, data: str, phrase_mode: bool) -> bool:
    """The scan-path predicate mirroring one index probe."""
    if phrase_mode:
        return phrase_in(key, data)
    tokens = set(tokenize(data, keep_stopwords=True))
    return all(term.lower() in tokens for term in tokenize(key))


class PlanContext:
    """Shared execution state for one query's plan.

    Owns the per-query :class:`NodeAccessor` (memoized, batch-fetching
    row access) and a memo of DOC-table catalog entries so repeated
    ``describe`` lookups during filtering and materialization cost one
    B+tree probe per document, total.
    """

    def __init__(
        self,
        store: XmlStore,
        accessor: NodeAccessor,
        use_index: bool,
        profiler: PlanProfiler | None = None,
        snapshot: Snapshot | None = None,
        budget: "Budget | None" = None,
    ) -> None:
        self.store = store
        self.accessor = accessor
        self.use_index = use_index
        self.profiler = profiler
        #: Pinned MVCC snapshot the whole plan executes against (None =
        #: live reads, the single-threaded default).
        self.snapshot = snapshot
        #: The request's time-and-cancellation budget
        #: (:class:`repro.resilience.deadline.Budget`); every operator
        #: checks it at its pull boundary, so one expired deadline stops
        #: the whole tree cooperatively.  None = unbounded.
        self.budget = budget
        self._entries: dict[int, StoredDocument] = {}

    def entry(self, doc_id: int) -> StoredDocument:
        """Catalog entry for ``doc_id``, memoized per plan."""
        entry = self._entries.get(doc_id)
        if entry is None:
            entry = self.store.describe(doc_id, snapshot=self.snapshot)
            self._entries[doc_id] = entry
        return entry

    def file_name(self, doc_id: int) -> str:
        return self.entry(doc_id).file_name

    def text_index(self) -> TextIndex:
        """The NODEDATA inverted index (schema-created; absence is a fault)."""
        index = self.store.xml_table.text_index_on("NODEDATA")
        if index is None:
            raise QueryError(
                "indexed search requires the text index on XML.NODEDATA, "
                "which the schema normally creates"
            )
        return index

    def section_satisfies(self, context_row: Row, spec: ContentSpec) -> bool:
        """Does the section under ``context_row`` satisfy the content spec?

        The heading participates: ``Content=Shuttle`` returns sections
        containing the term *anywhere*, headings included.
        """
        heading = self.accessor.context_title(context_row)
        text = heading + " " + self.accessor.section_text(context_row)
        return text_satisfies(text, spec)

    def is_emphasized(self, row: Row) -> bool:
        """True when a text row sits inside INTENSE (emphasis) markup."""
        current = row
        while True:
            parent = self.accessor.parent(current)
            if parent is None:
                return False
            if parent["NODETYPE"] == int(NodeType.INTENSE):
                return True
            if parent["NODETYPE"] == int(NodeType.CONTEXT):
                return False
            current = parent


@dataclass
class Candidate:
    """One item flowing through a plan: a potential match, pre-materialization.

    ``kind`` is "section" (``row`` is a CONTEXT row), "document" (``row``
    is the first context-less content hit of the document) or "node"
    (``row`` is an element row from a nodename search).  ``order`` is the
    presentation position tagged by :class:`Rank` so :class:`Present`
    can restore it after rank-aware limiting.
    """

    kind: str
    doc_id: int
    row: Row
    score: float = 1.0
    order: int = -1
    node: Element | Text | None = None
    text: str | None = None


class PlanNode:
    """One operator: a lazy cursor over :class:`Candidate` items.

    ``rows()`` is the pull interface; it counts what flows out so
    ``Explain=1`` can report observed per-operator cardinalities.
    """

    name = "operator"

    def __init__(self, ctx: PlanContext, *children: "PlanNode", detail: str = "") -> None:
        self.ctx = ctx
        self.children = list(children)
        self.detail = detail
        self.rows_out = 0
        self.ticks = 0
        self.wall_seconds = 0.0

    def rows(self) -> Iterator[Any]:
        budget = self.ctx.budget
        if self.ctx.profiler is None and budget is None:
            for item in self._produce():
                self.rows_out += 1
                yield item
            return
        if self.ctx.profiler is None:
            # Cooperative cancellation: the budget check is this
            # operator's batch boundary.  ``admits`` raises on
            # cancellation or a hard deadline; with ``Partial=1`` it
            # returns False and the whole tree stops pulling, leaving
            # downstream operators with a truncated (partial) prefix.
            for item in self._produce():
                if not budget.admits(self.name):
                    return
                self.rows_out += 1
                yield item
            return
        yield from self._profiled_rows()

    def _profiled_rows(self) -> Iterator[Any]:
        """The instrumented pull loop behind ``Explain=profile``.

        Inclusive cost per operator: the profiler's tick delta around
        each ``next()`` (every row surfaced anywhere in the subtree
        advances the clock) plus one tick for the row this operator
        itself surfaces.  Wall time, when a clock was injected, brackets
        the same ``next()`` calls — producer time only, consumer time
        (whatever the caller does between pulls) is excluded.
        """
        profiler = self.ctx.profiler
        budget = self.ctx.budget
        wall = profiler.wall_clock
        produce = self._produce()
        while True:
            start = profiler.now()
            wall_start = wall() if wall is not None else 0.0
            try:
                item = next(produce)
            except StopIteration:
                self.ticks += profiler.now() - start
                if wall is not None:
                    self.wall_seconds += wall() - wall_start
                return
            profiler.advance()
            self.ticks += profiler.now() - start
            if wall is not None:
                self.wall_seconds += wall() - wall_start
            if budget is not None and not budget.admits(self.name):
                return
            self.rows_out += 1
            yield item

    def _produce(self) -> Iterator[Any]:
        raise QueryError(f"plan node {type(self).__name__} has no cursor")

    def explain_element(self) -> Element:
        """``<operator name=… rows=…>`` with child operators nested.

        Under ``Explain=profile`` each operator also carries ``ticks``
        (inclusive work units — deterministic) and, when a wall clock was
        injected at the composition root, ``wall_ms``.
        """
        attributes = {"name": self.name, "rows": str(self.rows_out)}
        if self.ctx.profiler is not None:
            attributes["ticks"] = str(self.ticks)
            if self.ctx.profiler.wall_clock is not None:
                attributes["wall_ms"] = f"{self.wall_seconds * 1000.0:.3f}"
        if self.detail:
            attributes["detail"] = self.detail
        element = Element("operator", attributes)
        for child in self.children:
            element.append(child.explain_element())
        return element


# -- leaf sources -------------------------------------------------------------


class IndexProbe(PlanNode):
    """Inverted-index probe over XML.NODEDATA; yields TEXT-row candidates.

    The posting list comes back as rowids; the rows arrive in ONE batched
    fetch through the accessor (and stay cached for later lifts/walks).
    """

    name = "index-probe"

    def __init__(self, ctx: PlanContext, key: str, phrase_mode: bool) -> None:
        kind = "phrase" if phrase_mode else "terms"
        super().__init__(ctx, detail=f'{kind} "{key}"')
        self.key = key
        self.phrase_mode = phrase_mode

    def _produce(self) -> Iterator[Candidate]:
        self.ctx.text_index()  # missing index is a fault even under MVCC
        if self.phrase_mode:
            rowids = self.ctx.accessor.probe_text(
                lambda index: index.lookup_phrase(self.key),
                lambda data: phrase_in(self.key, data),
            )
        else:
            rowids = self.ctx.accessor.probe_text(
                lambda index: index.lookup_all(tokenize(self.key)),
                lambda data: scan_match(self.key, data, False),
            )
        for row in self.ctx.accessor.nodes(list(rowids)):
            if row["NODETYPE"] == int(NodeType.TEXT):
                yield Candidate("text", row["DOC_ID"], row)


class Scan(PlanNode):
    """Full-table scan source (the ABL-IDX ablation's ``use_index=False``)."""

    name = "scan"

    def __init__(self, ctx: PlanContext, key: str, phrase_mode: bool) -> None:
        kind = "phrase" if phrase_mode else "terms"
        super().__init__(ctx, detail=f'{kind} "{key}"')
        self.key = key
        self.phrase_mode = phrase_mode

    def _produce(self) -> Iterator[Candidate]:
        table = self.ctx.store.xml_table
        if self.ctx.snapshot is not None:
            rows: Iterator[Row] = (
                row
                for row in table.snapshot_scan(self.ctx.snapshot.lsn)
                if row["NODEDATA"] is not None
                and scan_match(self.key, row["NODEDATA"], self.phrase_mode)
            )
        else:
            rows = table.scan(
                lambda row: row["NODEDATA"] is not None
                and scan_match(self.key, row["NODEDATA"], self.phrase_mode)
            )
        for row in rows:
            if row["NODETYPE"] == int(NodeType.TEXT):
                yield Candidate("text", row["DOC_ID"], row)


class Union(PlanNode):
    """Order-preserving union of several sources, deduplicated by ROWID."""

    name = "union"

    def _produce(self) -> Iterator[Candidate]:
        seen: set[Any] = set()
        for child in self.children:
            for candidate in child.rows():
                rowid = candidate.row[ROWID_PSEUDO]
                if rowid in seen:
                    continue
                seen.add(rowid)
                yield candidate


# -- upward traversal ---------------------------------------------------------


class ContextLift(PlanNode):
    """Lift heading hits to their CONTEXT ancestors (context search).

    Each child probe is paired with the phrase it searched for; a lifted
    context only survives if the *whole* phrase holds across its full
    (possibly multi-node) heading.  Confirmed contexts are deduplicated
    across phrases.
    """

    name = "context-lift"

    def __init__(
        self, ctx: PlanContext, pairs: list[tuple[PlanNode, str]]
    ) -> None:
        super().__init__(ctx, *[node for node, _ in pairs])
        self.pairs = pairs

    def _produce(self) -> Iterator[Candidate]:
        accessor = self.ctx.accessor
        confirmed: set[Any] = set()
        for source, phrase in self.pairs:
            hits = list(source.rows())
            accessor.prefetch_ancestors([hit.row for hit in hits])
            for candidate in hits:
                context = accessor.context_ancestor(candidate.row)
                if context is None:
                    continue
                rowid = context[ROWID_PSEUDO]
                if rowid in confirmed:
                    continue
                # The index matched one TEXT node; confirm the phrase
                # holds across the whole heading.
                if phrase_in(phrase, accessor.context_title(context)):
                    confirmed.add(rowid)
                    yield Candidate("section", context["DOC_ID"], context)


class GoverningLift(PlanNode):
    """Lift content hits to their governing contexts (content search).

    Blocking: scores (INTENSE boosts) accumulate across *all* hits of a
    context, so nothing can flow until every hit is seen.  Emits the
    distinct contexts in stable (document, node) order with their final
    scores, then one document-level candidate per context-less document
    (carrying its first hit row, whose data becomes the snippet).
    """

    name = "governing-lift"

    def _produce(self) -> Iterator[Candidate]:
        accessor = self.ctx.accessor
        contexts: dict[Any, Row] = {}
        boosts: dict[Any, float] = {}
        doc_level: dict[int, Row] = {}
        hits = list(self.children[0].rows())
        accessor.prefetch_ancestors([hit.row for hit in hits])
        for candidate in hits:
            context = accessor.governing_context(candidate.row)
            if context is None:
                doc_level.setdefault(candidate.doc_id, candidate.row)
                continue
            key = context[ROWID_PSEUDO]
            contexts.setdefault(key, context)
            if self.ctx.is_emphasized(candidate.row):
                boosts[key] = boosts.get(key, 0.0) + 0.5
        ordered = sorted(
            contexts.values(), key=lambda row: (row["DOC_ID"], row["NODEID"])
        )
        for row in ordered:
            score = 1.0 + boosts.get(row[ROWID_PSEUDO], 0.0)
            yield Candidate("section", row["DOC_ID"], row, score=score)
        for doc_id in sorted(doc_level):
            yield Candidate("document", doc_id, doc_level[doc_id])


class NodenameProbe(PlanNode):
    """B+tree probe on NODENAME: one candidate per element instance."""

    name = "nodename-probe"

    def __init__(self, ctx: PlanContext, nodename: str) -> None:
        super().__init__(ctx, detail=nodename)
        self.nodename = nodename

    def _produce(self) -> Iterator[Candidate]:
        for row in self.ctx.accessor.lookup_rows("NODENAME", self.nodename):
            yield Candidate("node", row["DOC_ID"], row)


class Sort(PlanNode):
    """Stable (document, node) ordering — the presentation order."""

    name = "sort"

    def _produce(self) -> Iterator[Candidate]:
        candidates = list(self.children[0].rows())
        candidates.sort(key=lambda c: (c.row["DOC_ID"], c.row["NODEID"]))
        yield from candidates


# -- filters ------------------------------------------------------------------


class DocFilter(PlanNode):
    """The ``Doc=`` narrowing filter: file-name substring, case-folded."""

    name = "doc-filter"

    def __init__(self, ctx: PlanContext, child: PlanNode, needle: str) -> None:
        super().__init__(ctx, child, detail=needle)
        self.needle = needle.lower()

    def _produce(self) -> Iterator[Candidate]:
        for candidate in self.children[0].rows():
            if self.needle in self.ctx.file_name(candidate.doc_id).lower():
                yield candidate


class FormatFilter(PlanNode):
    """The ``Format=`` narrowing filter (matched against the catalog)."""

    name = "format-filter"

    def __init__(self, ctx: PlanContext, child: PlanNode, wanted: str) -> None:
        super().__init__(ctx, child, detail=wanted)
        self.wanted = wanted

    def _produce(self) -> Iterator[Candidate]:
        for candidate in self.children[0].rows():
            try:
                entry = self.ctx.entry(candidate.doc_id)
            except DocumentNotFoundError:
                yield candidate  # federated matches lack local entries
                continue
            if entry.format == self.wanted:
                yield candidate


class Intersect(PlanNode):
    """Document-level semijoin against content-term postings.

    A section's text (heading included) is drawn entirely from TEXT rows
    of its own document, and the joined text is space-separated, so every
    token of a matching section occurs as a token of *some* row the
    index has seen.  Hence: a candidate whose document lacks a required
    term can never satisfy the content spec — drop it before walking its
    section.  Only terms the tokenizer maps to themselves participate
    (``all`` intersects per-term document sets, ``any`` unions them,
    ``phrase`` intersects per-token sets); when a term falls outside
    that shape the semijoin abstains rather than guess.

    The document sets are computed lazily on first pull, one batched
    posting fetch per term, and the fetched rows stay in the accessor
    cache for the section walks that follow.
    """

    name = "intersect"

    def __init__(
        self, ctx: PlanContext, child: PlanNode, spec: ContentSpec
    ) -> None:
        super().__init__(ctx, child, detail=f"{spec.mode}: {spec.text}")
        self.spec = spec

    def _docs_with_token(self, token: str) -> set[int]:
        self.ctx.text_index()  # missing index is a fault even under MVCC
        rowids = self.ctx.accessor.probe_text(
            lambda index: index.lookup(token),
            lambda data: token.lower() in tokenize(data, keep_stopwords=True),
        )
        rows = self.ctx.accessor.nodes(list(rowids))
        return {row["DOC_ID"] for row in rows}

    def _allowed_docs(self) -> set[int] | None:
        """Documents that could host a match — None means "cannot prune"."""
        spec = self.spec
        if spec.mode == "phrase":
            tokens = tokenize(spec.text, keep_stopwords=True)
            if not tokens:
                return None
            allowed = self._docs_with_token(tokens[0])
            for token in tokens[1:]:
                allowed &= self._docs_with_token(token)
            return allowed
        clean = []
        for term in spec.terms:
            if tokenize(term, keep_stopwords=True) != [term.lower()]:
                if spec.mode == "any":
                    return None  # an odd term: abstain entirely
                continue  # "all": skip just this term's pruning
            clean.append(term.lower())
        if not clean:
            return None
        if spec.mode == "any":
            allowed = set()
            for token in clean:
                allowed |= self._docs_with_token(token)
            return allowed
        allowed = self._docs_with_token(clean[0])
        for token in clean[1:]:
            allowed &= self._docs_with_token(token)
        return allowed

    def _produce(self) -> Iterator[Candidate]:
        allowed = self._allowed_docs()
        for candidate in self.children[0].rows():
            if allowed is None or candidate.doc_id in allowed:
                yield candidate


class SectionWalk(PlanNode):
    """The downward sibling walk: content containment per candidate.

    This is the expensive operator — resolving a section's text means
    hopping SIBLINGIDs and fetching subtrees — so it sits directly under
    ``Limit``: candidates beyond what the limit needs are never walked.
    Document-level candidates pass through untested (they matched on a
    context-less hit; there is no section to test).
    """

    name = "section-walk"

    def __init__(
        self, ctx: PlanContext, child: PlanNode, spec: ContentSpec
    ) -> None:
        super().__init__(ctx, child, detail=f"{spec.mode}: {spec.text}")
        self.spec = spec

    def _produce(self) -> Iterator[Candidate]:
        for candidate in self.children[0].rows():
            if candidate.kind != "section":
                yield candidate
                continue
            if self.ctx.section_satisfies(candidate.row, self.spec):
                yield candidate


class ContentFilter(PlanNode):
    """Nodename-search content test: compose the element, test its text.

    The composed node and normalized text are cached on the candidate so
    materialization doesn't redo the work.
    """

    name = "content-filter"

    def __init__(
        self, ctx: PlanContext, child: PlanNode, spec: ContentSpec
    ) -> None:
        super().__init__(ctx, child, detail=f"{spec.mode}: {spec.text}")
        self.spec = spec

    def _produce(self) -> Iterator[Candidate]:
        for candidate in self.children[0].rows():
            node = compose_node(
                self.ctx.store.database, candidate.row, self.ctx.accessor
            )
            text = re.sub(r"\s+", " ", node.text_content()).strip()
            if not text_satisfies(text, self.spec):
                continue
            candidate.node = node
            candidate.text = text
            yield candidate


# -- rank / limit / present ----------------------------------------------------


class Rank(PlanNode):
    """Tag presentation positions, then emit by descending score (stable).

    Blocking by necessity — ranking needs every score — but candidates
    at this point are cheap (already-fetched rows); the expensive
    section resolution happens downstream, bounded by ``Limit``.
    """

    name = "rank"

    def _produce(self) -> Iterator[Candidate]:
        candidates = list(self.children[0].rows())
        for position, candidate in enumerate(candidates):
            candidate.order = position
        candidates.sort(key=lambda c: -c.score)  # stable: ties keep order
        yield from candidates


class Limit(PlanNode):
    """Stop pulling after N rows; pass-through when no limit is set."""

    name = "limit"

    def __init__(
        self, ctx: PlanContext, child: PlanNode, limit: int | None
    ) -> None:
        super().__init__(
            ctx, child, detail="" if limit is None else str(limit)
        )
        self.limit = limit

    def _produce(self) -> Iterator[Any]:
        if self.limit is None:
            yield from self.children[0].rows()
            return
        emitted = 0
        for item in self.children[0].rows():
            yield item
            emitted += 1
            if emitted >= self.limit:
                break


class Present(PlanNode):
    """Restore presentation order after rank-aware limiting."""

    name = "present"

    def _produce(self) -> Iterator[Candidate]:
        candidates = list(self.children[0].rows())
        candidates.sort(key=lambda c: c.order)
        yield from candidates


# -- materialization ----------------------------------------------------------


@dataclass
class SectionResolver:
    """Lazy-field loader for a section match (accessor-backed)."""

    ctx: PlanContext
    row: Row

    def context(self) -> str:
        return self.ctx.accessor.context_title(self.row)

    def content(self) -> str:
        return self.ctx.accessor.section_text(self.row)

    def section(self) -> Element | None:
        return compose_section(
            self.ctx.store.database, self.row, self.ctx.accessor
        )


@dataclass
class NodeResolver:
    """Lazy-field loader for a nodename match."""

    ctx: PlanContext
    row: Row
    node: Element | Text | None = None
    text: str | None = None
    _heading: str | None = field(default=None, repr=False)

    def _resolve_node(self) -> Element | Text:
        if self.node is None:
            self.node = compose_node(
                self.ctx.store.database, self.row, self.ctx.accessor
            )
        return self.node

    def context(self) -> str:
        if self._heading is None:
            accessor = self.ctx.accessor
            if accessor.is_context(self.row):
                self._heading = accessor.context_title(self.row)
            else:
                governing = accessor.governing_context(self.row)
                self._heading = (
                    accessor.context_title(governing)
                    if governing is not None
                    else self.ctx.file_name(self.row["DOC_ID"])
                )
        return self._heading

    def content(self) -> str:
        if self.text is None:
            node = self._resolve_node()
            self.text = re.sub(r"\s+", " ", node.text_content()).strip()
        return self.text

    def section(self) -> Element | None:
        node = self._resolve_node()
        return node if isinstance(node, Element) else None


class Materialize(PlanNode):
    """Candidates → lazy :class:`SectionMatch` objects.

    Section and nodename matches get loader-backed lazy fields (title,
    content and DOM fragment resolve on first access through the shared
    accessor); document-level matches are materialized eagerly from the
    hit row already in hand.
    """

    name = "materialize"

    def _produce(self) -> Iterator[SectionMatch]:
        ctx = self.ctx
        for candidate in self.children[0].rows():
            entry = ctx.entry(candidate.doc_id)
            if candidate.kind == "section":
                yield SectionMatch(
                    doc_id=entry.doc_id,
                    file_name=entry.file_name,
                    score=candidate.score,
                    loader=SectionResolver(ctx, candidate.row),
                    rowid=candidate.row[ROWID_PSEUDO],
                )
            elif candidate.kind == "document":
                snippet = (candidate.row["NODEDATA"] or "").strip()
                snippet = re.sub(r"\s+", " ", snippet)
                yield SectionMatch(
                    doc_id=entry.doc_id,
                    file_name=entry.file_name,
                    context=entry.file_name,
                    content=snippet,
                    section=None,
                    score=candidate.score,
                )
            else:  # nodename
                yield SectionMatch(
                    doc_id=entry.doc_id,
                    file_name=entry.file_name,
                    score=candidate.score,
                    loader=NodeResolver(
                        ctx, candidate.row, candidate.node, candidate.text
                    ),
                )
