"""The XDB Query engine: context + content search over the XML store."""

from repro.query.ast import ContentSpec, ContextSpec, XdbQuery
from repro.query.cache import QueryCache
from repro.query.engine import QueryEngine, phrase_in
from repro.query.language import (
    format_query,
    parse_pairs,
    parse_query,
    percent_decode,
    percent_encode,
)
from repro.query.plan import Candidate, PlanContext, PlanNode
from repro.query.results import ResultSet, SectionMatch

__all__ = [
    "Candidate",
    "ContentSpec",
    "ContextSpec",
    "PlanContext",
    "PlanNode",
    "QueryCache",
    "QueryEngine",
    "ResultSet",
    "SectionMatch",
    "XdbQuery",
    "format_query",
    "parse_pairs",
    "parse_query",
    "percent_decode",
    "percent_encode",
    "phrase_in",
]
