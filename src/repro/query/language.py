"""The XDB Query URL language.

"The key features are that context and content search specifications are
appended to a URL that is sent to NETMARK.  In this URL we may also
specify an XSLT stylesheet which specifies how the results are to be
formatted and composed into a new document." (§2.1.3)

:func:`parse_query` accepts the query-string part of such a URL::

    Context=Technology%20Gap&Content=Shrinking&xslt=report.xsl

Rules (documented where the paper is silent, since "this is not the
precise query syntax" even in the paper):

* Keys are case-insensitive: ``Context``, ``Content``, ``xslt``,
  ``databank``, ``limit``.  Unknown keys are preserved in ``extras``.
* Values are percent-decoded; ``+`` decodes to space.
* ``|`` separates alternatives in Context values.
* Repeated ``Context``/``Content`` keys OR/AND together respectively:
  a second ``Context`` adds alternatives; a second ``Content`` adds terms.
* A fully-quoted content value means phrase mode; ``any:``/``all:``
  prefixes force disjunctive/conjunctive term matching.
* ``Explain=1`` asks for the plan, ``Explain=profile`` for the plan with
  per-operator work-unit costs; ``Trace=1`` asks the server to attach
  the request's span tree to the result envelope.
* ``Deadline=N`` bounds the request to N server clock ticks;
  ``Partial=1`` asks for whatever was found by the deadline (marked
  partial) instead of a 504.
* ``Cache=0`` bypasses the result cache for this request (recompute,
  never store).  Any other value — or omitting the key — leaves caching
  on, which is safe because cached answers are byte-identical.
"""

from __future__ import annotations

from repro.errors import QuerySyntaxError
from repro.query.ast import ContentSpec, ContextSpec, XdbQuery

_HEX = "0123456789abcdefABCDEF"


def percent_decode(value: str) -> str:
    """Decode %XX escapes and '+' (tolerant: bad escapes pass through).

    Consecutive escapes decode as one UTF-8 byte sequence, so non-ASCII
    text round-trips through :func:`percent_encode`.
    """
    out: list[str] = []
    pending = bytearray()

    def flush() -> None:
        if pending:
            out.append(pending.decode("utf-8", errors="replace"))
            pending.clear()

    index = 0
    length = len(value)
    while index < length:
        char = value[index]
        if (
            char == "%"
            and index + 2 < length
            and value[index + 1] in _HEX
            and value[index + 2] in _HEX
        ):
            pending.append(int(value[index + 1:index + 3], 16))
            index += 3
            continue
        flush()
        out.append(" " if char == "+" else char)
        index += 1
    flush()
    return "".join(out)


def percent_encode(value: str) -> str:
    """Encode a value for inclusion in an XDB query URL."""
    safe = set(
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_.~|"
    )
    return "".join(
        char if char in safe else
        ("+" if char == " " else "".join(f"%{byte:02X}" for byte in char.encode("utf-8")))
        for char in value
    )


def parse_pairs(query_string: str) -> list[tuple[str, str]]:
    """Split a query string into decoded (key, value) pairs."""
    pairs: list[tuple[str, str]] = []
    for chunk in query_string.split("&"):
        if not chunk.strip():
            continue
        if "=" not in chunk:
            raise QuerySyntaxError(f"malformed query component {chunk!r}")
        key, _, value = chunk.partition("=")
        pairs.append((percent_decode(key).strip(), percent_decode(value)))
    return pairs


def _parse_content_value(value: str) -> tuple[tuple[str, ...], str]:
    """Return (terms, mode) from a Content value."""
    value = value.strip()
    mode = "all"
    lowered = value.lower()
    if lowered.startswith("any:"):
        mode = "any"
        value = value[4:]
    elif lowered.startswith("all:"):
        value = value[4:]
    value = value.strip()
    if len(value) >= 2 and value[0] == '"' and value[-1] == '"':
        return (value[1:-1],), "phrase"
    terms = tuple(term for term in value.split() if term)
    return terms, mode


def parse_query(query_string: str) -> XdbQuery:
    """Parse an XDB query string into an :class:`XdbQuery`."""
    if "?" in query_string:
        # Accept full URLs/paths for convenience.
        query_string = query_string.split("?", 1)[1]
    context_phrases: list[str] = []
    content_terms: list[str] = []
    content_mode: str | None = None
    nodename: str | None = None
    doc: str | None = None
    format_filter: str | None = None
    stylesheet: str | None = None
    databank: str | None = None
    limit: int | None = None
    explain = False
    profile = False
    trace = False
    deadline_ticks: int | None = None
    partial_ok = False
    cache = True
    extras: list[tuple[str, str]] = []

    for key, value in parse_pairs(query_string):
        lowered = key.lower()
        if lowered == "context":
            context_phrases.extend(
                phrase.strip() for phrase in value.split("|") if phrase.strip()
            )
        elif lowered == "content":
            terms, mode = _parse_content_value(value)
            if content_mode is not None and content_mode != mode:
                raise QuerySyntaxError(
                    "conflicting content modes in one query "
                    f"({content_mode!r} vs {mode!r})"
                )
            content_mode = mode
            content_terms.extend(terms)
        elif lowered == "nodename":
            nodename = value.strip() or None
        elif lowered == "doc":
            doc = value.strip() or None
        elif lowered == "format":
            format_filter = value.strip().lower() or None
        elif lowered in {"xslt", "stylesheet"}:
            stylesheet = value.strip() or None
        elif lowered == "databank":
            databank = value.strip() or None
        elif lowered == "limit":
            try:
                limit = int(value)
            except ValueError:
                raise QuerySyntaxError(f"limit must be an integer, got {value!r}")
        elif lowered == "explain":
            cleaned = value.strip().lower()
            if cleaned == "profile":
                explain = True
                profile = True
            else:
                explain = cleaned in {"1", "true", "yes"}
        elif lowered == "trace":
            trace = value.strip().lower() in {"1", "true", "yes"}
        elif lowered == "deadline":
            try:
                deadline_ticks = int(value)
            except ValueError:
                raise QuerySyntaxError(
                    f"Deadline must be an integer tick count, got {value!r}"
                )
        elif lowered == "partial":
            partial_ok = value.strip().lower() in {"1", "true", "yes"}
        elif lowered == "cache":
            cache = value.strip().lower() not in {"0", "false", "no", "off"}
        else:
            extras.append((key, value))

    context = ContextSpec(tuple(context_phrases)) if context_phrases else None
    content = (
        ContentSpec(tuple(content_terms), content_mode or "all")
        if content_terms
        else None
    )
    return XdbQuery(
        context=context,
        content=content,
        nodename=nodename,
        doc=doc,
        format=format_filter,
        stylesheet=stylesheet,
        databank=databank,
        limit=limit,
        explain=explain,
        profile=profile,
        trace=trace,
        deadline_ticks=deadline_ticks,
        partial_ok=partial_ok,
        cache=cache,
        extras=tuple(extras),
    )


def format_query(query: XdbQuery) -> str:
    """Render an :class:`XdbQuery` back into URL query-string form."""
    parts: list[str] = []
    if query.context is not None:
        parts.append("Context=" + percent_encode("|".join(query.context.phrases)))
    if query.content is not None:
        if query.content.mode == "phrase":
            value = f'"{query.content.text}"'
        elif query.content.mode == "any":
            value = "any:" + query.content.text
        else:
            value = query.content.text
        parts.append("Content=" + percent_encode(value))
    if query.nodename:
        parts.append("Nodename=" + percent_encode(query.nodename))
    if query.doc:
        parts.append("Doc=" + percent_encode(query.doc))
    if query.format:
        parts.append("Format=" + percent_encode(query.format))
    if query.stylesheet:
        parts.append("xslt=" + percent_encode(query.stylesheet))
    if query.databank:
        parts.append("databank=" + percent_encode(query.databank))
    if query.limit is not None:
        parts.append(f"limit={query.limit}")
    if query.profile:
        parts.append("Explain=profile")
    elif query.explain:
        parts.append("Explain=1")
    if query.trace:
        parts.append("Trace=1")
    if query.deadline_ticks is not None:
        parts.append(f"Deadline={query.deadline_ticks}")
    if query.partial_ok:
        parts.append("Partial=1")
    if not query.cache:
        parts.append("Cache=0")
    for key, value in query.extras:
        parts.append(percent_encode(key) + "=" + percent_encode(value))
    return "&".join(parts)
