"""XDB Query evaluation (paper §2.1.3-2.1.4).

The engine implements the paper's strategy literally, compiled into an
explicit operator tree (:mod:`repro.query.plan`) and pulled lazily:

1. **Index probe.**  The search key goes to the text index over
   ``XML.NODEDATA`` — every hit is a TEXT node row (``IndexProbe``; the
   ABL-IDX ablation swaps in ``Scan``).
2. **Upward traversal.**  Each hit is resolved "based on its designated
   unique ROWID ... traversing up the tree structure via its parent or
   sibling node until the first context is found":

   * For a *context* search the hit must be heading text, i.e. have a
     CONTEXT element among its proper ancestors (``ContextLift``).
   * For a *content* search the hit resolves to its governing context —
     nearest enclosing or preceding CONTEXT (``GoverningLift``).

3. **Downward sibling walk.**  The matched context's section is collected
   through ``SIBLINGID`` hops (``SectionWalk``) and reconstructed lazily
   at materialization.

A combined ``Context=X&Content=Y`` query intersects: sections whose
heading matches X *and* whose scope contains Y.  On the indexed path a
document-level semijoin (``Intersect``) prunes candidates whose document
cannot contain Y before any section is walked.

``limit`` pushes all the way down: ``Rank`` orders candidates by score
(stable within ties), ``Limit`` stops the pull, and the expensive
operators sit below it — a limit-5 query walks a handful of sections no
matter how large the corpus.  ``explain`` runs the same plan and returns
the operator tree with observed row counts instead of results.

All row access goes through one per-query
:class:`~repro.store.accessor.NodeAccessor` (batched, memoized,
write-generation guarded), shared with the lazy
:class:`~repro.query.results.SectionMatch` loaders the plan emits.
"""

from __future__ import annotations

from repro import obs
from repro.errors import QueryError
from repro.obs import PlanProfiler
from repro.query.ast import ContentSpec, ContextSpec, XdbQuery
from repro.query.cache import QueryCache
from repro.query.language import format_query, parse_query
from repro.query.plan import (
    ContentFilter,
    ContextLift,
    DocFilter,
    FormatFilter,
    GoverningLift,
    IndexProbe,
    Intersect,
    Limit,
    Materialize,
    NodenameProbe,
    PlanContext,
    PlanNode,
    Present,
    Rank,
    Scan,
    SectionWalk,
    Sort,
    Union,
    phrase_in,
)
from repro.ordbms import Snapshot
from repro.query.results import ResultSet, SectionMatch
from repro.resilience.deadline import Budget, Deadline
from repro.sgml.dom import Document, Element
from repro.store.xmlstore import XmlStore

__all__ = ["QueryEngine", "phrase_in"]


def _eager_match(match: SectionMatch) -> SectionMatch:
    """A fully-resolved, loader-free copy of ``match`` for the cache.

    Touching the lazy properties resolves them through the (still live)
    per-query accessor; the copy then carries plain values only.  The
    section Element may be shared across replays because
    ``ResultSet.to_xml`` clones section children before mutating
    anything.
    """
    return SectionMatch(
        doc_id=match.doc_id,
        file_name=match.file_name,
        context=match.context,
        content=match.content,
        section=match.section,
        source=match.source,
        score=match.score,
        rowid=match.rowid,
    )


class QueryEngine:
    """Evaluates XDB queries against one :class:`XmlStore`.

    With ``cache`` (a :class:`~repro.query.cache.QueryCache`) the engine
    serves repeated queries from the generation-keyed result cache and
    its plans read structural lifts through the store's shared
    :class:`~repro.store.liftcache.LiftCache`.  Both are byte-identical
    by construction; ``Cache=0`` on a query opts that request out.
    Without ``cache`` (the default) execution is exactly the uncached
    path — benchmarks and ablations construct bare engines on purpose.
    """

    def __init__(
        self,
        store: XmlStore,
        use_index: bool = True,
        cache: QueryCache | None = None,
    ) -> None:
        self.store = store
        self.use_index = use_index
        self.cache = cache
        #: Cross-query lift sharing rides with result caching: a bare
        #: engine must behave (and count work) exactly as before.
        self._lifts = store.lift_cache if cache is not None else None

    # -- public entry points ------------------------------------------------

    def execute(
        self,
        query: XdbQuery | str,
        snapshot: Snapshot | None = None,
        budget: Budget | Deadline | None = None,
    ) -> ResultSet:
        """Run a parsed query or a raw XDB query string.

        With ``snapshot`` (see :meth:`XmlStore.snapshot`) the whole plan
        — probes, lifts, walks, and the lazy match loaders the result
        carries — executes against that one pinned commit LSN, immune to
        (and never blocked by) concurrent ingest.

        With ``budget`` (a :class:`~repro.resilience.deadline.Budget`,
        or a bare :class:`~repro.resilience.deadline.Deadline` as
        shorthand) every plan operator checks for expiry/cancellation at
        its pull boundary: the run raises
        :class:`~repro.errors.QueryTimeoutError` on expiry, or — when
        the budget (or the query's ``Partial=1``) allows partial answers
        — returns whatever was collected, with ``deadline_expired`` set.
        The engine has no clock of its own: the query's ``Deadline=``
        parameter is turned into a budget by the HTTP layer, which does.
        """
        if isinstance(query, str):
            query = parse_query(query)
        budget = self._coerce_budget(query, budget)
        key = None
        version = None
        # Deadline-bounded (or already-cancelled) runs bypass the cache
        # both ways: their contract is "bound the work of THIS run", so
        # a replayed complete answer would defeat truncation/cancellation
        # semantics, and their own answers may be partial.  A plain
        # worker-pool budget (no deadline, token not tripped) cannot
        # truncate, so it stays cacheable — the pool is the hot path.
        bounded = budget is not None and (
            budget.deadline is not None or budget.cancelled
        )
        cacheable = (
            self.cache is not None
            and query.cache
            and not query.explain
            and query.deadline_ticks is None
            and not bounded
        )
        if cacheable:
            # The version stamp is captured BEFORE the plan runs: a
            # write racing the plan leaves the entry keyed at the
            # pre-write stamp, which no later lookup presents.
            version = QueryCache.version_for(self.store, snapshot)
            key = QueryCache.key_for(query, self.use_index, version)
            hit = self.cache.lookup(key)
            if hit is not None:
                obs.inc("repro_query_queries_total", kind=query.kind)
                obs.inc("repro_query_rows_returned_total", len(hit))
                result = ResultSet(format_query(query), cached=True)
                result.extend(list(hit))
                return result.limited(query.limit)
        ctx, root = self.compile(query, snapshot=snapshot, budget=budget)
        if budget is None or budget.admits("execute"):
            matches = list(root.rows())
        else:
            matches = []  # expired before the first pull, Partial=1
        obs.inc("repro_query_rows_returned_total", len(matches))
        self._publish_plan_stats(ctx)
        result = ResultSet(format_query(query))
        result.extend(matches)
        if budget is not None and budget.timed_out:
            result.partial = True
            result.deadline_expired = True
            obs.inc("repro_query_deadline_partials_total")
        result = result.limited(query.limit)
        if key is not None and not result.partial:
            # Only complete answers are cacheable, resolved eagerly —
            # the plan's accessor (and any snapshot pin) dies with this
            # request, so a cached match may not load anything lazily.
            self.cache.store(
                key, [_eager_match(match) for match in result.matches],
                version,
            )
        return result

    @staticmethod
    def _coerce_budget(
        query: XdbQuery, budget: Budget | Deadline | None
    ) -> Budget | None:
        """Normalize the budget argument and fold in ``Partial=1``."""
        if isinstance(budget, Deadline):
            budget = Budget(deadline=budget)
        if budget is not None and query.partial_ok:
            budget.partial_ok = True
        return budget

    def explain(
        self,
        query: XdbQuery | str,
        wall_clock=None,
        snapshot: Snapshot | None = None,
    ) -> Document:
        """Execute the query's plan and render it with observed row counts.

        The plan runs to completion (so the counts reflect real work,
        limit pushdown included) but no match is materialized beyond its
        lazy shell.  The result::

            <plan query="Context=Budget&amp;limit=5" kind="context">
              <operator name="materialize" rows="5">
                <operator name="present" rows="5">
                  ...

        With ``query.profile`` set (``Explain=profile``) the plan element
        additionally carries ``profile="work-units"`` and
        ``total-ticks``, and every operator its inclusive ``ticks`` — the
        deterministic cost model of :class:`repro.obs.PlanProfiler`.
        ``wall_clock`` (e.g. ``time.perf_counter``, injected only from a
        composition root or benchmark) adds real ``wall_ms`` per
        operator on top.
        """
        if isinstance(query, str):
            query = parse_query(query)
        ctx, root = self.compile(
            query, wall_clock=wall_clock, snapshot=snapshot
        )
        for _ in root.rows():
            pass
        self._publish_plan_stats(ctx)
        attributes = {"query": format_query(query), "kind": query.kind}
        if ctx.profiler is not None:
            attributes["profile"] = "work-units"
            attributes["total-ticks"] = str(ctx.profiler.total_ticks)
            # Cache annotations: how much of the plan's structural work
            # was answered by the shared lift pool.  Explain runs always
            # bypass the result cache (a plan tree is diagnostics), so
            # its contribution is reported as a mode, not a count.
            attributes["result-cache"] = (
                "bypassed" if self.cache is not None else "off"
            )
            attributes["lift-cache"] = (
                "shared" if self._lifts is not None else "private"
            )
            stats = ctx.accessor.stats
            attributes["lift-cache-hits"] = str(stats.shared_hits)
            attributes["lift-cache-misses"] = str(stats.shared_misses)
        plan_element = Element("plan", attributes)
        plan_element.append(root.explain_element())
        return Document(plan_element, name="plan.xml")

    # -- the three search kinds (list-returning spec API) ---------------------

    def context_search(self, spec: ContextSpec) -> list[SectionMatch]:
        """Sections whose heading matches any phrase in ``spec``."""
        return self._run(XdbQuery(context=spec))

    def content_search(self, spec: ContentSpec) -> list[SectionMatch]:
        """Sections containing the content terms (grouped by context).

        Each match carries a relevance ``score``: 1.0 plus 0.5 for every
        matching text node set in emphasis markup — the INTENSE node type
        finally earning its keep.  Result *order* stays the stable
        (document, node) order; callers wanting relevance order use
        :meth:`~repro.query.results.ResultSet.ranked`.
        """
        return self._run(XdbQuery(content=spec))

    def combined_search(
        self, context_spec: ContextSpec, content_spec: ContentSpec
    ) -> list[SectionMatch]:
        """Sections matching the context whose scope contains the content.

        Paper example: ``Context=Technology Gap&Content=Shrinking`` returns
        the Technology Gap sections of documents where "Shrinking" occurs
        *within* that section.
        """
        return self._run(XdbQuery(context=context_spec, content=content_spec))

    def nodename_search(
        self, nodename: str, content: ContentSpec | None = None
    ) -> list[SectionMatch]:
        """Element-instance search: one match per ``<nodename>`` element.

        The match's context is the element's governing context (or its
        own heading when the element *is* a CONTEXT); the content is the
        element's text.  With a content spec, only matching instances
        whose text satisfies it are returned.
        """
        return self._run(XdbQuery(nodename=nodename, content=content))

    def _run(self, query: XdbQuery) -> list[SectionMatch]:
        ctx, root = self.compile(query)
        matches = list(root.rows())
        obs.inc("repro_query_rows_returned_total", len(matches))
        self._publish_plan_stats(ctx)
        return matches

    @staticmethod
    def _publish_plan_stats(ctx: PlanContext) -> None:
        """Fold the query's accessor traffic into the metric registry.

        The accessor's own counters are plain ints on the hot path (tree
        hops run thousands of times per query); one aggregate publish per
        executed plan keeps the metrics layer off that path.  Traffic
        from *lazy* match materialization after the drain is not
        included — these series describe plan execution.
        """
        stats = ctx.accessor.stats
        if stats.rows_fetched:
            obs.inc(
                "repro_store_accessor_rows_fetched_total",
                stats.rows_fetched,
            )
        if stats.batch_fetches:
            obs.inc(
                "repro_store_accessor_batch_fetches_total",
                stats.batch_fetches,
            )
        if stats.child_lookups:
            obs.inc(
                "repro_store_accessor_index_probes_total",
                stats.child_lookups,
            )
        if stats.cache_hits:
            obs.inc(
                "repro_store_accessor_cache_hits_total", stats.cache_hits
            )
        if stats.shared_hits:
            obs.inc(
                "repro_cache_hits_total", stats.shared_hits, cache="lift"
            )
        if stats.shared_misses:
            obs.inc(
                "repro_cache_misses_total", stats.shared_misses,
                cache="lift",
            )

    # -- plan construction ------------------------------------------------------

    def compile(
        self,
        query: XdbQuery,
        wall_clock=None,
        snapshot: Snapshot | None = None,
        budget: Budget | None = None,
    ) -> tuple[PlanContext, PlanNode]:
        """Build the operator tree for ``query`` (root is a Materialize).

        The shape by query kind (leaf → root), shared tail elided::

            context:   probe*       > context-lift   > sort > ...
            content:   probe* union > governing-lift        > ...
            combined:  probe*       > context-lift   > sort > intersect > ...
            nodename:  nodename-probe                > sort > ...

        Tail: doc/format filters, ``rank``, the expensive per-candidate
        test (``section-walk`` / ``content-filter``) when the kind has
        one, ``limit``, ``present``, ``materialize``.  The expensive test
        sits *under* the limit on purpose: that is the pushdown.
        """
        obs.inc("repro_query_queries_total", kind=query.kind)
        profiler = PlanProfiler(wall_clock) if query.profile else None
        ctx = PlanContext(
            self.store,
            self.store.new_accessor(snapshot, lifts=self._lifts),
            self.use_index,
            profiler=profiler, snapshot=snapshot, budget=budget,
        )
        kind = query.kind
        if kind == "context":
            node = self._context_pipeline(ctx, self._spec(query.context))
        elif kind == "content":
            spec = self._spec(query.content)
            node = GoverningLift(ctx, self._content_source(ctx, spec))
        elif kind == "combined":
            node = self._context_pipeline(ctx, self._spec(query.context))
            if self.use_index:
                node = Intersect(ctx, node, self._spec(query.content))
        else:  # nodename
            node = Sort(ctx, NodenameProbe(ctx, self._spec(query.nodename)))
        if query.doc:
            node = DocFilter(ctx, node, query.doc)
        if query.format:
            node = FormatFilter(ctx, node, query.format)
        node = Rank(ctx, node)
        # The expensive per-candidate test goes under the limit so only
        # candidates the limit admits ever pay for it.
        if kind in {"content", "combined"}:
            node = SectionWalk(ctx, node, self._spec(query.content))
        elif kind == "nodename" and query.content is not None:
            node = ContentFilter(ctx, node, query.content)
        node = Limit(ctx, node, query.limit)
        node = Present(ctx, node)
        return ctx, Materialize(ctx, node)

    def _context_pipeline(self, ctx: PlanContext, spec: ContextSpec) -> PlanNode:
        pairs = [
            (self._probe(ctx, phrase, phrase_mode=True), phrase)
            for phrase in spec.phrases
        ]
        return Sort(ctx, ContextLift(ctx, pairs))

    def _content_source(self, ctx: PlanContext, spec: ContentSpec) -> PlanNode:
        if spec.mode == "phrase":
            return self._probe(ctx, spec.text, phrase_mode=True)
        # "any"/"all" alike read every term's postings; the conjunction
        # (for "all") happens at the section level, since terms may be
        # satisfied by *different* text nodes of one section.
        return Union(
            ctx,
            *[
                self._probe(ctx, term, phrase_mode=False)
                for term in spec.terms
            ],
        )

    def _probe(self, ctx: PlanContext, key: str, phrase_mode: bool) -> PlanNode:
        if self.use_index:
            return IndexProbe(ctx, key, phrase_mode)
        return Scan(ctx, key, phrase_mode)

    @staticmethod
    def _spec(value):
        """Narrow an optional query field the kind dispatch guarantees."""
        if value is None:
            raise QueryError(
                "query kind dispatch produced an incomplete specification"
            )
        return value
