"""XDB Query evaluation (paper §2.1.3-2.1.4).

The engine implements the paper's strategy literally:

1. **Index probe.**  The search key goes to the text index over
   ``XML.NODEDATA`` — every hit is a TEXT node row.
2. **Upward traversal.**  Each hit is resolved "based on its designated
   unique ROWID ... traversing up the tree structure via its parent or
   sibling node until the first context is found":

   * For a *context* search the hit must be heading text, i.e. have a
     CONTEXT element among its proper ancestors (content text never does —
     contexts are siblings of content, not ancestors).
   * For a *content* search the hit resolves to its
     :func:`~repro.store.traversal.governing_context` (nearest enclosing or
     preceding CONTEXT).

3. **Downward sibling walk.**  The matched context's section is collected
   through ``SIBLINGID`` hops and reconstructed.

A combined ``Context=X&Content=Y`` query intersects: sections whose
heading matches X *and* whose scope contains Y.

``use_index=False`` switches step 1 to a full table scan — kept only for
the ABL-IDX ablation benchmark.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.errors import DocumentNotFoundError
from repro.ordbms import RowId
from repro.ordbms.table import ROWID_PSEUDO
from repro.ordbms.textindex import tokenize
from repro.query.ast import ContentSpec, ContextSpec, XdbQuery
from repro.query.language import format_query, parse_query
from repro.query.results import ResultSet, SectionMatch
from repro.sgml.nodetypes import NodeType
from repro.store.traversal import (
    context_title,
    governing_context,
    parent_of,
    section_text,
)
from repro.store.xmlstore import XmlStore

Row = dict[str, Any]


def phrase_in(phrase: str, text: str) -> bool:
    """Token-level phrase containment, case-insensitive.

    ``Budget`` is contained in ``FY04 Budget Summary`` but not in
    ``Budgetary`` — token boundaries matter, substring match does not.
    """
    needle = tokenize(phrase, keep_stopwords=True)
    haystack = tokenize(text, keep_stopwords=True)
    if not needle:
        return False
    span = len(needle)
    return any(
        haystack[start:start + span] == needle
        for start in range(len(haystack) - span + 1)
    )


class QueryEngine:
    """Evaluates XDB queries against one :class:`XmlStore`."""

    def __init__(self, store: XmlStore, use_index: bool = True) -> None:
        self.store = store
        self.use_index = use_index

    # -- public entry points ------------------------------------------------

    def execute(self, query: XdbQuery | str) -> ResultSet:
        """Run a parsed query or a raw XDB query string."""
        if isinstance(query, str):
            query = parse_query(query)
        if query.kind == "nodename":
            assert query.nodename is not None
            matches = self.nodename_search(query.nodename, query.content)
        elif query.kind == "context":
            assert query.context is not None
            matches = self.context_search(query.context)
        elif query.kind == "content":
            assert query.content is not None
            matches = self.content_search(query.content)
        else:
            assert query.context is not None and query.content is not None
            matches = self.combined_search(query.context, query.content)
        matches = self._apply_filters(matches, query)
        result = ResultSet(format_query(query))
        result.extend(matches)
        return result.limited(query.limit)

    def _apply_filters(
        self, matches: list[SectionMatch], query: XdbQuery
    ) -> list[SectionMatch]:
        """Apply the Doc= and Format= narrowing filters."""
        if query.doc:
            needle = query.doc.lower()
            matches = [
                match for match in matches if needle in match.file_name.lower()
            ]
        if query.format:
            wanted = query.format
            kept = []
            for match in matches:
                try:
                    entry = self.store.describe(match.doc_id)
                except DocumentNotFoundError:
                    kept.append(match)  # federated matches lack local entries
                    continue
                if entry.file_name != match.file_name:
                    kept.append(match)
                    continue
                if entry.format == wanted:
                    kept.append(match)
            matches = kept
        return matches

    # -- the three search kinds -----------------------------------------------

    def context_search(self, spec: ContextSpec) -> list[SectionMatch]:
        """Sections whose heading matches any phrase in ``spec``."""
        context_rows = self._matching_contexts(spec)
        return [self._to_match(row) for row in self._ordered(context_rows)]

    def content_search(self, spec: ContentSpec) -> list[SectionMatch]:
        """Sections containing the content terms (grouped by context).

        Each match carries a relevance ``score``: 1.0 plus 0.5 for every
        matching text node set in emphasis markup — the INTENSE node type
        finally earning its keep.  Result *order* stays the stable
        (document, node) order; callers wanting relevance order use
        :meth:`~repro.query.results.ResultSet.ranked`.
        """
        hits = self._content_hit_rows(spec)
        contexts: dict[RowId | None, Row] = {}
        boosts: dict[RowId, float] = {}
        doc_level: dict[int, Row] = {}
        for hit in hits:
            context = governing_context(self.store.database, hit)
            if context is None:
                doc_level.setdefault(hit["DOC_ID"], hit)
                continue
            key = context[ROWID_PSEUDO]
            contexts.setdefault(key, context)
            if self._is_emphasized(hit):
                boosts[key] = boosts.get(key, 0.0) + 0.5
        matches = [
            self._to_match(row, score=1.0 + boosts.get(row[ROWID_PSEUDO], 0.0))
            for row in self._ordered(contexts.values())
            if self._section_satisfies(row, spec)
        ]
        for doc_id in sorted(doc_level):
            matches.append(self._document_match(doc_id, doc_level[doc_id]))
        return matches

    def _is_emphasized(self, row: Row) -> bool:
        """True when a text row sits inside INTENSE (emphasis) markup."""
        current = row
        while True:
            parent = parent_of(self.store.database, current)
            if parent is None:
                return False
            if parent["NODETYPE"] == int(NodeType.INTENSE):
                return True
            if parent["NODETYPE"] == int(NodeType.CONTEXT):
                return False
            current = parent

    def nodename_search(
        self, nodename: str, content: ContentSpec | None = None
    ) -> list[SectionMatch]:
        """Element-instance search: one match per ``<nodename>`` element.

        The match's context is the element's governing context (or its
        own heading when the element *is* a CONTEXT); the content is the
        element's text.  With a content spec, only matching instances
        whose text satisfies it are returned.
        """
        from repro.store.compose import compose_node

        database = self.store.database
        rows = self.store.xml_table.lookup("NODENAME", nodename)
        matches: list[SectionMatch] = []
        for row in self._ordered(rows):
            node = compose_node(database, row)
            text = re.sub(r"\s+", " ", node.text_content()).strip()
            if content is not None and not self._text_satisfies(text, content):
                continue
            if row["NODETYPE"] == int(NodeType.CONTEXT):
                heading = context_title(database, row)
            else:
                governing = governing_context(database, row)
                heading = (
                    context_title(database, governing)
                    if governing is not None
                    else self.store.describe(row["DOC_ID"]).file_name
                )
            entry = self.store.describe(row["DOC_ID"])
            matches.append(
                SectionMatch(
                    doc_id=entry.doc_id,
                    file_name=entry.file_name,
                    context=heading,
                    content=text,
                    section=node if hasattr(node, "tag") else None,
                )
            )
        return matches

    def _text_satisfies(self, text: str, spec: ContentSpec) -> bool:
        tokens = set(tokenize(text, keep_stopwords=True))
        if spec.mode == "phrase":
            return phrase_in(spec.text, text)
        wanted = [term.lower() for term in spec.terms]
        if spec.mode == "any":
            return any(term in tokens for term in wanted)
        return all(term in tokens for term in wanted)

    def combined_search(
        self, context_spec: ContextSpec, content_spec: ContentSpec
    ) -> list[SectionMatch]:
        """Sections matching the context whose scope contains the content.

        Paper example: ``Context=Technology Gap&Content=Shrinking`` returns
        the Technology Gap sections of documents where "Shrinking" occurs
        *within* that section.
        """
        matches = []
        for row in self._ordered(self._matching_contexts(context_spec)):
            if self._section_satisfies(row, content_spec):
                matches.append(self._to_match(row))
        return matches

    # -- plumbing ---------------------------------------------------------------

    def _matching_contexts(self, spec: ContextSpec) -> list[Row]:
        """CONTEXT rows whose heading text matches any phrase."""
        database = self.store.database
        found: dict[RowId, Row] = {}
        for phrase in spec.phrases:
            for hit in self._text_rows_matching(phrase, phrase_mode=True):
                context = self._context_ancestor(hit)
                if context is None:
                    continue
                rowid = context[ROWID_PSEUDO]
                if rowid in found:
                    continue
                # The index matched one TEXT node; confirm the phrase holds
                # across the whole (possibly multi-node) heading.
                if phrase_in(phrase, context_title(database, context)):
                    found[rowid] = context
        return list(found.values())

    def _context_ancestor(self, row: Row) -> Row | None:
        """Nearest proper ancestor with NODETYPE CONTEXT (else None)."""
        current = row
        while True:
            parent = parent_of(self.store.database, current)
            if parent is None:
                return None
            if parent["NODETYPE"] == int(NodeType.CONTEXT):
                return parent
            current = parent

    def _content_hit_rows(self, spec: ContentSpec) -> list[Row]:
        if spec.mode == "phrase":
            return self._text_rows_matching(spec.text, phrase_mode=True)
        if spec.mode == "any":
            rows: dict[RowId, Row] = {}
            for term in spec.terms:
                for row in self._text_rows_matching(term, phrase_mode=False):
                    rows.setdefault(row[ROWID_PSEUDO], row)
            return list(rows.values())
        # mode == "all": terms may be satisfied by *different* text nodes of
        # one section, so collect hits per term and let the section-level
        # check do the conjunction.
        rows = {}
        for term in spec.terms:
            for row in self._text_rows_matching(term, phrase_mode=False):
                rows.setdefault(row[ROWID_PSEUDO], row)
        return list(rows.values())

    def _text_rows_matching(self, key: str, phrase_mode: bool) -> list[Row]:
        """TEXT rows whose data matches ``key`` (index or scan path)."""
        xml_table = self.store.xml_table
        if self.use_index:
            index = xml_table.text_index_on("NODEDATA")
            assert index is not None  # created with the schema
            if phrase_mode:
                rowids = index.lookup_phrase(key)
            else:
                rowids = index.lookup_all(tokenize(key))
            rows = [xml_table.fetch(rowid) for rowid in rowids]
        else:
            rows = list(
                xml_table.scan(
                    lambda row: row["NODEDATA"] is not None
                    and self._scan_match(key, row["NODEDATA"], phrase_mode)
                )
            )
        return [row for row in rows if row["NODETYPE"] == int(NodeType.TEXT)]

    @staticmethod
    def _scan_match(key: str, data: str, phrase_mode: bool) -> bool:
        if phrase_mode:
            return phrase_in(key, data)
        tokens = set(tokenize(data, keep_stopwords=True))
        return all(term.lower() in tokens for term in tokenize(key))

    def _section_satisfies(self, context_row: Row, spec: ContentSpec) -> bool:
        """Does the section under ``context_row`` satisfy the content spec?

        The heading participates: ``Content=Shuttle`` returns documents
        containing the term *anywhere*, headings included.
        """
        heading = context_title(self.store.database, context_row)
        text = heading + " " + section_text(self.store.database, context_row)
        tokens = tokenize(text, keep_stopwords=True)
        token_set = set(tokens)
        if spec.mode == "phrase":
            return phrase_in(spec.text, text)
        wanted = [term.lower() for term in spec.terms]
        if spec.mode == "any":
            return any(term in token_set for term in wanted)
        return all(term in token_set for term in wanted)

    def _ordered(self, rows: Iterable[Row]) -> list[Row]:
        """Stable order: by document then node id."""
        return sorted(rows, key=lambda row: (row["DOC_ID"], row["NODEID"]))

    def _to_match(self, context_row: Row, score: float = 1.0) -> SectionMatch:
        database = self.store.database
        entry = self.store.describe(context_row["DOC_ID"])
        section = self.store.section(context_row)
        return SectionMatch(
            doc_id=entry.doc_id,
            file_name=entry.file_name,
            context=context_title(database, context_row),
            content=section_text(database, context_row),
            section=section,
            score=score,
        )

    def _document_match(self, doc_id: int, hit: Row) -> SectionMatch:
        """A content hit with no governing context matches the whole doc."""
        entry = self.store.describe(doc_id)
        snippet = (hit["NODEDATA"] or "").strip()
        snippet = re.sub(r"\s+", " ", snippet)
        return SectionMatch(
            doc_id=doc_id,
            file_name=entry.file_name,
            context=entry.file_name,
            content=snippet,
            section=None,
        )
