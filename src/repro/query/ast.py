"""XDB Query abstract syntax.

An XDB query (paper §2.1.3) is a small thing: an optional *context*
specification, an optional *content* specification, and optional
presentation directives (the XSLT stylesheet, the target databank, a
result limit).  The paper's examples::

    Context=Introduction
    Content=Shuttle
    Context=Technology Gap&Content=Shrinking

Both specifications allow ``|``-separated alternatives, which is how a
NETMARK user spans vocabulary differences across sources ("in NETMARK we
have to specify two Context queries (one for 'Budget' and one for 'Cost
Details')" — §4; the alternative syntax packs them into one request).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QuerySyntaxError


@dataclass(frozen=True)
class ContextSpec:
    """Match sections whose heading contains one of ``phrases``.

    Matching is case-insensitive token-phrase containment:
    ``Context=Budget`` matches headings "Budget", "Budget Summary" and
    "FY04 Budget", but not "Budgetary".
    """

    phrases: tuple[str, ...]

    def __post_init__(self) -> None:
        cleaned = tuple(phrase.strip() for phrase in self.phrases if phrase.strip())
        if not cleaned:
            raise QuerySyntaxError("context specification has no phrases")
        object.__setattr__(self, "phrases", cleaned)


@dataclass(frozen=True)
class ContentSpec:
    """Match text containing the given terms.

    ``mode`` is ``"all"`` (every term somewhere in the section — default),
    ``"any"`` (at least one), or ``"phrase"`` (the terms consecutively).
    A quoted value (``Content="technology gap"``) parses as phrase mode.
    """

    terms: tuple[str, ...]
    mode: str = "all"

    def __post_init__(self) -> None:
        cleaned = tuple(term.strip() for term in self.terms if term.strip())
        if not cleaned:
            raise QuerySyntaxError("content specification has no terms")
        if self.mode not in {"all", "any", "phrase"}:
            raise QuerySyntaxError(f"unknown content mode {self.mode!r}")
        object.__setattr__(self, "terms", cleaned)

    @property
    def text(self) -> str:
        return " ".join(self.terms)


@dataclass(frozen=True)
class XdbQuery:
    """One parsed XDB request.

    Beyond the paper's Context/Content core, three narrowing filters make
    "full-fledged XML querying" (§2.1.5) concrete:

    * ``nodename`` — match element instances by tag name
      (``Nodename=chapter``); may stand alone or combine with content;
    * ``doc`` — restrict to documents whose file name contains the value;
    * ``format`` — restrict to one source format (``Format=pdf``).

    ``explain`` (``Explain=1``) asks for the *query plan* instead of
    results: the operator tree the engine would execute, annotated with
    observed per-operator row counts.  ``Explain=profile`` additionally
    profiles the run (``profile`` is then also true): each operator
    carries its inclusive cost in deterministic work-unit ticks.
    ``trace`` (``Trace=1``) asks the server to attach the request's span
    tree to the XML envelope.

    ``deadline_ticks`` (``Deadline=N``) bounds how long the request may
    run, in server clock ticks; ``partial_ok`` (``Partial=1``) asks for
    whatever matches were collected by the deadline — rendered with a
    ``<partial>`` envelope — instead of a 504.

    ``cache`` (``Cache=0`` to opt out) lets a request bypass the
    generation-keyed result cache: the answer is always recomputed and
    never stored.  Purely a freshness/benchmarking knob — a cached
    answer is byte-identical by construction, so the default is on.
    """

    context: ContextSpec | None = None
    content: ContentSpec | None = None
    nodename: str | None = None
    doc: str | None = None
    format: str | None = None
    stylesheet: str | None = None
    databank: str | None = None
    limit: int | None = None
    explain: bool = False
    profile: bool = False
    trace: bool = False
    deadline_ticks: int | None = None
    partial_ok: bool = False
    cache: bool = True
    extras: tuple[tuple[str, str], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.context is None and self.content is None and self.nodename is None:
            raise QuerySyntaxError(
                "an XDB query needs a Context, Content or Nodename "
                "specification"
            )
        if self.limit is not None and self.limit <= 0:
            raise QuerySyntaxError("limit must be positive")
        if self.deadline_ticks is not None and self.deadline_ticks <= 0:
            raise QuerySyntaxError("Deadline must be positive")
        if self.nodename is not None:
            normalized = self.nodename.strip().lower()
            if not normalized:
                raise QuerySyntaxError("Nodename value is empty")
            object.__setattr__(self, "nodename", normalized)

    @property
    def kind(self) -> str:
        """``"context"``, ``"content"``, ``"combined"`` or ``"nodename"``."""
        if self.nodename is not None:
            return "nodename"
        if self.context is not None and self.content is not None:
            return "combined"
        return "context" if self.context is not None else "content"
