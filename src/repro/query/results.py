"""Query result model.

A query returns :class:`SectionMatch` objects — one per matched section
(the paper: "the context and content search returns a subsection of the
document where the keyword being searched for occurs").  A
:class:`ResultSet` groups them, remembers the originating query, and
renders the canonical result XML that the XSLT composition step (Fig 7)
consumes::

    <results query="Context=Budget">
      <result doc="p42.ndoc" source="local">
        <context>Budget</context>
        <content>We request $1.2M ...</content>
      </result>
      ...
    </results>

Matches are **lazy**: the engine constructs them with a loader instead of
materialized strings, and the section title, content text and DOM
fragment are resolved on first attribute access (then cached on the
match).  Sorting, limiting and federated routing therefore never pay for
section reconstruction of matches that get cut; only the matches that
actually render resolve.  Loader-backed resolution goes through the
per-query :class:`~repro.store.accessor.NodeAccessor`, whose
write-generation guard keeps late resolution consistent with the store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.ordbms import RowId
from repro.sgml.dom import Document, Element


class SectionLoader(Protocol):
    """Deferred resolution hooks for one matched section."""

    def context(self) -> str: ...

    def content(self) -> str: ...

    def section(self) -> Element | None: ...


#: Unresolved-field sentinel (``None`` is a legal section value).
_UNSET: object = object()


class SectionMatch:
    """One matched section of one document.

    ``section`` is the reconstructed DOM fragment (a ``<section>``
    element); ``source`` names the information source that produced the
    match ("local" for the store the query ran against; federation fills
    in databank source names).  ``rowid`` is the physical address of the
    matched CONTEXT row when the match came straight off a local store
    (None for document-level, nodename and remote matches).

    Construct either eagerly (``context=``/``content=`` strings) or
    lazily (``loader=``); lazy fields resolve once, on first access.
    """

    __slots__ = (
        "doc_id", "file_name", "source", "score", "rowid",
        "_context", "_content", "_section", "_loader",
    )

    def __init__(
        self,
        doc_id: int,
        file_name: str,
        context: str | object = _UNSET,
        content: str | object = _UNSET,
        section: Element | None | object = _UNSET,
        source: str = "local",
        score: float = 1.0,
        loader: SectionLoader | None = None,
        rowid: RowId | None = None,
    ) -> None:
        self.doc_id = doc_id
        self.file_name = file_name
        self.source = source
        self.score = score
        self.rowid = rowid
        self._loader = loader
        self._context = context
        self._content = content
        if section is _UNSET and loader is None:
            section = None
        self._section = section

    # -- lazy fields --------------------------------------------------------

    @property
    def context(self) -> str:
        """The matched section's heading (resolved once)."""
        if self._context is _UNSET:
            self._context = self._require_loader().context()
        return self._context  # type: ignore[return-value]

    @property
    def content(self) -> str:
        """The matched section's content text (resolved once)."""
        if self._content is _UNSET:
            self._content = self._require_loader().content()
        return self._content  # type: ignore[return-value]

    @property
    def section(self) -> Element | None:
        """The reconstructed ``<section>`` fragment (resolved once)."""
        if self._section is _UNSET:
            self._section = self._require_loader().section()
        return self._section  # type: ignore[return-value]

    def _require_loader(self) -> SectionLoader:
        if self._loader is None:
            from repro.errors import QueryError

            raise QueryError(
                "SectionMatch has neither a value nor a loader for a "
                "lazy field"
            )
        return self._loader

    def with_source(self, source: str) -> "SectionMatch":
        """A copy attributed to ``source``, preserving laziness."""
        clone = SectionMatch(
            doc_id=self.doc_id,
            file_name=self.file_name,
            context=self._context,
            content=self._content,
            section=self._section,
            source=source,
            score=self.score,
            loader=self._loader,
            rowid=self.rowid,
        )
        return clone

    # -- value semantics ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SectionMatch):
            return NotImplemented
        return (
            self.doc_id == other.doc_id
            and self.file_name == other.file_name
            and self.source == other.source
            and self.score == other.score
            and self.context == other.context
            and self.content == other.content
        )

    def __repr__(self) -> str:
        return (
            f"SectionMatch(doc_id={self.doc_id!r}, "
            f"file_name={self.file_name!r}, source={self.source!r}, "
            f"score={self.score!r})"
        )

    def brief(self, width: int = 60) -> str:
        """One-line human summary used by examples and the CLI surface."""
        text = self.content if len(self.content) <= width else (
            self.content[: width - 3] + "..."
        )
        return f"[{self.source}:{self.file_name}] {self.context}: {text}"


@dataclass
class ResultSet:
    """All matches for one query, in stable (source, doc, context) order.

    ``partial`` marks a federated answer that is missing at least one
    source's contribution; ``source_errors`` carries the per-source
    error summary so callers (and the HTTP ``<partial>`` envelope) can
    say *which* sources are unreachable and why.  ``deadline_expired``
    marks a ``Partial=1`` answer truncated by its deadline — the matches
    are a correct prefix of the full answer, not a complete one.  A
    complete answer has ``partial=False`` and renders byte-identically
    to the pre-resilience format.

    ``cached`` marks an answer replayed from the generation-keyed result
    cache.  It is *transport metadata*, deliberately not rendered by
    :meth:`to_xml` — a cached answer must stay byte-identical to a fresh
    one; the HTTP layer stamps its envelope (``cached="true"``) instead.
    """

    query_string: str
    matches: list[SectionMatch] = field(default_factory=list)
    partial: bool = False
    source_errors: dict[str, str] = field(default_factory=dict)
    deadline_expired: bool = False
    cached: bool = False

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self):
        return iter(self.matches)

    def __getitem__(self, index: int) -> SectionMatch:
        return self.matches[index]

    def __bool__(self) -> bool:
        return bool(self.matches)

    def add(self, match: SectionMatch) -> None:
        self.matches.append(match)

    def extend(self, matches: list[SectionMatch]) -> None:
        self.matches.extend(matches)

    def documents(self) -> list[str]:
        """Distinct matched document names, preserving first-hit order.

        Deduplication is O(1) per match; the first occurrence of a name
        pins its position, later hits of the same document are dropped.
        """
        seen: set[str] = set()
        ordered: list[str] = []
        for match in self.matches:
            if match.file_name not in seen:
                seen.add(match.file_name)
                ordered.append(match.file_name)
        return ordered

    def ranked(self) -> list[SectionMatch]:
        """Matches by descending relevance score (stable within ties)."""
        return sorted(
            self.matches,
            key=lambda match: (-match.score, match.file_name, match.context),
        )

    def limited(self, limit: int | None) -> "ResultSet":
        """The best ``limit`` matches, in the original presentation order.

        Contract: limiting always happens on **ranked** order — the kept
        matches are the ``limit`` highest-scored ones (ties broken by
        the stable result order, i.e. document order for engine output
        and (source, doc, context) order for federated output).  The
        survivors are then *presented* in their original relative order,
        so a limited result renders exactly like the full result minus
        the dropped tail.  With uniform scores this is precisely "the
        first ``limit`` matches"; with INTENSE-boosted scores it never
        drops a higher-scored match in favour of a lower-scored one.
        """
        if limit is None or len(self.matches) <= limit:
            return self
        by_rank = sorted(
            range(len(self.matches)),
            key=lambda index: -self.matches[index].score,
        )
        keep = set(by_rank[:limit])
        return ResultSet(
            self.query_string,
            [
                match
                for index, match in enumerate(self.matches)
                if index in keep
            ],
            partial=self.partial,
            source_errors=dict(self.source_errors),
            deadline_expired=self.deadline_expired,
            cached=self.cached,
        )

    def to_xml(self) -> Document:
        """Render the canonical ``<results>`` tree for XSLT composition."""
        root = Element("results", {"query": self.query_string})
        if self.partial or self.deadline_expired:
            root.attributes["partial"] = "true"
            envelope = root.make_child("partial")
            if self.deadline_expired:
                truncated = envelope.make_child("deadline-expired")
                truncated.append_text(
                    "deadline expired; results are a truncated prefix"
                )
            for name in sorted(self.source_errors):
                unreachable = envelope.make_child("unreachable", source=name)
                unreachable.append_text(self.source_errors[name])
        for match in self.matches:
            result = root.make_child(
                "result",
                doc=match.file_name,
                source=match.source,
            )
            context = result.make_child("context")
            context.append_text(match.context)
            if match.section is not None:
                # Clone the reconstructed content elements so downstream
                # XSLT can see structure (e.g. INTENSE spans), not just
                # text, and so rendering twice is safe.
                for child in match.section.children:
                    if isinstance(child, Element) and child.tag == "context":
                        continue
                    result.append(child.clone())
            else:
                content = result.make_child("content")
                content.append_text(match.content)
        return Document(root, name="results.xml")
