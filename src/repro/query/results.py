"""Query result model.

A query returns :class:`SectionMatch` objects — one per matched section
(the paper: "the context and content search returns a subsection of the
document where the keyword being searched for occurs").  A
:class:`ResultSet` groups them, remembers the originating query, and
renders the canonical result XML that the XSLT composition step (Fig 7)
consumes::

    <results query="Context=Budget">
      <result doc="p42.ndoc" source="local">
        <context>Budget</context>
        <content>We request $1.2M ...</content>
      </result>
      ...
    </results>
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sgml.dom import Document, Element


@dataclass(frozen=True)
class SectionMatch:
    """One matched section of one document.

    ``section`` is the reconstructed DOM fragment (a ``<section>``
    element); ``source`` names the information source that produced the
    match ("local" for the store the query ran against; federation fills
    in databank source names).
    """

    doc_id: int
    file_name: str
    context: str
    content: str
    section: Element | None = None
    source: str = "local"
    score: float = 1.0

    def brief(self, width: int = 60) -> str:
        """One-line human summary used by examples and the CLI surface."""
        text = self.content if len(self.content) <= width else (
            self.content[: width - 3] + "..."
        )
        return f"[{self.source}:{self.file_name}] {self.context}: {text}"


@dataclass
class ResultSet:
    """All matches for one query, in stable (source, doc, context) order.

    ``partial`` marks a federated answer that is missing at least one
    source's contribution; ``source_errors`` carries the per-source
    error summary so callers (and the HTTP ``<partial>`` envelope) can
    say *which* sources are unreachable and why.  A complete answer has
    ``partial=False`` and renders byte-identically to the pre-resilience
    format.
    """

    query_string: str
    matches: list[SectionMatch] = field(default_factory=list)
    partial: bool = False
    source_errors: dict[str, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self):
        return iter(self.matches)

    def __getitem__(self, index: int) -> SectionMatch:
        return self.matches[index]

    def __bool__(self) -> bool:
        return bool(self.matches)

    def add(self, match: SectionMatch) -> None:
        self.matches.append(match)

    def extend(self, matches: list[SectionMatch]) -> None:
        self.matches.extend(matches)

    def documents(self) -> list[str]:
        """Distinct matched document names, preserving first-seen order."""
        seen: list[str] = []
        for match in self.matches:
            if match.file_name not in seen:
                seen.append(match.file_name)
        return seen

    def ranked(self) -> list[SectionMatch]:
        """Matches by descending relevance score (stable within ties)."""
        return sorted(
            self.matches,
            key=lambda match: (-match.score, match.file_name, match.context),
        )

    def limited(self, limit: int | None) -> "ResultSet":
        if limit is None or len(self.matches) <= limit:
            return self
        return ResultSet(
            self.query_string,
            self.matches[:limit],
            partial=self.partial,
            source_errors=dict(self.source_errors),
        )

    def to_xml(self) -> Document:
        """Render the canonical ``<results>`` tree for XSLT composition."""
        root = Element("results", {"query": self.query_string})
        if self.partial:
            root.attributes["partial"] = "true"
            envelope = root.make_child("partial")
            for name in sorted(self.source_errors):
                unreachable = envelope.make_child("unreachable", source=name)
                unreachable.append_text(self.source_errors[name])
        for match in self.matches:
            result = root.make_child(
                "result",
                doc=match.file_name,
                source=match.source,
            )
            context = result.make_child("context")
            context.append_text(match.context)
            if match.section is not None:
                # Clone the reconstructed content elements so downstream
                # XSLT can see structure (e.g. INTENSE spans), not just
                # text, and so rendering twice is safe.
                for child in match.section.children:
                    if isinstance(child, Element) and child.tag == "context":
                        continue
                    result.append(child.clone())
            else:
                content = result.make_child("content")
                content.append_text(match.content)
        return Document(root, name="results.xml")
