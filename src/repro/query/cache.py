"""The generation-keyed result cache (PR 10 tentpole, part 1).

A :class:`QueryCache` memoizes complete engine answers.  The key is the
*normalized semantic core* of an :class:`~repro.query.ast.XdbQuery` —
every field that changes what the engine returns (context phrases,
content terms + mode, nodename, doc/format filters, limit, index mode)
— plus a **version stamp** that pins the entry to the store state it was
computed against:

* snapshot execution stamps ``("lsn", snapshot.lsn)``.  MVCC makes a
  result at LSN *S* eternally valid *for readers pinned at S*; a new
  request only presents the same stamp when no commit has happened since
  (its fresh pin lands on the same LSN), so an entry is never served
  across a generation bump — invalidation on commit is exact and free.
* live execution stamps ``("gen", doc-generation, xml-generation)``,
  captured **before** the plan runs.  Any commit moves a generation, so
  later lookups miss; if a write raced the plan, the entry was keyed at
  the pre-write stamp and is simply unreachable.  Stale-generation
  entries are purged on the next store (exact invalidation on commit).

Presentation fields (stylesheet, databank, trace, explain, deadline,
extras) are *excluded* from the key: they do not change the match list,
and the replayed :class:`~repro.query.results.ResultSet` is rebuilt with
the caller's own query string, so ``<results query="...">`` renders
exactly as an uncached run would.  Byte-identity of the rendered XML is
the cache's contract, enforced by ``tests/query/test_cache_differential``
and the CI differential gate.

Only *complete* answers are stored (never partial or deadline-truncated
ones), with every lazy match resolved eagerly at store time — the plan's
accessor and snapshot die with the request, so nothing in a cached entry
may load lazily.  Entries are immutable and shared across threads; the
single lock makes the hit path one dict probe under the PR 8 worker
pool.  ``Explain`` runs always bypass the cache: a plan tree is
diagnostics, not an answer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro import obs
from repro.errors import QueryError
from repro.ordbms import Snapshot
from repro.query.ast import XdbQuery
from repro.query.results import SectionMatch

__all__ = ["QueryCache"]

#: Per-match bookkeeping overhead used by the byte estimate (object
#: headers, key share); the estimate bounds memory, it is not an audit.
_MATCH_OVERHEAD = 128

#: Default entry/byte bounds: enough for a busy server's hot set while
#: keeping worst-case memory obvious in a code review.
DEFAULT_CAPACITY = 256
DEFAULT_MAX_BYTES = 8 * 1024 * 1024

Key = tuple
Version = tuple


class QueryCache:
    """LRU result cache, keyed by (normalized query, store version)."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if capacity <= 0:
            raise QueryError("QueryCache capacity must be positive")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        # repro: guarded-by(_lock) LRU pool of immutable entries,
        # key -> (matches tuple, byte estimate); read and written by
        # every worker thread's lookup/store.
        self._entries: OrderedDict[
            Key, tuple[tuple[SectionMatch, ...], int]
        ] = OrderedDict()
        # repro: guarded-by(_lock) running byte estimate of the pool,
        # mirrored to the repro_cache_bytes gauge outside the lock.
        self._bytes = 0
        # repro: guarded-by(_lock) work counters (hit/miss/eviction),
        # published as repro_cache_* series after each operation.
        self.hits = 0
        # repro: guarded-by(_lock) see ``hits``.
        self.misses = 0
        # repro: guarded-by(_lock) see ``hits``.
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- keying -------------------------------------------------------------

    @staticmethod
    def version_for(
        store, snapshot: Snapshot | None
    ) -> Version:
        """The store-state stamp a run executed (or will execute) at.

        Must be captured *before* plan execution: if a write commits
        mid-plan the entry stays keyed at the pre-write stamp, which no
        later lookup can present — unreachable beats stale.
        """
        if snapshot is not None:
            return ("lsn", snapshot.lsn)
        return (
            "gen",
            store.doc_table.generation,
            store.xml_table.generation,
        )

    @staticmethod
    def key_for(query: XdbQuery, use_index: bool, version: Version) -> Key:
        """Normalize the semantic core of ``query`` into a cache key."""
        return (
            query.context.phrases if query.context is not None else None,
            (
                (query.content.terms, query.content.mode)
                if query.content is not None
                else None
            ),
            query.nodename,
            query.doc,
            query.format,
            query.limit,
            use_index,
            version,
        )

    # -- entry access -------------------------------------------------------

    def lookup(self, key: Key) -> tuple[SectionMatch, ...] | None:
        """The cached matches for ``key``, or None on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        if entry is None:
            obs.inc("repro_cache_misses_total", cache="result")
            return None
        obs.inc("repro_cache_hits_total", cache="result")
        return entry[0]

    def store(
        self, key: Key, matches: list[SectionMatch], version: Version
    ) -> None:
        """Admit a complete, eagerly-resolved answer under ``key``.

        ``version`` is the stamp inside ``key``; live-mode stores use it
        to purge entries left over from older generations (the exact
        invalidation-on-commit sweep — cheap, because the pool is small
        and the sweep runs only on misses).
        """
        frozen = tuple(matches)
        size = sum(
            len(match.context) + len(match.content) + _MATCH_OVERHEAD
            for match in frozen
        )
        evicted = 0
        with self._lock:
            if version[0] == "gen":
                stale = [
                    old_key
                    for old_key in self._entries
                    if old_key[-1][0] == "gen" and old_key[-1] != version
                ]
                for old_key in stale:
                    self._bytes -= self._entries.pop(old_key)[1]
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (frozen, size)
            self._bytes += size
            while (
                len(self._entries) > self.capacity
                or (self._bytes > self.max_bytes and len(self._entries) > 1)
            ):
                _, (_, old_size) = self._entries.popitem(last=False)
                self._bytes -= old_size
                self.evictions += 1
                evicted += 1
            total_bytes = self._bytes
        if evicted:
            obs.inc("repro_cache_evictions_total", evicted, cache="result")
        obs.set_gauge("repro_cache_bytes", total_bytes, cache="result")

    # -- introspection ------------------------------------------------------

    def snapshot_counters(self) -> dict[str, int]:
        """A consistent copy of the work counters (tests, benches)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "bytes": self._bytes,
            }
