"""Exception hierarchy for the Lean Middleware reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at the public-API boundary.  Each subsystem raises the
most specific subclass that applies; messages always carry the offending
name or value so failures are diagnosable without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# ORDBMS substrate
# ---------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for errors raised by the ORDBMS substrate."""


class CatalogError(DatabaseError):
    """A schema object (table, index, column) is missing or duplicated."""


class SchemaError(DatabaseError):
    """A table or column definition is invalid."""


class TypeMismatchError(DatabaseError):
    """A value does not conform to the declared column type."""


class ConstraintError(DatabaseError):
    """A NOT NULL, primary-key, or unique constraint was violated."""


class RowIdError(DatabaseError):
    """A physical ROWID is malformed or refers to a missing row."""


class TransactionError(DatabaseError):
    """Illegal transaction state transition (e.g. commit with no begin)."""


class QueryPlanError(DatabaseError):
    """The executor was given an inconsistent or unsupported plan."""


class WalError(DatabaseError):
    """Base class for write-ahead-log failures (device, format, replay)."""


class CorruptLogError(WalError):
    """A WAL record failed its CRC or structure check *mid-log*.

    A bad record followed by well-formed records cannot be a torn tail
    (torn writes only ever damage the end of the log), so the log has
    been corrupted in place and replaying past the damage would apply
    garbage.  Torn tails are handled silently — truncated, never raised.
    """


class RecoveryError(WalError):
    """Crash recovery could not reconstruct a consistent database.

    Raised when the log disagrees with the checkpoint it claims to
    extend — a replayed insert lands at the wrong physical address, a
    record names an unknown table or transaction, or the checkpoint
    itself fails its integrity check.
    """


# ---------------------------------------------------------------------------
# SGML / document layer
# ---------------------------------------------------------------------------


class SgmlError(ReproError):
    """Base class for SGML/XML parsing errors."""


class SgmlSyntaxError(SgmlError):
    """The input could not be parsed even under tolerant rules."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ConverterError(ReproError):
    """A document converter failed or no converter matched the input."""


class UnsupportedFormatError(ConverterError):
    """No registered converter recognises the document format."""


# ---------------------------------------------------------------------------
# XML store and query engine
# ---------------------------------------------------------------------------


class StoreError(ReproError):
    """Base class for NETMARK XML Store failures."""


class DocumentNotFoundError(StoreError):
    """A document id or name does not exist in the store."""


class FsckError(StoreError):
    """The store consistency checker was misused or could not run.

    Note the asymmetry: *violations found in the data* are reported in
    the structured :class:`repro.store.fsck.FsckReport`, never raised —
    fsck's job is to describe damage, not to crash on it.  This error
    covers the checker itself failing (unknown repair code, a database
    without the NETMARK schema).
    """


class QueryError(ReproError):
    """Base class for XDB Query failures."""


class QuerySyntaxError(QueryError):
    """An XDB query string could not be parsed."""


class QueryTimeoutError(QueryError):
    """A query ran past its deadline and was cancelled cooperatively.

    Raised at a plan batch boundary (or a router fan-out boundary) when
    the request's :class:`~repro.resilience.deadline.Budget` expires and
    the caller did not ask for partial results (``Partial=1``).  The
    HTTP layer maps this to 504 with a ``deadline-exceeded`` envelope —
    the query was well-formed, the server just ran out of time.
    """


class QueryCancelledError(QueryError):
    """A query was cancelled by its submitter before it finished.

    Cooperative: the executing plan observes the request's
    :class:`~repro.resilience.deadline.CancellationToken` at batch
    boundaries and stops doing work for a client that is no longer
    waiting (e.g. a :class:`~repro.server.workers.ResponseFuture` whose
    ``result(timeout)`` expired).
    """


# ---------------------------------------------------------------------------
# XSLT subset
# ---------------------------------------------------------------------------


class XsltError(ReproError):
    """Base class for stylesheet compilation/execution failures."""


class XPathError(XsltError):
    """An XPath expression is outside the supported subset or malformed."""


# ---------------------------------------------------------------------------
# Server / federation
# ---------------------------------------------------------------------------


class ServerError(ReproError):
    """Base class for the WebDAV/HTTP server layer."""


class WebDavError(ServerError):
    """A WebDAV request failed; carries the HTTP-style status code."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(f"{status}: {message}")


class FederationError(ReproError):
    """Base class for databank/router failures."""


class UnknownDatabankError(FederationError):
    """A query named a databank that was never registered."""


class CapabilityError(FederationError):
    """A source was asked to execute a query it does not support natively."""


class AllSourcesFailedError(FederationError):
    """Every source in a fan-out failed or was skipped; no answer exists.

    The router degrades to partial results while at least one source
    answers; only a total loss raises.  The HTTP layer maps this to 503
    (the service is temporarily unable to answer, not broken).
    """


# ---------------------------------------------------------------------------
# Resilience (fault injection, retries, circuit breakers)
# ---------------------------------------------------------------------------


class ResilienceError(ReproError):
    """Base class for fault-injection and resilience-policy failures.

    Errors in this branch model *operational* trouble — a remote that is
    down, slow, or deliberately fault-injected — as opposed to logical
    errors (bad query, missing document).  Retry policies treat this
    branch as transient by default.
    """


class SourceUnavailableError(ResilienceError):
    """A component (source, store, filesystem) refused an operation.

    Raised by :class:`repro.resilience.faults.FaultPlan` proxies to model
    a remote that is down; carries the ``component.operation`` site so
    post-mortems can attribute the outage.
    """


class SourceTimeoutError(ResilienceError):
    """An operation exceeded its (logical) time budget.

    Deterministic analogue of a wall-clock timeout: the fault injector
    advances the :class:`~repro.resilience.clock.LogicalClock` by the
    configured latency, then raises this.
    """


class CircuitOpenError(ResilienceError):
    """A circuit breaker is open; the protected call was not attempted.

    Never retried by :class:`~repro.resilience.retry.RetryPolicy` —
    retrying an open circuit would defeat its purpose (shedding load
    from a failing component until the cooldown elapses).
    """


class CrashError(BaseException):
    """An injected process death (crash-point testing only).

    Deliberately derives from :class:`BaseException`, *not*
    :class:`ReproError`: a crash models SIGKILL, so no library-level
    ``except ReproError`` handler (daemon quarantine, retry policies,
    the HTTP error mapper) may observe or absorb it — the "process" is
    simply gone.  Only the crash harness itself catches it, at the
    boundary that stands in for the operating system.
    """


# ---------------------------------------------------------------------------
# Cluster (replication, election, distributed commit)
# ---------------------------------------------------------------------------


class ClusterError(ReproError):
    """Base class for the replicated-cluster layer.

    Covers membership, WAL shipping, election and distributed commit.
    Operational unavailability (a partitioned peer) is modelled with the
    resilience vocabulary (:class:`SourceUnavailableError`); this branch
    is for cluster-protocol failures proper.
    """


class NotCoordinatorError(ClusterError):
    """A write reached a node that is not the current write coordinator.

    Carries the coordinator's name (when one is known) so clients — and
    the HTTP layer's ``<error code="not-coordinator">`` envelope — can
    redirect instead of blindly retrying the same replica.
    """

    def __init__(self, message: str, coordinator: str | None = None) -> None:
        self.coordinator = coordinator
        super().__init__(message)


class NoQuorumError(ClusterError):
    """The cluster cannot form a write quorum; ingest is refused.

    Raised instead of accepting a write that could not be replicated to
    a majority — accepting it would risk losing an acknowledged ingest
    on the next failover, the one guarantee the cluster exists to keep.
    """


class ReplicaQuarantinedError(ClusterError):
    """A replica's shipped log failed verification and was isolated.

    Mid-stream corruption on a follower (a failed CRC with well-formed
    records after it) means that replica's history can no longer be
    trusted; it is quarantined — excluded from reads, acks and elections
    — rather than crashing the cluster.  Rejoining requires a full
    checkpoint resync.
    """


class TwoPhaseError(ClusterError):
    """A distributed commit could not follow the 2PC state machine.

    Participant votes deciding an abort are *not* errors (the
    transaction aborts cleanly); this is for protocol violations — a
    decision record for an unknown transaction, a commit against a
    participant that never prepared and has no journaled payload.
    """


# ---------------------------------------------------------------------------
# Workloads / experiment support
# ---------------------------------------------------------------------------


class WorkloadError(ReproError):
    """Base class for corpus/workload generation failures."""


class CorpusFormatError(WorkloadError):
    """A corpus spec named a document format with no renderer."""


# ---------------------------------------------------------------------------
# Static analysis
# ---------------------------------------------------------------------------


class AnalysisError(ReproError):
    """The invariant analyzer was misconfigured (bad baseline, config)."""


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


class MediatorError(ReproError):
    """Base class for the GAV-mediator baseline."""


class MappingError(MediatorError):
    """A GAV view mapping is inconsistent with the declared schemas."""


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


class ObservabilityError(ReproError):
    """Misuse of the observability layer (bad metric name, span nesting)."""
