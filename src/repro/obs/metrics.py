"""The metrics registry: counters, gauges and histograms with labels.

NETMARK's pitch is *information on demand now* — which is only credible
when the middleware can say where a request's time and I/O went.  This
module is the cost-accounting substrate: named metric families, each
holding labelled series, collected in a :class:`MetricsRegistry` whose
:meth:`~MetricsRegistry.snapshot` is a plain, JSON-serialisable,
deterministically ordered dict (the perf-gate's input) and whose
:meth:`~MetricsRegistry.render_text` is the ``/metrics`` exposition
format.

Naming convention (enforced by :func:`validate_metric_name`):
``repro_<layer>_<name>`` with ``_total`` for counters — e.g.
``repro_ordbms_wal_appends_total``, ``repro_query_queries_total``,
``repro_federation_breaker_state``.

Determinism: nothing here reads a clock or RNG.  Values move only when
instrumented code calls ``inc``/``set``/``observe``, so two identical
runs against a fresh registry produce bit-identical snapshots.

Thread-safety: worker threads (``repro.server.workers``) bump counters
concurrently with the ingest thread and with ``/metrics`` scrapes.  Every
mutation and every read of series state happens under one lock — the
*registry's* lock, shared down into each metric at registration time, so
``snapshot()`` is atomic across families: it can never observe metric A
after a request and metric B before it.  A metric constructed standalone
(outside any registry) carries its own lock until registered.
"""

from __future__ import annotations

import re
import threading
from typing import Iterator

from repro.errors import ObservabilityError

_NAME_RE = re.compile(r"^repro_[a-z0-9]+_[a-z0-9_]+$")

#: Histogram bucket upper bounds, in logical ticks / dimensionless units.
#: Small and fixed so snapshots stay stable and comparable across runs.
DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 1000)


def validate_metric_name(name: str) -> str:
    """Enforce the ``repro_<layer>_<name>`` naming convention."""
    if not _NAME_RE.match(name):
        raise ObservabilityError(
            f"metric name {name!r} does not match repro_<layer>_<name>"
        )
    return name


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    # Hot path (every counter bump): labels are almost always str
    # already, so only pay for coercion when one is not.
    if not labels:
        return ()
    items = sorted(labels.items())
    for pair in items:
        if type(pair[1]) is not str:
            return tuple((str(k), str(v)) for k, v in items)
    return tuple(items)


def _render_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class Metric:
    """One named family of labelled series (base for the three kinds)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = validate_metric_name(name)
        self.help_text = help_text
        #: Reentrant because ``MetricsRegistry.snapshot`` holds the shared
        #: lock while calling back into per-metric readers.  Replaced with
        #: the registry's lock at registration (see module docstring).
        self._lock = threading.RLock()
        # repro: guarded-by(_lock) read-modify-write bumps from any worker
        # thread must not interleave.
        self._series: dict[tuple[tuple[str, str], ...], float] = {}

    def _bump(self, amount: float, labels: dict[str, str]) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def series(self) -> Iterator[tuple[str, float]]:
        """``(rendered_labels, value)`` pairs in deterministic order."""
        with self._lock:
            items = sorted(self._series.items())
        for key, value in items:
            yield _render_labels(key), value

    def value(self, **labels: str) -> float:
        """Current value of one series (0 if never touched)."""
        with self._lock:
            return self._series.get(_label_key(labels), 0)

    def snapshot_into(self, out: dict[str, float]) -> None:
        for rendered, value in self.series():
            out[f"{self.name}{rendered}"] = value

    def render_into(self, lines: list[str]) -> None:
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for rendered, value in self.series():
            lines.append(f"{self.name}{rendered} {_format_value(value)}")


class Counter(Metric):
    """Monotonically increasing count (``_total`` by convention)."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: str) -> None:
        self.add(amount, labels)

    def add(self, amount: float, labels: dict[str, str]) -> None:
        """:meth:`inc` with labels as an already-built dict (hot-path form)."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (by {amount})"
            )
        self._bump(amount, labels)


class Gauge(Metric):
    """A value that goes up and down (breaker states, queue depths)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._series[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels: str) -> None:
        self._bump(amount, labels)

    def dec(self, amount: float = 1, **labels: str) -> None:
        self._bump(-amount, labels)


class Histogram(Metric):
    """Bucketed distribution (per-source latency ticks, span durations).

    Fixed bucket bounds keep two runs' snapshots bit-comparable; the
    snapshot exposes ``_count``, ``_sum`` and one ``_bucket`` series per
    bound (cumulative, Prometheus-style, with the implicit ``+Inf``).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        if not buckets or list(buckets) != sorted(buckets):
            raise ObservabilityError(
                f"histogram {name} needs ascending bucket bounds"
            )
        self.buckets = tuple(float(bound) for bound in buckets)
        # repro: guarded-by(_lock) label key -> [counts per bucket + inf,
        # sum, count]; multi-slot updates must be atomic to observers.
        self._dist: dict[tuple[tuple[str, str], ...], list[float]] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            slot = self._dist.get(key)
            if slot is None:
                slot = [0.0] * (len(self.buckets) + 1) + [0.0, 0.0]
                self._dist[key] = slot
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    slot[index] += 1
            slot[len(self.buckets)] += 1  # +Inf
            slot[-2] += value  # sum
            slot[-1] += 1  # count

    def value(self, **labels: str) -> float:
        """The observation *count* for one series (histogram headline)."""
        with self._lock:
            slot = self._dist.get(_label_key(labels))
            return slot[-1] if slot is not None else 0

    def series(self) -> Iterator[tuple[str, float]]:
        for key, slot in self._dist_items():
            yield _render_labels(key), slot[-1]

    def _dist_items(
        self,
    ) -> list[tuple[tuple[tuple[str, str], ...], list[float]]]:
        """A stable, sorted copy of the distribution (slots copied too)."""
        with self._lock:
            return [(key, list(self._dist[key])) for key in sorted(self._dist)]

    def snapshot_into(self, out: dict[str, float]) -> None:
        for key, slot in self._dist_items():
            base = dict(key)
            for index, bound in enumerate(self.buckets):
                labels = _label_key({**base, "le": _format_value(bound)})
                out[f"{self.name}_bucket{_render_labels(labels)}"] = slot[index]
            inf_labels = _label_key({**base, "le": "+Inf"})
            out[f"{self.name}_bucket{_render_labels(inf_labels)}"] = slot[
                len(self.buckets)
            ]
            rendered = _render_labels(key)
            out[f"{self.name}_sum{rendered}"] = slot[-2]
            out[f"{self.name}_count{rendered}"] = slot[-1]

    def render_into(self, lines: list[str]) -> None:
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key, slot in self._dist_items():
            base = dict(key)
            for index, bound in enumerate(self.buckets):
                labels = _label_key({**base, "le": _format_value(bound)})
                lines.append(
                    f"{self.name}_bucket{_render_labels(labels)} "
                    f"{_format_value(slot[index])}"
                )
            inf_labels = _label_key({**base, "le": "+Inf"})
            lines.append(
                f"{self.name}_bucket{_render_labels(inf_labels)} "
                f"{_format_value(slot[len(self.buckets)])}"
            )
            rendered = _render_labels(key)
            lines.append(
                f"{self.name}_sum{rendered} {_format_value(slot[-2])}"
            )
            lines.append(
                f"{self.name}_count{rendered} {_format_value(slot[-1])}"
            )


def _format_value(value: float) -> str:
    """Integers render bare (``17``), floats keep their point (``0.5``)."""
    if isinstance(value, bool):
        return str(int(value))
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """All metric families of one process (or one test's sandbox)."""

    def __init__(self) -> None:
        #: One lock for the whole registry — shared down into every
        #: registered metric so cross-family snapshots are atomic.
        self._lock = threading.RLock()
        # repro: guarded-by(_lock) registration races (two workers first
        # to touch a counter) must produce exactly one family object.
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, **kwargs)
                metric._lock = self._lock
                self._metrics[name] = metric
            elif type(metric) is not cls:
                raise ObservabilityError(
                    f"metric {name!r} is already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, buckets=buckets
        )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> dict[str, float]:
        """Every series as ``{"name{labels}": value}``, sorted by key.

        Plain data: JSON-serialisable, diff-able, and bit-identical for
        two identical instrumented runs (nothing here is clocked).
        Atomic under concurrency: the registry lock is held across all
        families, so the snapshot is one instant's view, never a mix of
        before-and-after states of a single request.
        """
        with self._lock:
            out: dict[str, float] = {}
            for name in sorted(self._metrics):
                self._metrics[name].snapshot_into(out)
            return dict(sorted(out.items()))

    def render_text(self) -> str:
        """The ``/metrics`` text exposition (Prometheus-compatible)."""
        with self._lock:
            lines: list[str] = []
            for name in sorted(self._metrics):
                self._metrics[name].render_into(lines)
            return "\n".join(lines) + ("\n" if lines else "")
