"""Deterministic operator profiling for the plan/cursor read path.

``Explain=profile`` needs per-operator *timings* that mean the same
thing on every machine and in every run.  Wall time cannot do that (and
the determinism rules ban reading it in library code), so the profiler
counts **work units**: its clock advances once each time any operator in
the plan surfaces a row.  An operator's inclusive cost is then "how many
rows moved anywhere in my subtree while I produced my output" — a
machine-independent analogue of inclusive time that is bit-identical
across runs.

Wall time stays opt-in: a composition root or benchmark may pass
``wall_clock=time.perf_counter`` and operators additionally accumulate
float seconds (reported alongside ticks, never part of the
deterministic contract).
"""

from __future__ import annotations

from typing import Callable


class PlanProfiler:
    """Work-unit clock + accumulators shared by one plan's cursors."""

    __slots__ = ("_ticks", "wall_clock")

    def __init__(self, wall_clock: Callable[[], float] | None = None) -> None:
        self._ticks = 0
        self.wall_clock = wall_clock

    def now(self) -> int:
        return self._ticks

    def advance(self, units: int = 1) -> None:
        self._ticks += units

    @property
    def total_ticks(self) -> int:
        """Rows surfaced anywhere in the plan so far."""
        return self._ticks
