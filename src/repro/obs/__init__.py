"""repro.obs — the observability layer: metrics, tracing, profiling.

A base layer, importable from anywhere (like :mod:`repro.errors`) and
allowed to import nothing above the error vocabulary — so every tier can
report what it does without bending the import DAG.

Three parts:

* :mod:`repro.obs.metrics` — ``Counter``/``Gauge``/``Histogram`` families
  with labelled series, a deterministic ``snapshot()`` and the
  ``/metrics`` text exposition;
* :mod:`repro.obs.trace` — hierarchical spans on logical ticks with JSONL
  export (``NULL_TRACER`` keeps the un-traced hot path free);
* :mod:`repro.obs.profile` — the work-unit profiler behind
  ``Explain=profile``.

Instrumented call sites use the **default registry** through the module
functions below (``obs.inc(...)``, ``obs.set_gauge(...)``,
``obs.observe(...)``) so no constructor threading is needed; tests swap
in a fresh registry with :func:`push_registry`/:func:`reset` to get
bit-identical snapshots for identical runs, and :func:`set_enabled`
turns the whole layer into cheap no-ops for overhead measurements.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    validate_metric_name,
)
from repro.obs.profile import PlanProfiler
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "NullTracer",
    "PlanProfiler",
    "Span",
    "Tracer",
    "get_registry",
    "inc",
    "observe",
    "push_registry",
    "render_text",
    "reset",
    "set_enabled",
    "set_gauge",
    "set_registry",
    "snapshot",
    "validate_metric_name",
]

# repro: guarded-by(gil) hot paths only read the reference; it is swapped whole by harness/app setup before traffic
_REGISTRY = MetricsRegistry()
# repro: guarded-by(gil) one boolean, read/written atomically under the GIL; flipped only by harness setup
_ENABLED = True


def get_registry() -> MetricsRegistry:
    """The process-default registry the instrumented stack reports into."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the default registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def push_registry() -> MetricsRegistry:
    """Install (and return) a fresh registry — the test-sandbox idiom."""
    fresh = MetricsRegistry()
    set_registry(fresh)
    return fresh


def reset() -> None:
    """Discard all collected series (fresh default registry)."""
    push_registry()


def set_enabled(enabled: bool) -> bool:
    """Globally enable/disable metric recording; returns the old flag."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def is_enabled() -> bool:
    return _ENABLED


# -- hot-path recording helpers (one flag check + registry dispatch) --------


def inc(name: str, amount: float = 1, **labels: str) -> None:
    """Increment a counter series on the default registry."""
    if _ENABLED:
        _REGISTRY.counter(name).add(amount, labels)


def set_gauge(name: str, value: float, **labels: str) -> None:
    """Set a gauge series on the default registry."""
    if _ENABLED:
        _REGISTRY.gauge(name).set(value, **labels)


def observe(name: str, value: float, **labels: str) -> None:
    """Record one histogram observation on the default registry."""
    if _ENABLED:
        _REGISTRY.histogram(name).observe(value, **labels)


def snapshot() -> dict[str, float]:
    """The default registry's deterministic snapshot."""
    return _REGISTRY.snapshot()


def render_text() -> str:
    """The default registry's ``/metrics`` text exposition."""
    return _REGISTRY.render_text()
