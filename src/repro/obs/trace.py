"""Deterministic tracing: hierarchical spans over logical time.

A :class:`Tracer` produces :class:`Span` trees — name, attributes,
tick-stamped start/end — mirroring how a request flows through the
ingest → parse → decompose → store and parse → plan → execute → compose
pipelines.  Completed root spans land in the tracer's in-memory
collector; :meth:`Tracer.export_jsonl` renders them as canonical JSONL
(sorted keys, no whitespace variance), so two identical runs export
bit-identical bytes.

Time is *logical*: the tracer reads ticks from a duck-typed clock (any
object with ``now() -> int`` — :class:`repro.resilience.clock.LogicalClock`
qualifies; the layering contract forbids importing it here).  With no
clock supplied the tracer runs its own counter that advances once per
span boundary, so durations deterministically count enclosed span events
rather than wall time.  Wall time is opt-in: pass ``wall_clock=`` a
callable (e.g. ``time.perf_counter`` from a composition root or bench —
library code itself must not read the wall clock) and spans also carry
float durations, which are *excluded* from the deterministic export.

``NULL_TRACER`` is the default for every instrumented component: its
``span`` returns a shared no-op context manager, so the un-traced hot
path pays one truthiness check and nothing else.

Thread-safety: a tracer's *open-span stack* is thread-confined — spans
open and close in LIFO order on the thread doing the work, so per-request
tracers (one per ``/search``) and the daemon's tracer never share a
stack.  The *collected roots* do cross threads (a worker finishes a span
tree, a scraper drains it), so root collection and draining are guarded
by a lock.  ``NULL_TRACER`` is freely shared: it is stateless.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Iterator

from repro.errors import ObservabilityError


class _OwnClock:
    """The tracer's fallback clock: advances once per span boundary."""

    def __init__(self) -> None:
        self._now = 0

    def now(self) -> int:
        return self._now

    def advance(self) -> None:
        self._now += 1

    def reset(self) -> None:
        self._now = 0


class Span:
    """One traced operation: a named interval with attributes and children."""

    __slots__ = (
        "name", "attrs", "start_tick", "end_tick", "children",
        "wall_start", "wall_end",
    )

    def __init__(
        self,
        name: str,
        attrs: dict[str, Any],
        start_tick: int,
        wall_start: float | None = None,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.start_tick = start_tick
        self.end_tick: int | None = None
        self.children: list[Span] = []
        self.wall_start = wall_start
        self.wall_end: float | None = None

    @property
    def ticks(self) -> int:
        """Tick duration (0 while the span is still open)."""
        if self.end_tick is None:
            return 0
        return self.end_tick - self.start_tick

    @property
    def wall_seconds(self) -> float | None:
        if self.wall_start is None or self.wall_end is None:
            return None
        return self.wall_end - self.wall_start

    def to_dict(self, include_wall: bool = False) -> dict[str, Any]:
        """A plain-data rendering of the span tree (deterministic keys)."""
        data: dict[str, Any] = {
            "name": self.name,
            "start_tick": self.start_tick,
            "end_tick": self.end_tick,
            "ticks": self.ticks,
        }
        if self.attrs:
            data["attrs"] = {
                key: self.attrs[key] for key in sorted(self.attrs)
            }
        if include_wall and self.wall_seconds is not None:
            data["wall_seconds"] = self.wall_seconds
        if self.children:
            data["children"] = [
                child.to_dict(include_wall) for child in self.children
            ]
        return data

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, ticks={self.ticks})"


class _ActiveSpan:
    """Context manager closing one span (returned by :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes after the span has started (row counts etc.)."""
        self.span.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._finish(self.span)


class _NoopSpan:
    """The shared do-nothing span handle of :class:`NullTracer`."""

    __slots__ = ()
    span = None

    def annotate(self, **attrs: Any) -> None:
        return

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Builds span trees and collects completed roots in memory."""

    #: Instrumented code checks this before composing attributes, so the
    #: no-op tracer never pays for attribute dict construction.
    enabled = True

    def __init__(
        self,
        clock: Any | None = None,
        wall_clock: Callable[[], float] | None = None,
        max_roots: int = 1024,
    ) -> None:
        self._own_clock = _OwnClock() if clock is None else None
        self._clock = clock if clock is not None else self._own_clock
        self._wall_clock = wall_clock
        # repro: guarded-by(gil) thread-confined by the LIFO span
        # protocol: only the thread doing the traced work touches it.
        self._stack: list[Span] = []
        self._roots_lock = threading.Lock()
        # repro: guarded-by(_roots_lock) completed roots cross threads —
        # appended by the finishing worker, drained by a collector.
        self.roots: list[Span] = []
        self.max_roots = max_roots
        # repro: guarded-by(_roots_lock) bumped together with the
        # append-or-drop decision it explains.
        self.dropped_roots = 0

    # -- span construction -------------------------------------------------

    def span(self, name: str, /, **attrs: Any) -> _ActiveSpan:
        """Open a child span of the current span (or a new root).

        ``name`` is positional-only so an attribute may also be called
        ``name`` (e.g. ``span("store", name=file_name)``).
        """
        if self._own_clock is not None:
            self._own_clock.advance()
        wall = self._wall_clock() if self._wall_clock is not None else None
        span = Span(name, attrs, self._clock.now(), wall)
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)
        return _ActiveSpan(self, span)

    def _finish(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ObservabilityError(
                f"span {span.name!r} closed out of order"
            )
        self._stack.pop()
        if self._own_clock is not None:
            self._own_clock.advance()
        span.end_tick = self._clock.now()
        if self._wall_clock is not None:
            span.wall_end = self._wall_clock()
        if not self._stack:
            with self._roots_lock:
                if len(self.roots) >= self.max_roots:
                    self.dropped_roots += 1
                else:
                    self.roots.append(span)

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # -- collection ---------------------------------------------------------

    def take_roots(self) -> list[Span]:
        """Drain and return the completed root spans (oldest first)."""
        with self._roots_lock:
            roots, self.roots = self.roots, []
        return roots

    def reset(self) -> None:
        self._stack.clear()
        with self._roots_lock:
            self.roots.clear()
            self.dropped_roots = 0
        if self._own_clock is not None:
            self._own_clock.reset()

    def export_jsonl(self) -> str:
        """One canonical JSON line per completed root span tree.

        Wall-time fields are excluded on purpose: the export is the
        deterministic record (bit-identical across identical runs).
        """
        with self._roots_lock:
            roots = list(self.roots)
        return "".join(
            json.dumps(
                root.to_dict(include_wall=False),
                sort_keys=True,
                separators=(",", ":"),
            )
            + "\n"
            for root in roots
        )


class NullTracer(Tracer):
    """The no-op tracer: every span is the shared do-nothing handle."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, /, **attrs: Any) -> _NoopSpan:  # type: ignore[override]
        return _NOOP_SPAN


#: Shared default for every instrumented component.
NULL_TRACER = NullTracer()
