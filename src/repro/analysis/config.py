"""Configuration for the invariant analyzer.

Everything a rule needs to know about *this* codebase — the layer map,
the files allowed to mint ROWIDs or mutate private state, the exception
policy — lives here, so the rule implementations stay generic AST
walkers.
"""

from __future__ import annotations

import builtins
from dataclasses import dataclass, field


def _builtin_exception_names() -> frozenset[str]:
    """Names of every builtin exception class (``ValueError``, ...)."""
    names = set()
    for name in dir(builtins):
        obj = getattr(builtins, name)
        if isinstance(obj, type) and issubclass(obj, BaseException):
            names.add(name)
    return frozenset(names)


#: The import DAG between ``repro.*`` units.  A *unit* is a direct child
#: of the ``repro`` package: a subpackage (``ordbms``) or a top-level
#: module by stem (``netmark``, ``errors``); ``repro/__init__.py`` is the
#: pseudo-unit ``__root__``.  Each unit may import itself, everything in
#: :attr:`AnalysisConfig.universal_units`, and the units listed here.
#: Note what is *absent*: ``federation`` appears only under ``server``
#: and ``apps`` — everything else must stay ignorant of the federated
#: tier (netmark's facade carries per-line pragmas for its wiring role).
DEFAULT_LAYERS: dict[str, frozenset[str]] = {
    "errors": frozenset(),
    # Observability is a base layer like the error vocabulary: every
    # tier may report into it (it is in ``universal_units``), and it may
    # import nothing above ``errors`` itself — a metrics layer that
    # reached into the tiers it measures would invert the DAG.
    "obs": frozenset(),
    "analysis": frozenset(),
    "ordbms": frozenset(),
    "sgml": frozenset(),
    # Resilience primitives (clock, retry, breaker, faults) sit below the
    # tiers they protect — the fault proxies are duck-typed, so the
    # package needs nothing from federation/server.  The chaos *harness*
    # module is the exception: a composition root that drives the
    # federated stack, annotated with per-line layering pragmas like the
    # netmark facade.
    "resilience": frozenset(),
    "converters": frozenset({"sgml"}),
    "store": frozenset({"ordbms", "sgml", "converters"}),
    "query": frozenset({"ordbms", "sgml", "store"}),
    "xslt": frozenset({"sgml"}),
    "federation": frozenset(
        {"ordbms", "sgml", "store", "query", "resilience"}
    ),
    "server": frozenset(
        {"sgml", "store", "query", "xslt", "federation", "resilience"}
    ),
    "netmark": frozenset(
        {"ordbms", "sgml", "store", "query", "server", "resilience"}
    ),
    "baselines": frozenset({"ordbms", "sgml", "store"}),
    "workloads": frozenset({"sgml", "converters", "store", "query"}),
    "costmodel": frozenset(
        {"ordbms", "store", "query", "workloads", "baselines"}
    ),
}


#: Module-granular import contracts inside units, for the read-path hot
#: spots the unit-level DAG is too coarse for.  Keys are dotted module
#: ids relative to ``repro`` (``store.accessor``); values are the units
#: and modules that module may import (plus itself and the universal
#: units).  Granting a whole unit (``ordbms``) grants all its modules;
#: granting a module (``store.schema``) grants only that module — the
#: unit's facade stays off-limits, which is also what keeps these leaf
#: modules cycle-free.
DEFAULT_MODULE_LAYERS: dict[str, frozenset[str]] = {
    # The batched tree accessor is the substrate every read rides on: it
    # may see the ORDBMS, the node-type vocabulary and the schema names,
    # but never composition, the store facade or the query tier.
    "store.accessor": frozenset({"ordbms", "sgml", "store.schema"}),
    # The plan algebra sits between the store and the engine.  It must
    # not import the engine (the engine compiles queries *into* plans)
    # or the query-language parser — compile/execute is a one-way street.
    "query.plan": frozenset(
        {"ordbms", "sgml", "store", "query.ast", "query.results"}
    ),
    # The WAL is the bottom of the durability stack: record codec and log
    # devices only.  It must not import the database, tables or snapshot
    # machinery — ``database.py`` imports *it* at runtime, and recovery
    # feeds it parsed records, so anything more would be a cycle.
    "ordbms.wal": frozenset({"ordbms.rowid", "ordbms.valuecodec"}),
    # Recovery sits on top of the whole ORDBMS unit (it rebuilds
    # databases from checkpoints and replays logs into live tables).
    "ordbms.recovery": frozenset({"ordbms"}),
    # fsck reads the NETMARK schema through the ORDBMS and the node-type
    # vocabulary; it must not touch composition, the store facade or the
    # query tier — a checker that imported what it checks derived state
    # *through* would be checking itself.
    "store.fsck": frozenset({"ordbms", "sgml", "store.schema"}),
}


@dataclass(frozen=True)
class AnalysisConfig:
    """Tunable policy for one analyzer run."""

    #: unit -> units it may import (see :data:`DEFAULT_LAYERS`).
    layers: dict[str, frozenset[str]] = field(
        default_factory=lambda: dict(DEFAULT_LAYERS)
    )
    #: module id -> import grants (see :data:`DEFAULT_MODULE_LAYERS`).
    module_layers: dict[str, frozenset[str]] = field(
        default_factory=lambda: dict(DEFAULT_MODULE_LAYERS)
    )
    #: Units importable from anywhere (the error vocabulary and the
    #: observability base layer).
    universal_units: frozenset[str] = frozenset({"errors", "obs"})
    #: Units free to import anything: the application tier and the
    #: package facade sit above the whole DAG.
    unrestricted_units: frozenset[str] = frozenset({"apps", "__root__"})

    #: Builtin exception names, for the raise/except/class-base checks.
    builtin_exceptions: frozenset[str] = field(
        default_factory=_builtin_exception_names
    )
    #: Builtins that *may* be raised anywhere (abstract-method guards).
    allowed_builtin_raises: frozenset[str] = frozenset(
        {"NotImplementedError"}
    )
    #: Path suffix of the module that owns the exception hierarchy;
    #: classes there may derive from builtins, nothing elsewhere may.
    errors_module: str = "repro/errors.py"

    #: Path suffixes of modules allowed to construct RowId from raw ints.
    rowid_minters: frozenset[str] = frozenset({"ordbms/rowid.py"})
    #: Path suffixes of modules allowed to mutate other objects' private
    #: state (the transaction/recovery machinery rewrites heap internals
    #: by design).
    mutation_exempt: frozenset[str] = frozenset(
        {"ordbms/transaction.py", "ordbms/executor.py"}
    )

    #: A path containing any of these parts is exempt from the
    #: determinism rules (benchmarks time things; that is their job).
    determinism_exempt_parts: frozenset[str] = frozenset({"benchmarks"})
    #: ``time`` module functions that read the wall clock.
    wallclock_time_functions: frozenset[str] = frozenset(
        {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
        }
    )
    #: ``random`` module names that do NOT go through an explicit seed.
    #: Only the seedable class constructor is allowed.
    seeded_random_names: frozenset[str] = frozenset({"Random"})


#: The configuration CI and the meta-test run with.
DEFAULT_CONFIG = AnalysisConfig()
