"""Configuration for the invariant analyzer.

Everything a rule needs to know about *this* codebase — the layer map,
the files allowed to mint ROWIDs or mutate private state, the exception
policy — lives here, so the rule implementations stay generic AST
walkers.
"""

from __future__ import annotations

import builtins
from dataclasses import dataclass, field


def _builtin_exception_names() -> frozenset[str]:
    """Names of every builtin exception class (``ValueError``, ...)."""
    names = set()
    for name in dir(builtins):
        obj = getattr(builtins, name)
        if isinstance(obj, type) and issubclass(obj, BaseException):
            names.add(name)
    return frozenset(names)


#: The import DAG between ``repro.*`` units.  A *unit* is a direct child
#: of the ``repro`` package: a subpackage (``ordbms``) or a top-level
#: module by stem (``netmark``, ``errors``); ``repro/__init__.py`` is the
#: pseudo-unit ``__root__``.  Each unit may import itself, everything in
#: :attr:`AnalysisConfig.universal_units`, and the units listed here.
#: Note what is *absent*: ``federation`` appears only under ``server``,
#: ``cluster`` and ``apps`` — the lower tiers stay ignorant of the
#: federated tier (netmark's facade carries per-line pragmas for its
#: wiring role).
DEFAULT_LAYERS: dict[str, frozenset[str]] = {
    "errors": frozenset(),
    # Observability is a base layer like the error vocabulary: every
    # tier may report into it (it is in ``universal_units``), and it may
    # import nothing above ``errors`` itself — a metrics layer that
    # reached into the tiers it measures would invert the DAG.
    "obs": frozenset(),
    "analysis": frozenset(),
    "ordbms": frozenset(),
    "sgml": frozenset(),
    # Resilience primitives (clock, retry, breaker, faults) sit below the
    # tiers they protect — the fault proxies are duck-typed, so the
    # package needs nothing from federation/server.  The chaos *harness*
    # module is the exception: a composition root that drives the
    # federated stack, annotated with per-line layering pragmas like the
    # netmark facade.
    "resilience": frozenset(),
    "converters": frozenset({"sgml"}),
    "store": frozenset({"ordbms", "sgml", "converters"}),
    # The query tier sees ``resilience`` for exactly one reason: plan
    # execution checks the request's deadline/cancellation budget at
    # operator pull boundaries (cooperative cancellation).
    "query": frozenset({"ordbms", "sgml", "store", "resilience"}),
    "xslt": frozenset({"sgml"}),
    "federation": frozenset(
        {"ordbms", "sgml", "store", "query", "resilience"}
    ),
    # The cluster is a composition tier like ``server``: it replicates
    # the durable store (ordbms/store), elects over the resilience
    # primitives, and load-balances reads through federation sources.
    "cluster": frozenset(
        {
            "ordbms", "sgml", "store", "query", "converters",
            "resilience", "federation",
        }
    ),
    "server": frozenset(
        {"sgml", "store", "query", "xslt", "federation", "resilience"}
    ),
    "netmark": frozenset(
        {"ordbms", "sgml", "store", "query", "server", "resilience"}
    ),
    "baselines": frozenset({"ordbms", "sgml", "store"}),
    "workloads": frozenset({"sgml", "converters", "store", "query"}),
    "costmodel": frozenset(
        {"ordbms", "store", "query", "workloads", "baselines"}
    ),
}


#: Module-granular import contracts inside units, for the read-path hot
#: spots the unit-level DAG is too coarse for.  Keys are dotted module
#: ids relative to ``repro`` (``store.accessor``); values are the units
#: and modules that module may import (plus itself and the universal
#: units).  Granting a whole unit (``ordbms``) grants all its modules;
#: granting a module (``store.schema``) grants only that module — the
#: unit's facade stays off-limits, which is also what keeps these leaf
#: modules cycle-free.
DEFAULT_MODULE_LAYERS: dict[str, frozenset[str]] = {
    # The batched tree accessor is the substrate every read rides on: it
    # may see the ORDBMS, the node-type vocabulary, the schema names and
    # the shared lift pool it memoizes through — but never composition,
    # the store facade or the query tier.
    "store.accessor": frozenset(
        {"ordbms", "sgml", "store.schema", "store.liftcache"}
    ),
    # The cross-query lift pool is a leaf: pure keyed storage under one
    # lock.  It needs the ROWID vocabulary for typing and nothing else —
    # a cache that imported the accessor (or the store facade) that
    # feeds it would be a cycle.
    "store.liftcache": frozenset({"ordbms"}),
    # The result cache keys query ASTs and stores result matches; it
    # must not import the engine (the engine consults *it*), the plan
    # algebra, or the store facade — versions arrive as plain stamps.
    "query.cache": frozenset(
        {"ordbms", "sgml", "query.ast", "query.results"}
    ),
    # The plan algebra sits between the store and the engine.  It must
    # not import the engine (the engine compiles queries *into* plans)
    # or the query-language parser — compile/execute is a one-way street.
    # ``resilience.deadline`` is granted for the per-pull budget check;
    # the rest of the resilience unit (retry, breaker, faults) stays
    # off-limits to operators.
    "query.plan": frozenset(
        {
            "ordbms", "sgml", "store", "query.ast", "query.results",
            "resilience.deadline",
        }
    ),
    # The deadline/budget vocabulary is a base-layer primitive like the
    # clock: every tier consults it, so it may import nothing above the
    # error vocabulary (not even the rest of its own unit).
    "resilience.deadline": frozenset(),
    # The WAL is the bottom of the durability stack: record codec and log
    # devices only.  It must not import the database, tables or snapshot
    # machinery — ``database.py`` imports *it* at runtime, and recovery
    # feeds it parsed records, so anything more would be a cycle.
    "ordbms.wal": frozenset({"ordbms.rowid", "ordbms.valuecodec"}),
    # Recovery sits on top of the whole ORDBMS unit (it rebuilds
    # databases from checkpoints and replays logs into live tables).
    "ordbms.recovery": frozenset({"ordbms"}),
    # fsck reads the NETMARK schema through the ORDBMS and the node-type
    # vocabulary; it must not touch composition, the store facade or the
    # query tier — a checker that imported what it checks derived state
    # *through* would be checking itself.
    "store.fsck": frozenset({"ordbms", "sgml", "store.schema"}),
    # The analyzer's own dataflow stack is layered the same way the
    # durability stack is: the CFG builder is pure AST lowering, the
    # fixpoint engine sees only graphs, and the call-graph indexer sees
    # only parsed file contexts — none of them may reach the rules or
    # the driver that orchestrates them.
    "analysis.cfg": frozenset(),
    "analysis.dataflow": frozenset({"analysis.cfg"}),
    "analysis.callgraph": frozenset({"analysis.core"}),
    # The shipping codec is log-records-in, log-records-out: it reads
    # the coordinator's device through the WAL codec and nothing else —
    # a shipper that imported the store or the replica would entangle
    # the wire format with the state it transports.
    "cluster.ship": frozenset({"ordbms.wal"}),
    # Bully election is pure membership arithmetic over the simulated
    # network; it must not see stores, replicas or the WAL — the caller
    # hands it priorities, it hands back a winner.
    "cluster.election": frozenset({"resilience"}),
}


#: Method names that mutate their receiver.  The shared-state rules
#: treat a call ``<module-var>.<name>(...)`` as a write to that variable
#: when ``<name>`` is listed here; anything else (``.get``, ``.render``)
#: is presumed a read.  ``counter``/``gauge``/``histogram`` are included
#: because the metrics registry's accessors create series on first use.
DEFAULT_MUTATOR_METHODS: frozenset[str] = frozenset(
    {
        "add", "append", "appendleft", "clear", "counter", "define",
        "discard", "extend", "gauge", "histogram", "inc", "insert",
        "install", "observe", "pop", "popitem", "popleft", "push",
        "record", "register", "remove", "set", "set_enabled",
        "setdefault", "update", "write",
    }
)


#: Resource constructors called by bare name: name -> release methods.
#: ``x = open(...)`` must reach every function exit closed, escaped
#: (returned/stored/passed on), or inside a ``with``.
DEFAULT_RESOURCE_CALLS: dict[str, frozenset[str]] = {
    "open": frozenset({"close"}),
    "FileLogDevice": frozenset({"close"}),
}

#: Resource-producing *methods* (attribute calls): the transaction and
#: cursor factories.  ``db.begin()`` without commit/rollback/close on
#: some path is a leaked transaction.
DEFAULT_RESOURCE_METHODS: dict[str, frozenset[str]] = {
    "begin": frozenset({"commit", "rollback", "close"}),
    "cursor": frozenset({"close"}),
}


#: Exception-flow policy: module id -> exception names an entry point in
#: that module may let escape (an escaping class must be one of these or
#: a subclass).  Longest matching prefix wins; modules with no matching
#: prefix are not checked.  The table *is* the public error contract:
#: the HTTP facade maps everything to status codes (only the stylesheet
#: installer's validation error passes through), the ingest daemon
#: quarantines per-file failures and surfaces only server-tier faults,
#: and the facades surface the full domain vocabulary.
DEFAULT_EXCEPTION_POLICY: dict[str, frozenset[str]] = {
    "server.http": frozenset({"XsltError"}),
    "server.daemon": frozenset({"ServerError"}),
    "server.webdav": frozenset({"ServerError"}),
    "netmark": frozenset({"ReproError"}),
    "federation": frozenset({"ReproError"}),
    "cluster": frozenset({"ReproError"}),
}

#: Exceptions that may escape *any* entry point: the crash-injection
#: signal (which models SIGKILL and must never be caught), the
#: abstract-method and invariant guards, and the observability layer's
#: own config errors (every instrumented function transitively reaches
#: them).
DEFAULT_UBIQUITOUS_EXCEPTIONS: frozenset[str] = frozenset(
    {"CrashError", "NotImplementedError", "AssertionError",
     "ObservabilityError"}
)


#: Call-graph roots of the daemon ingest path (writers).
DEFAULT_INGEST_ROOTS: frozenset[str] = frozenset(
    {
        "server.daemon.NetmarkDaemon.poll",
        "server.daemon.NetmarkDaemon.run_until_idle",
        "server.daemon.NetmarkDaemon.startup_recovery",
        "netmark.Netmark.ingest",
    }
)

#: Call-graph roots of the query read path (readers).
DEFAULT_READ_ROOTS: frozenset[str] = frozenset(
    {
        "server.http.NetmarkHttpApi.request",
        "netmark.Netmark.search",
        "netmark.Netmark.federated_search",
        "federation.router.Router.execute",
    }
)


@dataclass(frozen=True)
class AnalysisConfig:
    """Tunable policy for one analyzer run."""

    #: unit -> units it may import (see :data:`DEFAULT_LAYERS`).
    layers: dict[str, frozenset[str]] = field(
        default_factory=lambda: dict(DEFAULT_LAYERS)
    )
    #: module id -> import grants (see :data:`DEFAULT_MODULE_LAYERS`).
    module_layers: dict[str, frozenset[str]] = field(
        default_factory=lambda: dict(DEFAULT_MODULE_LAYERS)
    )
    #: Units importable from anywhere (the error vocabulary and the
    #: observability base layer).
    universal_units: frozenset[str] = frozenset({"errors", "obs"})
    #: Units free to import anything: the application tier and the
    #: package facade sit above the whole DAG.
    unrestricted_units: frozenset[str] = frozenset({"apps", "__root__"})

    #: Builtin exception names, for the raise/except/class-base checks.
    builtin_exceptions: frozenset[str] = field(
        default_factory=_builtin_exception_names
    )
    #: Builtins that *may* be raised anywhere (abstract-method guards).
    allowed_builtin_raises: frozenset[str] = frozenset(
        {"NotImplementedError"}
    )
    #: Path suffix of the module that owns the exception hierarchy;
    #: classes there may derive from builtins, nothing elsewhere may.
    errors_module: str = "repro/errors.py"

    #: Path suffixes of modules allowed to construct RowId from raw ints.
    rowid_minters: frozenset[str] = frozenset({"ordbms/rowid.py"})
    #: Path suffixes of modules allowed to mutate other objects' private
    #: state (the transaction/recovery machinery rewrites heap internals
    #: by design).
    mutation_exempt: frozenset[str] = frozenset(
        {"ordbms/transaction.py", "ordbms/executor.py"}
    )

    #: A path containing any of these parts is exempt from the
    #: determinism rules (benchmarks time things; that is their job).
    determinism_exempt_parts: frozenset[str] = frozenset({"benchmarks"})
    #: ``time`` module functions that read the wall clock.
    wallclock_time_functions: frozenset[str] = frozenset(
        {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
        }
    )
    #: ``random`` module names that do NOT go through an explicit seed.
    #: Only the seedable class constructor is allowed.
    seeded_random_names: frozenset[str] = frozenset({"Random"})

    # -- whole-program dataflow policy --------------------------------------

    #: Receiver methods counted as writes by the shared-state rules.
    mutator_methods: frozenset[str] = DEFAULT_MUTATOR_METHODS
    #: Bare-name resource constructors -> release method names.
    resource_calls: dict[str, frozenset[str]] = field(
        default_factory=lambda: dict(DEFAULT_RESOURCE_CALLS)
    )
    #: Resource-producing attribute calls -> release method names.
    resource_methods: dict[str, frozenset[str]] = field(
        default_factory=lambda: dict(DEFAULT_RESOURCE_METHODS)
    )
    #: Module-prefix -> allowed escaping exceptions for entry points.
    exception_policy: dict[str, frozenset[str]] = field(
        default_factory=lambda: dict(DEFAULT_EXCEPTION_POLICY)
    )
    #: Exceptions every entry point may let escape.
    ubiquitous_exceptions: frozenset[str] = DEFAULT_UBIQUITOUS_EXCEPTIONS
    #: Function qualnames rooting the ingest (writer) call paths.
    ingest_roots: frozenset[str] = DEFAULT_INGEST_ROOTS
    #: Function qualnames rooting the query (reader) call paths.
    read_roots: frozenset[str] = DEFAULT_READ_ROOTS


#: The configuration CI and the meta-test run with.
DEFAULT_CONFIG = AnalysisConfig()
