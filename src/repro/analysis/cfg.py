"""Intraprocedural control-flow graphs over function bodies.

:func:`build_cfg` lowers one function (or module) body into a graph of
statement nodes with two synthetic endpoints, ``entry`` and ``exit``.
The dataflow engine (:mod:`repro.analysis.dataflow`) runs fixpoint
analyses over it; the resource-lifecycle rule is the first client.

Precision contract (what the graph does and does not model):

* **Branches, loops, with** — modeled exactly: ``if``/``while``/``for``
  bodies and else-arms fork and join; ``break``/``continue`` jump to the
  loop exit/header; ``with`` is a plain statement followed by its body
  (the context manager's cleanup guarantee is the *rules'* knowledge,
  not the graph's).
* **try/except/finally** — every statement inside a ``try`` body gets an
  *exception edge* to each of its handlers and to the ``finally`` block,
  so a may-analysis sees the path where the body is cut short.
  ``return``/``raise``/``break``/``continue`` route through every
  enclosing ``finally`` before reaching their target.
* **Shared finally** — each ``finally`` body is built once; abrupt and
  normal exits merge through it.  That over-approximates paths (a state
  can appear to flow from an abrupt route to the normal continuation),
  which is safe for the may-analyses this package runs.
* **Implicit exceptions outside try** — *not* modeled.  If every
  statement could jump to ``exit``, every fact would reach ``exit`` and
  may-analyses would drown in noise.  A raise site outside a ``try`` is
  modeled only when it is an explicit ``raise``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

ENTRY = "entry"
EXIT = "exit"
STMT = "stmt"


@dataclass
class CfgNode:
    """One graph node: a statement, or a synthetic entry/exit."""

    index: int
    stmt: ast.AST | None
    kind: str  # ENTRY | EXIT | STMT

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)


@dataclass
class Cfg:
    """The graph: nodes plus successor sets, entry at 0, exit at 1."""

    nodes: list[CfgNode] = field(default_factory=list)
    succs: list[set[int]] = field(default_factory=list)
    entry: int = 0
    exit: int = 1

    def preds(self) -> list[set[int]]:
        """Predecessor sets, computed on demand."""
        preds: list[set[int]] = [set() for _ in self.nodes]
        for source, targets in enumerate(self.succs):
            for target in targets:
                preds[target].add(source)
        return preds

    def statement_nodes(self) -> list[CfgNode]:
        return [node for node in self.nodes if node.kind == STMT]


@dataclass
class _FinallyFrame:
    """An enclosing ``finally`` an abrupt exit must route through."""

    entry: int
    frontier: set[int]
    #: Loop-nesting depth the owning ``try`` sits at; ``break`` and
    #: ``continue`` only route through finallys at or above their loop.
    loop_depth: int


@dataclass
class _LoopFrame:
    head: int
    break_sources: set[int] = field(default_factory=set)


class _Builder:
    def __init__(self) -> None:
        self.nodes: list[CfgNode] = [
            CfgNode(0, None, ENTRY),
            CfgNode(1, None, EXIT),
        ]
        self.succs: list[set[int]] = [set(), set()]
        #: Exception landing pads (handler/finally entries) for each
        #: ``try`` body currently being built, innermost last.
        self._exc_targets: list[list[int]] = []
        self._finally_stack: list[_FinallyFrame] = []
        self._loop_stack: list[_LoopFrame] = []

    # -- graph primitives ---------------------------------------------------

    def _new_node(self, stmt: ast.AST) -> int:
        index = len(self.nodes)
        self.nodes.append(CfgNode(index, stmt, STMT))
        self.succs.append(set())
        # Any statement inside a try body may be cut short: wire the
        # exception edge to every active landing pad.
        for targets in self._exc_targets:
            for target in targets:
                self.succs[index].add(target)
        return index

    def _edges(self, sources: set[int], target: int) -> None:
        for source in sources:
            self.succs[source].add(target)

    # -- abrupt-exit routing ------------------------------------------------

    def _route_through_finallys(
        self, sources: set[int], frames: list[_FinallyFrame]
    ) -> set[int]:
        """Connect ``sources`` through each finally; returns the tail."""
        current = sources
        for frame in reversed(frames):
            self._edges(current, frame.entry)
            current = frame.frontier
        return current

    def _abrupt_to_exit(self, node: int) -> None:
        tail = self._route_through_finallys({node}, self._finally_stack)
        self._edges(tail, 1)

    def _abrupt_to_loop(self, node: int, target: str) -> None:
        if not self._loop_stack:
            return  # malformed source; the parser would have said so
        loop = self._loop_stack[-1]
        depth = len(self._loop_stack)
        inner = [
            frame for frame in self._finally_stack
            if frame.loop_depth >= depth
        ]
        tail = self._route_through_finallys({node}, inner)
        if target == "break":
            loop.break_sources |= tail
        else:
            self._edges(tail, loop.head)

    # -- statement lowering -------------------------------------------------

    def flow(self, stmts: list[ast.stmt], preds: set[int]) -> set[int]:
        """Lower a statement list; returns the fall-through frontier."""
        current = preds
        for stmt in stmts:
            current = self._flow_stmt(stmt, current)
        return current

    def _flow_stmt(self, stmt: ast.stmt, preds: set[int]) -> set[int]:
        if isinstance(stmt, ast.If):
            return self._flow_if(stmt, preds)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._flow_loop(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._flow_try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._new_node(stmt)
            self._edges(preds, node)
            return self.flow(stmt.body, {node})
        if isinstance(stmt, ast.Return):
            node = self._new_node(stmt)
            self._edges(preds, node)
            self._abrupt_to_exit(node)
            return set()
        if isinstance(stmt, ast.Raise):
            node = self._new_node(stmt)
            self._edges(preds, node)
            # Landing pads were wired by _new_node when inside a try
            # body; outside one, the raise unwinds through finallys.
            self._abrupt_to_exit(node)
            return set()
        if isinstance(stmt, ast.Break):
            node = self._new_node(stmt)
            self._edges(preds, node)
            self._abrupt_to_loop(node, "break")
            return set()
        if isinstance(stmt, ast.Continue):
            node = self._new_node(stmt)
            self._edges(preds, node)
            self._abrupt_to_loop(node, "continue")
            return set()
        if isinstance(stmt, ast.Match):
            return self._flow_match(stmt, preds)
        # Simple statements — and nested def/class, which are opaque.
        node = self._new_node(stmt)
        self._edges(preds, node)
        return {node}

    def _flow_if(self, stmt: ast.If, preds: set[int]) -> set[int]:
        node = self._new_node(stmt)
        self._edges(preds, node)
        out = self.flow(stmt.body, {node})
        if stmt.orelse:
            out |= self.flow(stmt.orelse, {node})
        else:
            out |= {node}
        return out

    def _flow_loop(self, stmt: ast.stmt, preds: set[int]) -> set[int]:
        head = self._new_node(stmt)
        self._edges(preds, head)
        frame = _LoopFrame(head)
        self._loop_stack.append(frame)
        body_out = self.flow(stmt.body, {head})  # type: ignore[attr-defined]
        self._edges(body_out, head)
        self._loop_stack.pop()
        orelse = getattr(stmt, "orelse", [])
        out = self.flow(orelse, {head}) if orelse else {head}
        return out | frame.break_sources

    def _flow_match(self, stmt: ast.Match, preds: set[int]) -> set[int]:
        node = self._new_node(stmt)
        self._edges(preds, node)
        out: set[int] = {node}
        for case in stmt.cases:
            out |= self.flow(case.body, {node})
        return out

    def _flow_try(self, stmt: ast.Try, preds: set[int]) -> set[int]:
        # Build the finally subgraph first so abrupt exits inside the
        # body can route through it the moment they are lowered.
        finally_frame: _FinallyFrame | None = None
        if stmt.finalbody:
            fin_entry = len(self.nodes)
            fin_frontier = self.flow(stmt.finalbody, set())
            finally_frame = _FinallyFrame(
                entry=fin_entry,
                frontier=fin_frontier,
                loop_depth=len(self._loop_stack),
            )

        # Handler landing pads: one node per ExceptHandler clause.
        handler_nodes = [self._new_node(handler) for handler in stmt.handlers]
        pads = list(handler_nodes)
        if finally_frame is not None:
            pads.append(finally_frame.entry)

        self._exc_targets.append(pads)
        if finally_frame is not None:
            self._finally_stack.append(finally_frame)
        body_out = self.flow(stmt.body, preds)
        self._exc_targets.pop()

        if stmt.orelse:
            body_out = self.flow(stmt.orelse, body_out)

        handler_out: set[int] = set()
        for handler, node in zip(stmt.handlers, handler_nodes):
            handler_out |= self.flow(handler.body, {node})

        if finally_frame is not None:
            self._finally_stack.pop()

        if finally_frame is None:
            return body_out | handler_out
        self._edges(body_out | handler_out, finally_frame.entry)
        # The unmatched-exception route: the finally completes and the
        # exception keeps unwinding (through outer finallys, then out).
        tail = self._route_through_finallys(
            set(finally_frame.frontier), self._finally_stack
        )
        self._edges(tail, 1)
        return set(finally_frame.frontier)


def build_cfg(
    func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
) -> Cfg:
    """Lower ``func``'s body into a :class:`Cfg`."""
    builder = _Builder()
    frontier = builder.flow(list(func.body), {0})
    builder._edges(frontier, 1)
    return Cfg(nodes=builder.nodes, succs=builder.succs)
