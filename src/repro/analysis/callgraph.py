"""Project-wide symbol table and call graph over ``repro.*`` sources.

:func:`build_index` turns the full set of parsed :class:`FileContext`\\ s
into a :class:`ProjectIndex`: per-module symbol tables (functions,
classes, module-level variables, import aliases), a call graph keyed by
dotted qualnames (``server.daemon.NetmarkDaemon.poll``), the inventory
of module-state mutation sites, and per-call-site resolution results for
the exception-flow rule.

Resolution is deliberately static and conservative:

* ``repro``-internal imports only — the standard library is opaque.
* Calls resolve through names, import aliases, re-export chains
  (``obs.Tracer`` -> ``obs.trace.Tracer``), ``self``/``cls`` receivers,
  typed attributes (``self.store.lookup(...)`` via the owning class's
  attribute types), and constructor-typed locals.
* Anything else — duck-typed parameters, higher-order callbacks —
  resolves to nothing and contributes no edges.  Whole-program rules
  built on this index are therefore *may*-analyses over the resolved
  subgraph, not soundness proofs; the precision contract is documented
  per rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.analysis.core import FileContext, module_id_of

#: A qualname segment marking a module's import-time (top-level) code.
MODULE_BODY = "<module>"

#: Constructors whose result is a plain mutable container.
CONTAINER_CALLS = frozenset(
    {"dict", "list", "set", "bytearray", "deque", "defaultdict",
     "Counter", "OrderedDict", "ChainMap"}
)
#: Constructors whose result is immutable — never a shared-state hazard.
_IMMUTABLE_CALLS = frozenset(
    {"frozenset", "tuple", "str", "bytes", "int", "float", "bool",
     "compile", "property", "namedtuple", "TypeVar"}
)
#: Constructors that produce a synchronization device.
_LOCK_CALLS = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                         "BoundedSemaphore", "Event"})

#: Variable kinds (:attr:`VariableInfo.kind`).
CONTAINER = "container"
INSTANCE = "instance"
LOCK = "lock"
CONSTANT = "constant"
OTHER = "other"


@dataclass(frozen=True)
class ImportedName:
    """One imported binding: a module alias, or a symbol from a module."""

    module: str  # repro-relative dotted module id ("obs.metrics")
    symbol: str | None = None  # None: the binding is the module itself


@dataclass
class VariableInfo:
    """One module-level binding."""

    qualname: str
    name: str
    module: str
    line: int
    kind: str  # CONTAINER | INSTANCE | LOCK | CONSTANT | OTHER
    ctor: str | None = None  # dotted constructor text, for INSTANCE
    type: str | None = None  # resolved class qualname, for INSTANCE


@dataclass
class FunctionInfo:
    """One function or method."""

    qualname: str
    name: str
    module: str
    cls: str | None  # owning class qualname, None for free functions
    node: ast.FunctionDef | ast.AsyncFunctionDef


@dataclass
class ClassInfo:
    """One class: resolved bases, methods, and typed attributes."""

    qualname: str
    name: str
    module: str
    node: ast.ClassDef
    #: Resolved base qualnames, or bare names for foreign/builtin bases.
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)
    #: Attribute name -> class qualname (AnnAssign in the class body, or
    #: ``self.x = Ctor(...)`` in any method).
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class MutationSite:
    """One place a module-level variable is mutated or rebound."""

    var: str  # variable qualname
    function: str | None  # enclosing function qualname; None = import time
    path: str
    line: int
    how: str  # "global-rebind" | "subscript" | "augassign" | "<method>()"


@dataclass
class ModuleInfo:
    """One module's local symbol table."""

    id: str
    package: str  # enclosing package id ("" at the repro root)
    ctx: FileContext
    imports: dict[str, ImportedName] = field(default_factory=dict)
    functions: dict[str, str] = field(default_factory=dict)
    classes: dict[str, str] = field(default_factory=dict)
    variables: dict[str, VariableInfo] = field(default_factory=dict)


@dataclass
class ProjectIndex:
    """The whole-program view the project rules run against."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    variables: dict[str, VariableInfo] = field(default_factory=dict)
    #: caller qualname -> callee qualnames (module bodies appear as
    #: ``<module-id>.<module>``).
    calls: dict[str, set[str]] = field(default_factory=dict)
    #: resolved target per call site, for the exception-flow walk.
    call_targets: dict[ast.Call, str] = field(default_factory=dict)
    mutations: list[MutationSite] = field(default_factory=list)

    # -- symbol resolution --------------------------------------------------

    def resolve(
        self, module: str, name: str, _seen: set | None = None
    ) -> tuple[str, str] | None:
        """Resolve ``name`` as seen from ``module``.

        Returns ``("module", module_id)`` or ``("def", qualname)`` where
        the qualname keys :attr:`functions`, :attr:`classes` or
        :attr:`variables` — or ``None`` for foreign/unresolvable names.
        Re-export chains are followed with a cycle guard.
        """
        info = self.modules.get(module)
        if info is None:
            return None
        if name in info.functions:
            return ("def", info.functions[name])
        if name in info.classes:
            return ("def", info.classes[name])
        if name in info.variables:
            return ("def", info.variables[name].qualname)
        imported = info.imports.get(name)
        if imported is None:
            return None
        if imported.symbol is None:
            return ("module", imported.module)
        seen = _seen if _seen is not None else set()
        key = (imported.module, imported.symbol)
        if key in seen:
            return None
        seen.add(key)
        resolved = self.resolve(imported.module, imported.symbol, seen)
        if resolved is not None:
            return resolved
        # ``from repro.pkg import sub`` where sub is itself a module.
        submodule = f"{imported.module}.{imported.symbol}"
        if submodule in self.modules:
            return ("module", submodule)
        return None

    def method(self, class_qualname: str, name: str) -> str | None:
        """Look ``name`` up through the class and its resolved bases."""
        seen: set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            stack.extend(info.bases)
        return None

    def attr_type(self, class_qualname: str, attr: str) -> str | None:
        """The declared/inferred type of ``self.<attr>`` through the MRO."""
        seen: set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if attr in info.attr_types:
                return info.attr_types[attr]
            stack.extend(info.bases)
        return None

    def reachable(self, roots: Iterable[str]) -> set[str]:
        """Every function transitively callable from ``roots``."""
        seen: set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.calls.get(current, ()))
        return seen

    def context_of(self, module: str) -> FileContext | None:
        info = self.modules.get(module)
        return info.ctx if info is not None else None


# -- pass 1: per-module symbol tables ---------------------------------------


def _package_of(module_id: str, path: str) -> str:
    if path.endswith("/__init__.py") or path == "__init__.py":
        return module_id
    return module_id.rsplit(".", 1)[0] if "." in module_id else ""


def _record_imports(info: ModuleInfo) -> None:
    for node in ast.walk(info.ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if not alias.name.startswith("repro."):
                    continue
                target = alias.name[len("repro."):]
                if alias.asname:
                    info.imports[alias.asname] = ImportedName(target)
                # A plain ``import repro.x`` binds only ``repro``; the
                # attribute chain is too rare here to model.
        elif isinstance(node, ast.ImportFrom):
            base = _import_base(info, node)
            if base is None:
                continue
            for alias in node.names:
                bound = alias.asname or alias.name
                if base == "":
                    info.imports[bound] = ImportedName(alias.name)
                else:
                    info.imports[bound] = ImportedName(base, alias.name)


def _import_base(info: ModuleInfo, node: ast.ImportFrom) -> str | None:
    """The repro-relative module a ``from X import ...`` reads from.

    Returns ``""`` for the package root (``from repro import obs``) and
    ``None`` for foreign modules.
    """
    if node.level:
        base = info.package
        for _ in range(node.level - 1):
            base = base.rsplit(".", 1)[0] if "." in base else ""
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base
    module = node.module or ""
    if module == "repro":
        return ""
    if module.startswith("repro."):
        return module[len("repro."):]
    return None


def _classify_value(value: ast.expr | None) -> tuple[str, str | None]:
    """``(kind, ctor-text)`` for a module-level assignment's RHS."""
    if value is None:
        return OTHER, None
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return CONTAINER, None
    if isinstance(value, ast.Call):
        ctor = _dotted(value.func)
        tail = ctor.rsplit(".", 1)[-1] if ctor else ""
        if tail in CONTAINER_CALLS:
            return CONTAINER, ctor
        if tail in _LOCK_CALLS:
            return LOCK, ctor
        if tail in _IMMUTABLE_CALLS:
            return OTHER, ctor
        return INSTANCE, ctor
    if isinstance(value, ast.Constant):
        return CONSTANT, None
    return OTHER, None


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` as text for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _assigned_names(stmt: ast.stmt) -> list[tuple[str, ast.expr | None]]:
    if isinstance(stmt, ast.Assign):
        return [
            (target.id, stmt.value)
            for target in stmt.targets
            if isinstance(target, ast.Name)
        ]
    if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        return [(stmt.target.id, stmt.value)]
    return []


def _collect_module(index: ProjectIndex, ctx: FileContext,
                    module_id: str) -> None:
    info = ModuleInfo(
        id=module_id,
        package=_package_of(module_id, ctx.path),
        ctx=ctx,
    )
    index.modules[module_id] = info
    _record_imports(info)
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{module_id}.{stmt.name}"
            info.functions[stmt.name] = qualname
            index.functions[qualname] = FunctionInfo(
                qualname=qualname, name=stmt.name, module=module_id,
                cls=None, node=stmt,
            )
        elif isinstance(stmt, ast.ClassDef):
            _collect_class(index, info, stmt)
        else:
            for name, value in _assigned_names(stmt):
                if name in info.variables:
                    continue  # first binding wins
                kind, ctor = _classify_value(value)
                qualname = f"{module_id}.{name}"
                variable = VariableInfo(
                    qualname=qualname, name=name, module=module_id,
                    line=stmt.lineno, kind=kind, ctor=ctor,
                )
                info.variables[name] = variable
                index.variables[qualname] = variable


def _collect_class(index: ProjectIndex, info: ModuleInfo,
                   stmt: ast.ClassDef) -> None:
    qualname = f"{info.id}.{stmt.name}"
    info.classes[stmt.name] = qualname
    class_info = ClassInfo(
        qualname=qualname, name=stmt.name, module=info.id, node=stmt,
    )
    index.classes[qualname] = class_info
    for item in stmt.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method_qual = f"{qualname}.{item.name}"
            class_info.methods[item.name] = method_qual
            index.functions[method_qual] = FunctionInfo(
                qualname=method_qual, name=item.name, module=info.id,
                cls=qualname, node=item,
            )


# -- pass 2: cross-module resolution ----------------------------------------


def _resolve_class_ref(index: ProjectIndex, module: str,
                       expr: ast.expr) -> str | None:
    """Resolve a Name/Attribute expression to a class qualname."""
    dotted = _dotted(expr)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved = index.resolve(module, head)
    if resolved is None:
        return None
    kind, target = resolved
    if kind == "def":
        return target if not rest and target in index.classes else None
    # Module alias: resolve the remainder inside it, one hop at a time.
    while rest:
        head, _, rest = rest.partition(".")
        resolved = index.resolve(target, head)
        if resolved is None:
            return None
        kind, target = resolved
        if kind == "def":
            return target if not rest and target in index.classes else None
    return None


def _resolve_annotation(index: ProjectIndex, module: str,
                        annotation: ast.expr | None) -> str | None:
    """A class qualname out of a simple annotation form, if any.

    Handles ``T``, ``mod.T``, ``"T"`` strings, ``Optional[T]``,
    ``T | None`` — list/dict element types are not tracked.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.BinOp) and isinstance(
        annotation.op, ast.BitOr
    ):
        for side in (annotation.left, annotation.right):
            if not (isinstance(side, ast.Constant) and side.value is None):
                return _resolve_annotation(index, module, side)
        return None
    if isinstance(annotation, ast.Subscript):
        base = _dotted(annotation.value)
        if base and base.rsplit(".", 1)[-1] == "Optional":
            return _resolve_annotation(index, module, annotation.slice)
        return None
    return _resolve_class_ref(index, module, annotation)


def _resolve_bases(index: ProjectIndex, class_info: ClassInfo) -> None:
    for base in class_info.node.bases:
        resolved = _resolve_class_ref(index, class_info.module, base)
        if resolved is not None:
            class_info.bases.append(resolved)
        else:
            dotted = _dotted(base)
            if dotted is not None:
                class_info.bases.append(dotted.rsplit(".", 1)[-1])


def _collect_attr_types(index: ProjectIndex, class_info: ClassInfo) -> None:
    module = class_info.module
    for item in class_info.node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(
            item.target, ast.Name
        ):
            resolved = _resolve_annotation(index, module, item.annotation)
            if resolved is not None:
                class_info.attr_types[item.target.id] = resolved
    for node in ast.walk(class_info.node):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if target.attr in class_info.attr_types:
                continue
            if isinstance(node, ast.AnnAssign):
                resolved = _resolve_annotation(
                    index, module, node.annotation
                )
            elif isinstance(node.value, ast.Call):
                resolved = _resolve_class_ref(index, module, node.value.func)
            else:
                resolved = None
            if resolved is not None:
                class_info.attr_types[target.attr] = resolved


# -- pass 3: call edges and mutation sites ----------------------------------


def _local_types(index: ProjectIndex, function: FunctionInfo) -> dict:
    """Flow-insensitive name -> class-qualname map for one function."""
    env: dict[str, str] = {}
    module = function.module
    node = function.node
    args = node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        resolved = _resolve_annotation(index, module, arg.annotation)
        if resolved is not None:
            env[arg.arg] = resolved
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            resolved = _resolve_annotation(index, module, stmt.annotation)
            if resolved is not None:
                env.setdefault(stmt.target.id, resolved)
        elif isinstance(stmt, ast.Assign) and isinstance(
            stmt.value, ast.Call
        ):
            resolved = _resolve_class_ref(index, module, stmt.value.func)
            if resolved is None:
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.setdefault(target.id, resolved)
    return env


def _receiver(index: ProjectIndex, module: str, cls: str | None,
              env: dict, expr: ast.expr) -> tuple[str, str] | None:
    """``("module", id)`` or ``("class", qualname)`` for a receiver."""
    if isinstance(expr, ast.Name):
        if cls is not None and expr.id in ("self", "cls"):
            return ("class", cls)
        if expr.id in env:
            return ("class", env[expr.id])
        resolved = index.resolve(module, expr.id)
        if resolved is None:
            return None
        kind, target = resolved
        if kind == "module":
            return ("module", target)
        if target in index.classes:
            return ("class", target)
        variable = index.variables.get(target)
        if variable is not None and variable.type is not None:
            return ("class", variable.type)
        return None
    if isinstance(expr, ast.Attribute):
        inner = _receiver(index, module, cls, env, expr.value)
        if inner is None:
            return None
        inner_kind, inner_target = inner
        if inner_kind == "module":
            resolved = index.resolve(inner_target, expr.attr)
            if resolved is None:
                return None
            kind, target = resolved
            if kind == "module":
                return ("module", target)
            if target in index.classes:
                return ("class", target)
            variable = index.variables.get(target)
            if variable is not None and variable.type is not None:
                return ("class", variable.type)
            return None
        attr_type = index.attr_type(inner_target, expr.attr)
        if attr_type is not None:
            return ("class", attr_type)
        return None
    return None


def _as_callable(index: ProjectIndex, qualname: str) -> str | None:
    if qualname in index.functions:
        return qualname
    if qualname in index.classes:
        init = index.method(qualname, "__init__")
        return init if init is not None else qualname
    return None


def _call_target(index: ProjectIndex, module: str, cls: str | None,
                 env: dict, call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        resolved = index.resolve(module, func.id)
        if resolved is None or resolved[0] != "def":
            return None
        return _as_callable(index, resolved[1])
    if isinstance(func, ast.Attribute):
        receiver = _receiver(index, module, cls, env, func.value)
        if receiver is None:
            return None
        kind, target = receiver
        if kind == "module":
            resolved = index.resolve(target, func.attr)
            if resolved is None or resolved[0] != "def":
                return None
            return _as_callable(index, resolved[1])
        method = index.method(target, func.attr)
        if method is not None:
            return method
        return None
    return None


def _mutation_receiver(index: ProjectIndex, module: str, cls: str | None,
                       expr: ast.expr) -> VariableInfo | None:
    """The module-level variable a mutation's receiver names, if any."""
    if isinstance(expr, ast.Name):
        if cls is not None and expr.id in ("self", "cls"):
            return None
        resolved = index.resolve(module, expr.id)
    elif (isinstance(expr, ast.Attribute)
          and isinstance(expr.value, ast.Name)):
        base = index.resolve(module, expr.value.id)
        if base is None or base[0] != "module":
            return None
        resolved = index.resolve(base[1], expr.attr)
    else:
        return None
    if resolved is None or resolved[0] != "def":
        return None
    return index.variables.get(resolved[1])


def _scan_body(index: ProjectIndex, info: ModuleInfo, owner: str,
               cls: str | None, env: dict, nodes: Iterator[ast.AST],
               mutators: frozenset[str],
               global_names: set[str] | None = None) -> None:
    """One scope's call edges and mutation sites."""
    edges = index.calls.setdefault(owner, set())
    function = owner if owner in index.functions else None
    declared_global = global_names if global_names is not None else set()
    for node in nodes:
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Call):
            target = _call_target(index, info.id, cls, env, node)
            if target is not None:
                edges.add(target)
                index.call_targets[node] = target
            if isinstance(node.func, ast.Attribute) and (
                node.func.attr in mutators
            ):
                variable = _mutation_receiver(
                    index, info.id, cls, node.func.value
                )
                if variable is not None:
                    index.mutations.append(MutationSite(
                        var=variable.qualname, function=function,
                        path=info.ctx.path, line=node.lineno,
                        how=f"{node.func.attr}()",
                    ))
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            _scan_store(index, info, function, cls, node, declared_global)


def _scan_store(index: ProjectIndex, info: ModuleInfo,
                function: str | None, cls: str | None, node: ast.stmt,
                declared_global: set[str]) -> None:
    """Rebinding / subscript-store mutations of module-level variables."""
    if isinstance(node, ast.Assign):
        targets, how = node.targets, "rebind"
    elif isinstance(node, ast.AugAssign):
        targets, how = [node.target], "augassign"
    else:
        targets, how = node.targets, "delete"
    for target in targets:
        if isinstance(target, ast.Subscript):
            variable = _mutation_receiver(index, info.id, cls, target.value)
            if variable is not None:
                index.mutations.append(MutationSite(
                    var=variable.qualname, function=function,
                    path=info.ctx.path, line=node.lineno, how="subscript",
                ))
        elif isinstance(target, ast.Name):
            is_module_level = function is None
            if not (is_module_level or target.id in declared_global):
                continue
            if is_module_level and how == "rebind":
                continue  # the defining assignment itself
            variable = info.variables.get(target.id)
            if variable is not None:
                index.mutations.append(MutationSite(
                    var=variable.qualname, function=function,
                    path=info.ctx.path, line=node.lineno,
                    how="global-rebind" if function else how,
                ))


def _module_level_nodes(tree: ast.Module) -> Iterator[ast.AST]:
    """Every node not inside a function def (class bodies included)."""
    stack: list[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield child
            stack.append(child)


def build_index(contexts: Iterable[FileContext],
                mutator_methods: frozenset[str]) -> ProjectIndex:
    """Index the project: symbols, call graph, mutation inventory."""
    index = ProjectIndex()
    ordered: list[tuple[str, FileContext]] = []
    for ctx in contexts:
        module_id = module_id_of(ctx.path)
        if module_id is None or module_id in index.modules:
            continue
        ordered.append((module_id, ctx))
        _collect_module(index, ctx, module_id)
    for class_info in index.classes.values():
        _resolve_bases(index, class_info)
    for class_info in index.classes.values():
        _collect_attr_types(index, class_info)
    # Resolve module-variable instance types now that classes exist.
    for variable in index.variables.values():
        if variable.kind == INSTANCE and variable.ctor is not None:
            head, _, rest = variable.ctor.partition(".")
            expr: ast.expr = ast.Name(id=head)
            for part in rest.split("."):
                if part:
                    expr = ast.Attribute(value=expr, attr=part)
            variable.type = _resolve_class_ref(index, variable.module, expr)
    for function in index.functions.values():
        env = _local_types(index, function)
        info = index.modules[function.module]
        _scan_body(
            index, info, function.qualname, function.cls, env,
            ast.walk(function.node), mutator_methods,
        )
    for module_id, ctx in ordered:
        info = index.modules[module_id]
        env = {}
        _scan_body(
            index, info, f"{module_id}.{MODULE_BODY}", None, env,
            _module_level_nodes(ctx.tree), mutator_methods,
        )
    return index
