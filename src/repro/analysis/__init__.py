"""Self-hosted static analysis: the architectural invariants as code.

The paper's "lean" discipline — every document type through two fixed
tables, a fixed node-type vocabulary, ROWIDs minted only by the physical
layer — lives in *convention*, not in any schema the runtime could check
(contrast the per-element-type DDL of DOM-shredding mappers).  This
package turns those conventions into executable rules so a refactor
cannot silently erode them.

Rule families
-------------

* **layering** — the import DAG between the ``repro.*`` subpackages
  (``ordbms`` at the bottom imports nothing above it; only ``server``
  and ``apps`` may import ``federation``).
* **exception policy** — only ``repro.errors`` subclasses cross module
  boundaries; ``except Exception`` / bare ``except`` is banned unless
  annotated ``# lint: allow-broad-except(<reason>)``.
* **transaction & rowid discipline** — no cross-object mutation of
  private state outside ``ordbms/transaction.py`` / ``ordbms/executor.py``;
  no :class:`~repro.ordbms.rowid.RowId` minted from raw ints outside
  ``ordbms/rowid.py``.
* **determinism** — no wall-clock reads or unseeded randomness in
  library code (benchmarks exempt).
* **hygiene** — no ``print`` in library code.
* **whole-program dataflow** (``--report dataflow``) — the
  concurrency-readiness audit for the concurrent front end: mutated
  module/class state must declare its guard
  (``# repro: guarded-by(<lock>) <why>``), state written on both the
  ingest and query paths is escalated, nested locks must follow one
  global order, opened resources must be released on every CFG path,
  and public entry points may only let their module's declared
  exception policy escape.  Built on :mod:`repro.analysis.cfg`
  (intraprocedural CFGs), :mod:`repro.analysis.dataflow` (forward
  fixpoint engine) and :mod:`repro.analysis.callgraph` (project-wide
  symbol table and call graph).

Escape hatches, in order of preference: fix the code; annotate a
deliberate, permanent exception with ``# lint: allow-<rule>(<reason>)``
on the offending line; record transitional debt in the checked-in
``analysis-baseline.json``.

Run it::

    python -m repro.analysis src/ --format human

The package deliberately imports nothing from the runtime stack except
:mod:`repro.errors` — it is itself subject to its own layering rule.
"""

from repro.analysis.baseline import Baseline, BaselineEntry, load_baseline
from repro.analysis.config import AnalysisConfig, DEFAULT_CONFIG
from repro.analysis.core import (
    AnalysisReport,
    FileContext,
    ProjectRule,
    Rule,
    Violation,
    analyze_paths,
    analyze_project_sources,
    analyze_source,
)
from repro.analysis.rules import ALL_PROJECT_RULES, ALL_RULES, rule_ids

__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "AnalysisConfig",
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "DEFAULT_CONFIG",
    "FileContext",
    "ProjectRule",
    "Rule",
    "Violation",
    "analyze_paths",
    "analyze_project_sources",
    "analyze_source",
    "load_baseline",
    "rule_ids",
]
