"""Analyzer engine: file contexts, the rule protocol, and the driver.

A :class:`Rule` is a stateless object with an ``id`` and a ``check``
method that walks one file's AST and yields :class:`Violation`\\ s.  The
driver parses each file once into a :class:`FileContext` (source, AST,
pragmas, layer unit) and funnels every rule's findings through the two
suppression layers — inline pragmas, then the checked-in baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, Protocol

from repro.analysis.baseline import Baseline
from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.pragmas import Pragma, extract_pragmas


@dataclass(frozen=True, order=True)
class Violation:
    """One rule finding at one source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column} "
            f"[{self.rule}] {self.message}"
        )


class Rule(Protocol):
    """The rule protocol: an id, a summary, and an AST check."""

    id: str
    summary: str

    def check(
        self, ctx: "FileContext", config: AnalysisConfig
    ) -> Iterator[Violation]: ...


@dataclass
class FileContext:
    """Everything a rule may ask about one parsed source file."""

    path: str  # normalized posix path, as reported in violations
    source: str
    tree: ast.Module
    lines: list[str]
    pragmas: list[Pragma]
    malformed_pragma_lines: list[int]
    unit: str | None  # repro layer unit, None outside the repro package

    def violation(
        self, rule_id: str, node: ast.AST | int, message: str
    ) -> Violation:
        """Build a violation at ``node`` (an AST node or a line number)."""
        if isinstance(node, int):
            line, column = node, 0
        else:
            line = getattr(node, "lineno", 0)
            column = getattr(node, "col_offset", 0)
        return Violation(
            path=self.path, line=line, column=column,
            rule=rule_id, message=message,
        )

    def line_content(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def path_endswith(self, suffix: str) -> bool:
        return self.path == suffix or self.path.endswith("/" + suffix)


def unit_of(path: str) -> str | None:
    """The ``repro`` layer unit a path belongs to (None if outside).

    ``src/repro/ordbms/table.py`` -> ``ordbms``;
    ``src/repro/netmark.py`` -> ``netmark``;
    ``src/repro/__init__.py`` -> ``__root__``.
    """
    parts = PurePosixPath(path).parts
    if "repro" not in parts:
        return None
    # Last occurrence: a checkout under a directory named "repro" must
    # not shift every file's layer identity.
    index = len(parts) - 1 - parts[::-1].index("repro")
    below = parts[index + 1:]
    if not below:
        return None
    if len(below) == 1:
        stem = PurePosixPath(below[0]).stem
        return "__root__" if stem == "__init__" else stem
    return below[0]


@dataclass
class AnalysisReport:
    """Outcome of one run: what fired, what was suppressed, what rotted."""

    violations: list[Violation] = field(default_factory=list)
    baselined: list[Violation] = field(default_factory=list)
    pragma_suppressed: list[Violation] = field(default_factory=list)
    stale_baseline: list = field(default_factory=list)
    files_checked: int = 0
    #: (path, line) -> raw source line, for --write-baseline.
    line_contents: dict[tuple[str, int], str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


# -- parsing ----------------------------------------------------------------


def build_context(source: str, path: str | Path) -> FileContext | None:
    """Parse one file into a context (None when the source won't parse).

    The analyzer does not report syntax errors — the interpreter and the
    test suite already do that with better diagnostics.
    """
    norm = PurePosixPath(Path(path)).as_posix()
    try:
        tree = ast.parse(source, filename=norm)
    except SyntaxError:
        return None
    pragmas, malformed = extract_pragmas(source)
    return FileContext(
        path=norm,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        pragmas=pragmas,
        malformed_pragma_lines=malformed,
        unit=unit_of(norm),
    )


# -- suppression ------------------------------------------------------------


class _PragmaRule:
    """Framework rule: malformed or reason-less pragmas are violations."""

    id = "bad-pragma"
    summary = (
        "a lint pragma must be '# lint: allow-<rule>(<reason>)' with a "
        "non-empty reason"
    )

    def check(
        self, ctx: FileContext, config: AnalysisConfig
    ) -> Iterator[Violation]:
        for line in ctx.malformed_pragma_lines:
            yield ctx.violation(
                self.id, line,
                "malformed pragma; expected "
                "'# lint: allow-<rule>(<reason>)'",
            )
        for pragma in ctx.pragmas:
            if not pragma.ok:
                yield ctx.violation(
                    self.id, pragma.line,
                    f"pragma allow-{pragma.rule} needs a non-empty reason",
                )


PRAGMA_RULE = _PragmaRule()


def _pragma_suppresses(ctx: FileContext, violation: Violation) -> bool:
    return any(
        pragma.ok
        and pragma.rule == violation.rule
        and pragma.line == violation.line
        for pragma in ctx.pragmas
    )


# -- driver -----------------------------------------------------------------


def _iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def analyze_context(
    ctx: FileContext,
    rules: Iterable[Rule],
    config: AnalysisConfig = DEFAULT_CONFIG,
) -> list[Violation]:
    """All raw findings for one file (pragma/baseline not yet applied)."""
    found: list[Violation] = []
    for rule in (*rules, PRAGMA_RULE):
        found.extend(rule.check(ctx, config))
    return sorted(found)


def analyze_source(
    source: str,
    path: str | Path,
    rules: Iterable[Rule] | None = None,
    config: AnalysisConfig = DEFAULT_CONFIG,
) -> list[Violation]:
    """Analyze in-memory source as if it lived at ``path``.

    Pragmas apply; no baseline.  This is the fixture-test entry point:
    the claimed ``path`` decides layer identity and path-scoped
    exemptions.
    """
    if rules is None:
        from repro.analysis.rules import ALL_RULES

        rules = ALL_RULES
    ctx = build_context(source, path)
    if ctx is None:
        return []
    return [
        violation
        for violation in analyze_context(ctx, rules, config)
        if not _pragma_suppresses(ctx, violation)
    ]


def analyze_paths(
    paths: Iterable[str | Path],
    rules: Iterable[Rule] | None = None,
    config: AnalysisConfig = DEFAULT_CONFIG,
    baseline: Baseline | None = None,
) -> AnalysisReport:
    """Run the full rule suite over files and directories."""
    if rules is None:
        from repro.analysis.rules import ALL_RULES

        rules = ALL_RULES
    rules = list(rules)
    report = AnalysisReport()
    for file_path in _iter_python_files(paths):
        try:
            source = file_path.read_text()
        except (OSError, UnicodeDecodeError):
            continue
        ctx = build_context(source, file_path)
        if ctx is None:
            continue
        report.files_checked += 1
        for violation in analyze_context(ctx, rules, config):
            content = ctx.line_content(violation.line)
            report.line_contents[(violation.path, violation.line)] = content
            if _pragma_suppresses(ctx, violation):
                report.pragma_suppressed.append(violation)
            elif baseline is not None and baseline.suppresses(
                violation, content
            ):
                report.baselined.append(violation)
            else:
                report.violations.append(violation)
    if baseline is not None:
        report.stale_baseline = baseline.stale_entries()
    report.violations.sort()
    return report
