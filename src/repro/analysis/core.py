"""Analyzer engine: file contexts, the rule protocol, and the driver.

A :class:`Rule` is a stateless object with an ``id`` and a ``check``
method that walks one file's AST and yields :class:`Violation`\\ s.  The
driver parses each file once into a :class:`FileContext` (source, AST,
pragmas, layer unit) and funnels every rule's findings through the two
suppression layers — inline pragmas, then the checked-in baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, Protocol

from repro.analysis.annotations import GuardedBy, extract_guarded
from repro.analysis.baseline import Baseline
from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.pragmas import Pragma, extract_pragmas


@dataclass(frozen=True, order=True)
class Violation:
    """One rule finding at one source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column} "
            f"[{self.rule}] {self.message}"
        )


class Rule(Protocol):
    """The rule protocol: an id, a summary, and an AST check."""

    id: str
    summary: str

    def check(
        self, ctx: "FileContext", config: AnalysisConfig
    ) -> Iterator[Violation]: ...


class ProjectRule(Protocol):
    """A whole-program rule: sees the full project index, not one file.

    Project rules run after every file has been parsed; their findings
    flow through the same pragma and baseline suppression as per-file
    findings (a pragma on the reported line suppresses, the baseline
    matches on path + rule + line content).
    """

    id: str
    summary: str

    def check_project(
        self, project: object, config: AnalysisConfig
    ) -> Iterator[Violation]: ...


@dataclass
class FileContext:
    """Everything a rule may ask about one parsed source file."""

    path: str  # normalized posix path, as reported in violations
    source: str
    tree: ast.Module
    lines: list[str]
    pragmas: list[Pragma]
    malformed_pragma_lines: list[int]
    unit: str | None  # repro layer unit, None outside the repro package
    guarded: list[GuardedBy] = field(default_factory=list)
    malformed_guard_lines: list[int] = field(default_factory=list)

    def violation(
        self, rule_id: str, node: ast.AST | int, message: str
    ) -> Violation:
        """Build a violation at ``node`` (an AST node or a line number)."""
        if isinstance(node, int):
            line, column = node, 0
        else:
            line = getattr(node, "lineno", 0)
            column = getattr(node, "col_offset", 0)
        return Violation(
            path=self.path, line=line, column=column,
            rule=rule_id, message=message,
        )

    def line_content(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def path_endswith(self, suffix: str) -> bool:
        return self.path == suffix or self.path.endswith("/" + suffix)


def module_id_of(path: str) -> str | None:
    """The dotted ``repro``-relative module id of a path (None outside).

    ``src/repro/store/accessor.py`` -> ``store.accessor``;
    ``src/repro/obs/__init__.py`` -> ``obs``;
    ``src/repro/netmark.py`` -> ``netmark``.
    """
    parts = path.replace("\\", "/").split("/")
    if "repro" not in parts:
        return None
    tail = parts[len(parts) - 1 - parts[::-1].index("repro") + 1:]
    if not tail or not tail[-1].endswith(".py"):
        return None
    if tail[-1] == "__init__.py":
        tail = tail[:-1]
    else:
        tail = tail[:-1] + [tail[-1][:-3]]
    return ".".join(tail) or None


def unit_of(path: str) -> str | None:
    """The ``repro`` layer unit a path belongs to (None if outside).

    ``src/repro/ordbms/table.py`` -> ``ordbms``;
    ``src/repro/netmark.py`` -> ``netmark``;
    ``src/repro/__init__.py`` -> ``__root__``.
    """
    parts = PurePosixPath(path).parts
    if "repro" not in parts:
        return None
    # Last occurrence: a checkout under a directory named "repro" must
    # not shift every file's layer identity.
    index = len(parts) - 1 - parts[::-1].index("repro")
    below = parts[index + 1:]
    if not below:
        return None
    if len(below) == 1:
        stem = PurePosixPath(below[0]).stem
        return "__root__" if stem == "__init__" else stem
    return below[0]


@dataclass
class AnalysisReport:
    """Outcome of one run: what fired, what was suppressed, what rotted."""

    violations: list[Violation] = field(default_factory=list)
    baselined: list[Violation] = field(default_factory=list)
    pragma_suppressed: list[Violation] = field(default_factory=list)
    stale_baseline: list = field(default_factory=list)
    files_checked: int = 0
    #: (path, line) -> raw source line, for --write-baseline.
    line_contents: dict[tuple[str, int], str] = field(default_factory=dict)
    #: The audited shared-state inventory: every well-formed guarded-by
    #: annotation seen, as (path, annotation) pairs.
    guarded_inventory: list[tuple[str, GuardedBy]] = field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        return not self.violations


# -- parsing ----------------------------------------------------------------


def build_context(source: str, path: str | Path) -> FileContext | None:
    """Parse one file into a context (None when the source won't parse).

    The analyzer does not report syntax errors — the interpreter and the
    test suite already do that with better diagnostics.
    """
    norm = PurePosixPath(Path(path)).as_posix()
    try:
        tree = ast.parse(source, filename=norm)
    except SyntaxError:
        return None
    pragmas, malformed = extract_pragmas(source)
    guarded, malformed_guards = extract_guarded(source)
    return FileContext(
        path=norm,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        pragmas=pragmas,
        malformed_pragma_lines=malformed,
        unit=unit_of(norm),
        guarded=guarded,
        malformed_guard_lines=malformed_guards,
    )


# -- suppression ------------------------------------------------------------


class _PragmaRule:
    """Framework rule: malformed or reason-less pragmas are violations."""

    id = "bad-pragma"
    summary = (
        "a lint pragma must be '# lint: allow-<rule>(<reason>)' with a "
        "non-empty reason"
    )

    def check(
        self, ctx: FileContext, config: AnalysisConfig
    ) -> Iterator[Violation]:
        for line in ctx.malformed_pragma_lines:
            yield ctx.violation(
                self.id, line,
                "malformed pragma; expected "
                "'# lint: allow-<rule>(<reason>)'",
            )
        for pragma in ctx.pragmas:
            if not pragma.ok:
                yield ctx.violation(
                    self.id, pragma.line,
                    f"pragma allow-{pragma.rule} needs a non-empty reason",
                )


PRAGMA_RULE = _PragmaRule()


def _pragma_suppresses(ctx: FileContext, violation: Violation) -> bool:
    return any(
        pragma.ok
        and pragma.rule == violation.rule
        and pragma.line == violation.line
        for pragma in ctx.pragmas
    )


# -- driver -----------------------------------------------------------------


def _iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def analyze_context(
    ctx: FileContext,
    rules: Iterable[Rule],
    config: AnalysisConfig = DEFAULT_CONFIG,
) -> list[Violation]:
    """All raw findings for one file (pragma/baseline not yet applied)."""
    found: list[Violation] = []
    for rule in (*rules, PRAGMA_RULE):
        found.extend(rule.check(ctx, config))
    return sorted(found)


def analyze_source(
    source: str,
    path: str | Path,
    rules: Iterable[Rule] | None = None,
    config: AnalysisConfig = DEFAULT_CONFIG,
) -> list[Violation]:
    """Analyze in-memory source as if it lived at ``path``.

    Pragmas apply; no baseline.  This is the fixture-test entry point:
    the claimed ``path`` decides layer identity and path-scoped
    exemptions.
    """
    if rules is None:
        from repro.analysis.rules import ALL_RULES

        rules = ALL_RULES
    ctx = build_context(source, path)
    if ctx is None:
        return []
    return [
        violation
        for violation in analyze_context(ctx, rules, config)
        if not _pragma_suppresses(ctx, violation)
    ]


def _funnel(
    report: AnalysisReport,
    ctx: FileContext,
    violations: Iterable[Violation],
    baseline: Baseline | None,
) -> None:
    """Route raw findings through pragma and baseline suppression."""
    for violation in violations:
        content = ctx.line_content(violation.line)
        report.line_contents[(violation.path, violation.line)] = content
        if _pragma_suppresses(ctx, violation):
            report.pragma_suppressed.append(violation)
        elif baseline is not None and baseline.suppresses(
            violation, content
        ):
            report.baselined.append(violation)
        else:
            report.violations.append(violation)


def _run_project_rules(
    report: AnalysisReport,
    contexts: list[FileContext],
    project_rules: Iterable[ProjectRule],
    config: AnalysisConfig,
    baseline: Baseline | None,
) -> None:
    from repro.analysis.callgraph import build_index

    project_rules = list(project_rules)
    if not project_rules:
        return
    index = build_index(contexts, config.mutator_methods)
    by_path = {ctx.path: ctx for ctx in contexts}
    for rule in project_rules:
        for violation in sorted(rule.check_project(index, config)):
            ctx = by_path.get(violation.path)
            if ctx is None:
                report.violations.append(violation)
                continue
            _funnel(report, ctx, [violation], baseline)


def analyze_paths(
    paths: Iterable[str | Path],
    rules: Iterable[Rule] | None = None,
    config: AnalysisConfig = DEFAULT_CONFIG,
    baseline: Baseline | None = None,
    project_rules: Iterable[ProjectRule] | None = None,
) -> AnalysisReport:
    """Run the full rule suite over files and directories."""
    if rules is None:
        from repro.analysis.rules import ALL_RULES

        rules = ALL_RULES
    if project_rules is None:
        from repro.analysis.rules import ALL_PROJECT_RULES

        project_rules = ALL_PROJECT_RULES
    rules = list(rules)
    report = AnalysisReport()
    contexts: list[FileContext] = []
    for file_path in _iter_python_files(paths):
        try:
            source = file_path.read_text()
        except (OSError, UnicodeDecodeError):
            continue
        ctx = build_context(source, file_path)
        if ctx is None:
            continue
        contexts.append(ctx)
        report.files_checked += 1
        report.guarded_inventory.extend(
            (ctx.path, annotation)
            for annotation in ctx.guarded
            if annotation.ok
        )
        _funnel(report, ctx, analyze_context(ctx, rules, config), baseline)
    _run_project_rules(report, contexts, project_rules, config, baseline)
    if baseline is not None:
        report.stale_baseline = baseline.stale_entries()
    report.violations.sort()
    return report


def analyze_project_sources(
    sources: dict[str, str],
    rules: Iterable[Rule] = (),
    project_rules: Iterable[ProjectRule] = (),
    config: AnalysisConfig = DEFAULT_CONFIG,
) -> list[Violation]:
    """Analyze a virtual multi-file project held in memory.

    ``sources`` maps claimed paths to source text.  Pragmas apply; no
    baseline.  This is the fixture-test entry point for project rules —
    the per-file counterpart is :func:`analyze_source`.
    """
    report = AnalysisReport()
    contexts: list[FileContext] = []
    for path, source in sorted(sources.items()):
        ctx = build_context(source, path)
        if ctx is None:
            continue
        contexts.append(ctx)
        _funnel(report, ctx, analyze_context(ctx, list(rules), config), None)
    _run_project_rules(report, contexts, project_rules, config, None)
    report.violations.sort()
    return report.violations
