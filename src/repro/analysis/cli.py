"""Command line front end: ``python -m repro.analysis [paths]``.

Exit status: 0 when no unsuppressed violations, 1 when there are any,
2 on usage errors.  Stale baseline entries are reported but do not fail
the run (the meta-test under ``tests/analysis/`` does fail on them, so
rot cannot reach HEAD unnoticed).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import TextIO

from repro.analysis.baseline import Baseline, dump_baseline, load_baseline
from repro.analysis.core import AnalysisReport, analyze_paths
from repro.analysis.rules import (
    ALL_PROJECT_RULES,
    ALL_RULES,
    DATAFLOW_RULE_IDS,
)
from repro.errors import AnalysisError

DEFAULT_BASELINE = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Check the repro architectural invariants.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--report", choices=("all", "dataflow"), default="all",
        help=(
            "rule selection: 'dataflow' runs only the whole-program "
            "concurrency/resource/exception-flow family (default: all)"
        ),
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: ./{DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current violations to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule ids and summaries, then exit",
    )
    return parser


def _resolve_baseline(args: argparse.Namespace) -> Baseline | None:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return load_baseline(args.baseline)
    default = Path(DEFAULT_BASELINE)
    if default.is_file():
        return load_baseline(default)
    return None


def _render_human(report: AnalysisReport, out: TextIO) -> None:
    for violation in report.violations:
        out.write(violation.render() + "\n")
    for entry in report.stale_baseline:
        out.write(
            f"stale baseline entry: [{entry.rule}] {entry.path}: "
            f"{entry.content!r} no longer matches anything\n"
        )
    out.write(
        f"{len(report.violations)} violation(s) across "
        f"{report.files_checked} file(s) "
        f"({len(report.baselined)} baselined, "
        f"{len(report.pragma_suppressed)} pragma-suppressed)\n"
    )


def _render_json(report: AnalysisReport, out: TextIO) -> None:
    payload = {
        "ok": report.ok,
        "files_checked": report.files_checked,
        "violations": [
            {
                "rule": violation.rule,
                "path": violation.path,
                "line": violation.line,
                "column": violation.column,
                "message": violation.message,
            }
            for violation in report.violations
        ],
        "baselined": len(report.baselined),
        "pragma_suppressed": len(report.pragma_suppressed),
        "stale_baseline": [
            {"rule": entry.rule, "path": entry.path, "content": entry.content}
            for entry in report.stale_baseline
        ],
        # The audited shared-state inventory: every guarded-by
        # annotation in the analyzed tree, with its lock and rationale.
        "guarded_state": [
            {
                "path": path,
                "line": annotation.line,
                "lock": annotation.lock,
                "rationale": annotation.rationale,
            }
            for path, annotation in report.guarded_inventory
        ],
    }
    out.write(json.dumps(payload, indent=2) + "\n")


def main(argv: list[str] | None = None, out: TextIO = sys.stdout) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in sorted(ALL_RULES, key=lambda rule: rule.id):
            out.write(f"{rule.id:24} {rule.summary}\n")
        return 0
    if args.write_baseline:
        baseline = None  # regenerate from the raw violation set
    else:
        try:
            baseline = _resolve_baseline(args)
        except AnalysisError as error:
            out.write(f"error: {error}\n")
            return 2
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        out.write(f"error: no such path: {', '.join(missing)}\n")
        return 2
    if args.report == "dataflow":
        rules = [
            rule for rule in ALL_RULES if rule.id in DATAFLOW_RULE_IDS
        ]
        project_rules = ALL_PROJECT_RULES
    else:
        rules, project_rules = ALL_RULES, ALL_PROJECT_RULES
    report = analyze_paths(
        args.paths, rules=rules, baseline=baseline,
        project_rules=project_rules,
    )
    if args.report == "dataflow":
        # Entries for rules that did not run are not stale, just idle.
        report.stale_baseline = [
            entry for entry in report.stale_baseline
            if entry.rule in DATAFLOW_RULE_IDS
        ]
    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE
        dump_baseline(report.violations, report.line_contents, target)
        out.write(
            f"wrote {len(report.violations)} entries to {target}\n"
        )
        return 0
    if args.format == "json":
        _render_json(report, out)
    else:
        _render_human(report, out)
    return 0 if report.ok else 1
