"""Concurrency-readiness: shared mutable state must declare its guard.

The single-process NETMARK daemon tolerates module-level registries and
counters; the multi-worker front end on the roadmap does not.  These
rules build the audited inventory that work starts from:

* ``shared-state`` (whole-program) — a module-level variable that any
  code in the project *mutates* (mutator method call, subscript store,
  ``global`` rebind, augmented assignment) must carry a
  ``# repro: guarded-by(<lock>) <why>`` annotation on its binding line.
  Bindings nobody mutates are presumed import-time constants and stay
  silent — the rule keys off observed writes, not off type shape.
* ``shared-class-state`` (per-file) — a plain ``name = []`` / ``{}``
  assignment in a class body is one object shared by every instance;
  it must be annotated or moved into instance state.  Annotated
  dataclass fields (``x: list = field(...)``) are per-instance and
  exempt by construction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.annotations import guard_for_line
from repro.analysis.callgraph import (
    CONTAINER_CALLS,
    LOCK,
    MutationSite,
    ProjectIndex,
)
from repro.analysis.config import AnalysisConfig
from repro.analysis.core import FileContext, Violation


def _describe_sites(sites: list[MutationSite], limit: int = 3) -> str:
    shown = ", ".join(
        f"{site.path}:{site.line} ({site.how})" for site in sites[:limit]
    )
    extra = len(sites) - limit
    return shown + (f" and {extra} more site(s)" if extra > 0 else "")


class SharedModuleStateRule:
    id = "shared-state"
    summary = (
        "mutated module-level state must declare its guard with "
        "'# repro: guarded-by(<lock>) <why>'"
    )

    def check_project(
        self, project: ProjectIndex, config: AnalysisConfig
    ) -> Iterator[Violation]:
        sites_by_var: dict[str, list[MutationSite]] = {}
        for site in project.mutations:
            sites_by_var.setdefault(site.var, []).append(site)
        for qualname, sites in sorted(sites_by_var.items()):
            variable = project.variables[qualname]
            if variable.kind == LOCK:
                continue  # the guard itself, not guarded state
            ctx = project.context_of(variable.module)
            if ctx is None:
                continue
            if guard_for_line(ctx.guarded, variable.line) is not None:
                continue
            sites.sort(key=lambda site: (site.path, site.line))
            yield Violation(
                path=ctx.path, line=variable.line, column=0,
                rule=self.id,
                message=(
                    f"module-level state {qualname!r} is mutated at "
                    f"{_describe_sites(sites)}; annotate the binding "
                    "with '# repro: guarded-by(<lock>) <why>' or move "
                    "it into instance state"
                ),
            )


class SharedClassStateRule:
    id = "shared-class-state"
    summary = (
        "a mutable class-body assignment is shared by every instance "
        "and must declare its guard"
    )

    def check(
        self, ctx: FileContext, config: AnalysisConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.Assign):
                    continue
                if not self._mutable_value(stmt.value):
                    continue
                if guard_for_line(ctx.guarded, stmt.lineno) is not None:
                    continue
                names = ", ".join(
                    target.id
                    for target in stmt.targets
                    if isinstance(target, ast.Name)
                )
                if not names:
                    continue
                yield ctx.violation(
                    self.id, stmt,
                    f"class attribute {names!r} on {node.name} is one "
                    "mutable object shared by every instance; make it "
                    "instance state (assign in __init__ / a dataclass "
                    "field) or annotate with "
                    "'# repro: guarded-by(<lock>) <why>'",
                )

    @staticmethod
    def _mutable_value(value: ast.expr) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set)):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            return name in CONTAINER_CALLS
        return False
