"""Exception flow: entry points honor the declared error contract.

``exception-flow`` computes, for every function in the project, the set
of exception classes that may *escape* it — explicit ``raise`` sites
plus everything escaping from resolved callees, minus whatever enclosing
``except`` clauses catch — as an interprocedural fixpoint over the call
graph.  Public entry points of modules named in
``config.exception_policy`` are then checked: every escaping class must
be a subclass of an allowed name (or of a ubiquitous one — the
crash-injection signal, assertion guards, observability config errors).

Catch matching uses the real class hierarchy: ``repro.errors`` classes
are resolved through the project index, builtins through the live
interpreter.  ``except Exception`` therefore does **not** catch
``CrashError`` (a ``BaseException`` subclass by design — a crash must
not be swallowed by recovery code).

Precision contract: calls the index cannot resolve (duck-typed
receivers, callbacks passed as values, locally-defined closures)
contribute nothing, so the escape sets are lower bounds — the rule finds
real policy violations and never invents impossible ones; it cannot
prove their absence.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from repro.analysis.callgraph import FunctionInfo, ProjectIndex
from repro.analysis.config import AnalysisConfig
from repro.analysis.core import Violation


class _Hierarchy:
    """Ancestor chains over project classes plus live builtins."""

    def __init__(self, project: ProjectIndex):
        #: simple class name -> simple base names.
        self.parents: dict[str, set[str]] = {}
        for info in project.classes.values():
            bases = {base.rsplit(".", 1)[-1] for base in info.bases}
            self.parents.setdefault(info.name, set()).update(bases)
        self._cache: dict[str, frozenset[str]] = {}

    def ancestors(self, name: str) -> frozenset[str]:
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        out: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self.parents.get(current, ()))
            builtin = getattr(builtins, current, None)
            if isinstance(builtin, type):
                stack.extend(base.__name__ for base in builtin.__mro__[1:])
        result = frozenset(out)
        self._cache[name] = result
        return result

    def catches(self, handler_names: frozenset[str] | None,
                exc: str) -> bool:
        if handler_names is None:
            return True  # bare except: catches everything
        return bool(handler_names & self.ancestors(exc))

    def is_exception(self, name: str) -> bool:
        return "BaseException" in self.ancestors(name)


def _handler_names(project: ProjectIndex, module: str,
                   handler: ast.ExceptHandler) -> frozenset[str] | None:
    """The simple class names an ``except`` clause catches (None=all)."""
    if handler.type is None:
        return None
    exprs = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: set[str] = set()
    for expr in exprs:
        name = _exception_name(project, module, expr)
        if name is None:
            return None  # unresolvable clause: assume it catches all
        names.add(name)
    return frozenset(names)


def _exception_name(project: ProjectIndex, module: str,
                    expr: ast.expr) -> str | None:
    """The simple class name an expression denotes, if resolvable."""
    if isinstance(expr, ast.Call):
        expr = expr.func
    if isinstance(expr, ast.Attribute):
        node: ast.expr = expr
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = project.resolve(module, node.id)
        if base is not None and base[0] == "module" and len(parts) == 1:
            resolved = project.resolve(base[1], parts[0])
            if resolved is not None and resolved[1] in project.classes:
                return parts[0]
        return None
    if not isinstance(expr, ast.Name):
        return None
    resolved = project.resolve(module, expr.id)
    if resolved is not None:
        if resolved[0] == "def" and resolved[1] in project.classes:
            return project.classes[resolved[1]].name
        return None
    builtin = getattr(builtins, expr.id, None)
    if isinstance(builtin, type) and issubclass(builtin, BaseException):
        return expr.id
    return None


class _EscapeWalker:
    """One function's escape set under the current fixpoint state."""

    def __init__(self, project: ProjectIndex, hierarchy: _Hierarchy,
                 escapes: dict[str, frozenset[str]], module: str):
        self.project = project
        self.hierarchy = hierarchy
        self.escapes = escapes
        self.module = module

    def block(self, stmts: list[ast.stmt],
              caught: frozenset[str] | None) -> set[str]:
        out: set[str] = set()
        for stmt in stmts:
            out |= self.stmt(stmt, caught)
        return out

    def stmt(self, stmt: ast.stmt,
             caught: frozenset[str] | None) -> set[str]:
        if isinstance(stmt, ast.Try):
            return self._try(stmt, caught)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return set()  # a definition executes nothing user-visible
        out: set[str] = set()
        if isinstance(stmt, ast.Raise):
            out |= self._raised(stmt, caught)
        for part in self._own_exprs(stmt):
            for node in ast.walk(part):
                if isinstance(node, ast.Call):
                    target = self.project.call_targets.get(node)
                    if target is not None:
                        out |= self.escapes.get(target, frozenset())
        for body in (getattr(stmt, "body", None),
                     getattr(stmt, "orelse", None)):
            if isinstance(body, list):
                out |= self.block(body, caught)
        for case in getattr(stmt, "cases", []):
            out |= self.block(case.body, caught)
        return out

    @staticmethod
    def _own_exprs(stmt: ast.stmt) -> list[ast.AST]:
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        return [stmt]

    def _raised(self, stmt: ast.Raise,
                caught: frozenset[str] | None) -> set[str]:
        if stmt.exc is None:
            # Bare re-raise: whatever the enclosing handler caught.
            return set(caught) if caught is not None else set()
        name = _exception_name(self.project, self.module, stmt.exc)
        if name is None:
            return set()
        return {name}

    def _try(self, stmt: ast.Try,
             caught: frozenset[str] | None) -> set[str]:
        inner = self.block(stmt.body, caught)
        handled: set[str] = set()
        out: set[str] = set()
        for handler in stmt.handlers:
            names = _handler_names(self.project, self.module, handler)
            taken = {
                exc for exc in inner if self.hierarchy.catches(names, exc)
            }
            handled |= taken
            handler_caught = (
                frozenset(taken) if names is None else names
            )
            out |= self.block(handler.body, handler_caught)
        out |= inner - handled
        # else runs unprotected by the handlers; finally always runs.
        out |= self.block(stmt.orelse, caught)
        out |= self.block(stmt.finalbody, caught)
        return out


class ExceptionEscapeRule:
    id = "exception-flow"
    summary = (
        "public entry points may only let their module's declared "
        "exception policy escape"
    )

    def check_project(
        self, project: ProjectIndex, config: AnalysisConfig
    ) -> Iterator[Violation]:
        hierarchy = _Hierarchy(project)
        escapes = self._fixpoint(project, hierarchy)
        for qualname, function in sorted(project.functions.items()):
            allowed = self._policy_for(function.module, config)
            if allowed is None:
                continue
            if not self._is_entry_point(project, function):
                continue
            permitted = allowed | config.ubiquitous_exceptions
            for exc in sorted(escapes.get(qualname, frozenset())):
                if hierarchy.ancestors(exc) & permitted:
                    continue
                ctx = project.context_of(function.module)
                if ctx is None:
                    continue
                yield Violation(
                    path=ctx.path, line=function.node.lineno, column=0,
                    rule=self.id,
                    message=(
                        f"entry point {qualname!r} may let {exc} escape; "
                        f"the policy for {function.module!r} allows only "
                        f"{', '.join(sorted(allowed))} (catch it, or "
                        "widen DEFAULT_EXCEPTION_POLICY)"
                    ),
                )

    @staticmethod
    def _policy_for(
        module: str, config: AnalysisConfig
    ) -> frozenset[str] | None:
        best: str | None = None
        for prefix in config.exception_policy:
            if module == prefix or module.startswith(prefix + "."):
                if best is None or len(prefix) > len(best):
                    best = prefix
        return config.exception_policy[best] if best else None

    @staticmethod
    def _is_entry_point(project: ProjectIndex,
                        function: FunctionInfo) -> bool:
        if function.name.startswith("_"):
            return False
        if function.cls is not None:
            class_info = project.classes.get(function.cls)
            if class_info is None or class_info.name.startswith("_"):
                return False
        return True

    def _fixpoint(
        self, project: ProjectIndex, hierarchy: _Hierarchy
    ) -> dict[str, frozenset[str]]:
        escapes: dict[str, frozenset[str]] = {
            qualname: frozenset() for qualname in project.functions
        }
        changed = True
        while changed:
            changed = False
            for qualname, function in project.functions.items():
                walker = _EscapeWalker(
                    project, hierarchy, escapes, function.module
                )
                new = frozenset(
                    exc
                    for exc in walker.block(function.node.body, None)
                    if hierarchy.is_exception(exc)
                )
                if new != escapes[qualname]:
                    escapes[qualname] = new
                    changed = True
        return escapes
