"""The rule registry.

Rules are plain objects grouped by invariant family; adding one means
writing a ``check(ctx, config)`` generator and listing the instance
here.  Ids are kebab-case and double as the pragma suffix
(``# lint: allow-<id>(<reason>)``).
"""

from repro.analysis.rules.determinism import (
    UnseededRandomRule,
    WallClockRule,
)
from repro.analysis.rules.discipline import (
    PrivateMutationRule,
    RowIdMintRule,
)
from repro.analysis.rules.exceptions import (
    BroadExceptRule,
    ForeignExceptionBaseRule,
    RaiseForeignRule,
)
from repro.analysis.rules.hygiene import PrintCallRule
from repro.analysis.rules.layering import LayeringRule, ModuleLayeringRule

#: Every rule CI runs, in reporting-id order.
ALL_RULES = (
    BroadExceptRule(),
    ForeignExceptionBaseRule(),
    LayeringRule(),
    ModuleLayeringRule(),
    PrintCallRule(),
    PrivateMutationRule(),
    RaiseForeignRule(),
    RowIdMintRule(),
    UnseededRandomRule(),
    WallClockRule(),
)


def rule_ids() -> list[str]:
    """All registered rule ids (plus the framework's pragma check)."""
    return sorted(rule.id for rule in ALL_RULES) + ["bad-pragma"]
