"""The rule registry.

Rules are plain objects grouped by invariant family; adding one means
writing a ``check(ctx, config)`` generator (or ``check_project`` for
whole-program rules) and listing the instance here.  Ids are kebab-case
and double as the pragma suffix (``# lint: allow-<id>(<reason>)``).
"""

from repro.analysis.rules.crosspath import CrossPathStateRule
from repro.analysis.rules.determinism import (
    UnseededRandomRule,
    WallClockRule,
)
from repro.analysis.rules.discipline import (
    PrivateMutationRule,
    RowIdMintRule,
)
from repro.analysis.rules.excflow import ExceptionEscapeRule
from repro.analysis.rules.exceptions import (
    BroadExceptRule,
    ForeignExceptionBaseRule,
    RaiseForeignRule,
)
from repro.analysis.rules.hygiene import PrintCallRule
from repro.analysis.rules.layering import LayeringRule, ModuleLayeringRule
from repro.analysis.rules.lifecycle import ResourceLifecycleRule
from repro.analysis.rules.locks import GuardedByRule, LockOrderRule
from repro.analysis.rules.sharedstate import (
    SharedClassStateRule,
    SharedModuleStateRule,
)

#: Every per-file rule CI runs, in reporting-id order.
ALL_RULES = (
    BroadExceptRule(),
    ForeignExceptionBaseRule(),
    GuardedByRule(),
    LayeringRule(),
    ModuleLayeringRule(),
    PrintCallRule(),
    PrivateMutationRule(),
    RaiseForeignRule(),
    ResourceLifecycleRule(),
    RowIdMintRule(),
    SharedClassStateRule(),
    UnseededRandomRule(),
    WallClockRule(),
)

#: Every whole-program rule, run over the project index after all files
#: have been parsed.
ALL_PROJECT_RULES = (
    CrossPathStateRule(),
    ExceptionEscapeRule(),
    LockOrderRule(),
    SharedModuleStateRule(),
)

#: The whole-program dataflow family, selectable with
#: ``--report dataflow``: the concurrency-readiness, resource-lifecycle
#: and exception-flow checks added for the concurrent-serving audit.
DATAFLOW_RULE_IDS = frozenset(
    {
        "cross-path-state",
        "exception-flow",
        "guarded-by",
        "lock-order",
        "resource-lifecycle",
        "shared-class-state",
        "shared-state",
    }
)


def rule_ids() -> list[str]:
    """All registered rule ids (plus the framework's pragma check)."""
    ids = [rule.id for rule in ALL_RULES]
    ids.extend(rule.id for rule in ALL_PROJECT_RULES)
    return sorted(ids) + ["bad-pragma"]
