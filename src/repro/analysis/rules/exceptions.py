"""Exception policy: ``repro.errors`` is the only error vocabulary.

Callers at the public-API boundary catch :class:`repro.errors.ReproError`
and subclasses — that contract only holds if library code never throws
naked builtins across module boundaries, never defines parallel
hierarchies, and never swallows the world with ``except Exception``.

Three rules:

* ``raise-foreign`` — raising a builtin exception (``ValueError`` & co);
  ``NotImplementedError`` is exempt (abstract-method guards).
* ``foreign-exception-base`` — defining an exception class whose base is
  a builtin anywhere outside ``repro/errors.py``.
* ``broad-except`` — ``except Exception``/``except BaseException``/bare
  ``except``, unless annotated ``# lint: allow-broad-except(<reason>)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import FileContext, Violation


class RaiseForeignRule:
    id = "raise-foreign"
    summary = "raise repro.errors subclasses, not builtin exceptions"

    def check(
        self, ctx: FileContext, config: AnalysisConfig
    ) -> Iterator[Violation]:
        banned = config.builtin_exceptions - config.allowed_builtin_raises
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id in banned:
                yield ctx.violation(
                    self.id, node,
                    f"raise a repro.errors subclass, not builtin "
                    f"{exc.id}",
                )


class ForeignExceptionBaseRule:
    id = "foreign-exception-base"
    summary = "exception classes derive from the repro.errors hierarchy"

    def check(
        self, ctx: FileContext, config: AnalysisConfig
    ) -> Iterator[Violation]:
        if ctx.path_endswith(config.errors_module):
            return  # the hierarchy root is allowed to touch builtins
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for base in node.bases:
                if (
                    isinstance(base, ast.Name)
                    and base.id in config.builtin_exceptions
                ):
                    yield ctx.violation(
                        self.id, node,
                        f"exception class {node.name} derives from "
                        f"builtin {base.id}; derive from a repro.errors "
                        "class instead",
                    )


class BroadExceptRule:
    id = "broad-except"
    summary = (
        "no 'except Exception' / bare except without an allow pragma"
    )

    def check(
        self, ctx: FileContext, config: AnalysisConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            for name in self._broad_names(node.type):
                yield ctx.violation(
                    self.id, node,
                    f"overly broad handler ({name}); catch the specific "
                    "repro.errors class or annotate "
                    "'# lint: allow-broad-except(<reason>)'",
                )

    @staticmethod
    def _broad_names(handler_type: ast.expr | None) -> list[str]:
        if handler_type is None:
            return ["bare except"]
        exprs = (
            handler_type.elts
            if isinstance(handler_type, ast.Tuple)
            else [handler_type]
        )
        return [
            f"except {expr.id}"
            for expr in exprs
            if isinstance(expr, ast.Name)
            and expr.id in ("Exception", "BaseException")
        ]
