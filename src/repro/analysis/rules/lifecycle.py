"""Resource lifecycle: everything opened must be closed on every path.

``resource-lifecycle`` runs a forward may-analysis over each function's
CFG (:mod:`repro.analysis.cfg` / :mod:`repro.analysis.dataflow`).  The
state is the set of local names that may hold an unreleased resource:

* **gen** — ``x = open(...)`` / ``x = FileLogDevice(...)`` (the
  bare-name constructors in ``config.resource_calls``) and
  ``x = db.begin()`` / ``conn.cursor()`` (the attribute factories in
  ``config.resource_methods``).
* **kill by release** — ``x.close()`` / ``x.commit()`` /
  ``x.rollback()``, per the constructor's release set.
* **kill by transfer** — the name escaping the function takes ownership
  with it: ``return x``, ``yield x``, ``f(x)``, ``self.h = x``,
  ``y = x``, use as a ``with`` context.  Receiver position
  (``x.read()``) is *not* a transfer.

A name still live at the synthetic exit node — on *any* path, including
the exception edges the CFG adds inside ``try`` bodies — is a leak,
reported at the line that opened it.  A resource constructed inline in
argument position (``recover(FileLogDevice(base))``) has no name to
close and is reported immediately.  Generator functions are skipped:
they hold resources across suspension points by design and their
cleanup runs in ``close()``/GC, outside this CFG.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.cfg import CfgNode, build_cfg
from repro.analysis.config import AnalysisConfig
from repro.analysis.core import FileContext, Violation
from repro.analysis.dataflow import run_forward


def _resource_ctor(
    call: ast.Call, config: AnalysisConfig
) -> tuple[str, frozenset[str]] | None:
    """``(ctor-name, release-methods)`` when ``call`` opens a resource."""
    func = call.func
    if isinstance(func, ast.Name):
        releases = config.resource_calls.get(func.id)
        if releases is not None:
            return func.id, releases
        return None
    if isinstance(func, ast.Attribute):
        releases = config.resource_methods.get(func.attr)
        if releases is not None:
            return func.attr, releases
    return None


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function defs."""
    stack: list[ast.AST] = [scope]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield child
            stack.append(child)


def _header_parts(stmt: ast.AST) -> list[ast.AST]:
    """The expression subtrees a CFG node *itself* evaluates.

    Compound statements get their own header node in the CFG while their
    bodies become separate nodes, so the transfer function must only
    look at the header (the ``if``/``while`` test, the ``for`` iterable,
    the ``with`` items) — walking the whole subtree would apply body
    effects at the header too.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        parts: list[ast.AST] = []
        for item in stmt.items:
            parts.append(item.context_expr)
            if item.optional_vars is not None:
                parts.append(item.optional_vars)
        return parts
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []
    return [stmt]


def _header_walk(stmt: ast.AST) -> Iterator[ast.AST]:
    for part in _header_parts(stmt):
        yield part
        yield from _walk_scope(part)


def _bare_loads(stmt: ast.AST) -> set[str]:
    """Names loaded outside receiver position (``x`` but not ``x.m()``)."""
    receiver_only: set[int] = set()
    for node in _header_walk(stmt):
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            receiver_only.add(id(node.value))
    return {
        node.id
        for node in _header_walk(stmt)
        if isinstance(node, ast.Name)
        and isinstance(node.ctx, ast.Load)
        and id(node) not in receiver_only
    }


class _LiveResources:
    """The forward analysis: state = frozenset of may-open names."""

    def __init__(self, config: AnalysisConfig,
                 opens: dict[str, tuple[int, str, frozenset[str]]]):
        self.config = config
        #: name -> (line, ctor, release methods), latest open wins.
        self.opens = opens

    def initial(self) -> frozenset[str]:
        return frozenset()

    def join(self, left: frozenset[str],
             right: frozenset[str]) -> frozenset[str]:
        return left | right

    def transfer(self, node: CfgNode,
                 state: frozenset[str]) -> frozenset[str]:
        stmt = node.stmt
        out = set(state)
        # Release calls: x.close() and friends.
        for call in _header_walk(stmt):
            if not (isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and isinstance(call.func.value, ast.Name)):
                continue
            name = call.func.value.id
            if name in out and call.func.attr in self.opens[name][2]:
                out.discard(name)
        # Ownership transfers: any bare (non-receiver) load.
        out -= _bare_loads(stmt)
        # With-statement receivers: the context manager protocol closes.
        for item in getattr(stmt, "items", []):
            expr = item.context_expr
            if isinstance(expr, ast.Name):
                out.discard(expr.id)
        # Opens: x = <resource-ctor>(...).
        if isinstance(stmt, ast.Assign) and isinstance(
            stmt.value, ast.Call
        ):
            ctor = _resource_ctor(stmt.value, self.config)
            if ctor is not None:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.opens[target.id] = (
                            stmt.lineno, ctor[0], ctor[1]
                        )
                        out.add(target.id)
        return frozenset(out)


class ResourceLifecycleRule:
    id = "resource-lifecycle"
    summary = (
        "an opened resource must be released, transferred, or managed "
        "by 'with' on every path to function exit"
    )

    def check(
        self, ctx: FileContext, config: AnalysisConfig
    ) -> Iterator[Violation]:
        yield from self._check_scope(ctx, ctx.tree, config)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, node, config)

    def _check_scope(
        self, ctx: FileContext, scope: ast.AST, config: AnalysisConfig
    ) -> Iterator[Violation]:
        yield from self._check_inline(ctx, scope, config)
        if any(
            isinstance(node, (ast.Yield, ast.YieldFrom))
            for node in _walk_scope(scope)
        ):
            return
        cfg = build_cfg(scope)
        opens: dict[str, tuple[int, str, frozenset[str]]] = {}
        result = run_forward(cfg, _LiveResources(config, opens))
        live = result.at_exit(cfg)
        if not live:
            return
        for name in sorted(live):
            line, ctor, releases = opens[name]
            release_list = "/".join(sorted(releases))
            yield ctx.violation(
                self.id, line,
                f"{name!r} opened here by {ctor}(...) may reach "
                f"function exit without {release_list}; release it in "
                "a finally, use 'with', or transfer ownership",
            )

    def _check_inline(
        self, ctx: FileContext, scope: ast.AST, config: AnalysisConfig
    ) -> Iterator[Violation]:
        """Inline constructions with no binding: nothing can close them."""
        parents: dict[int, ast.AST] = {id(scope): scope}
        stack: list[ast.AST] = [scope]
        while stack:
            node = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue  # separate scope, checked on its own
                parents[id(child)] = node
                stack.append(child)
        for node in _walk_scope(scope):
            if not isinstance(node, ast.Call):
                continue
            ctor = _resource_ctor(node, config)
            if ctor is None:
                continue
            if self._owned(node, parents.get(id(node))):
                continue
            yield ctx.violation(
                self.id, node,
                f"{ctor[0]}(...) is constructed inline here with no "
                "binding to release it; assign it to a name and close "
                "it in a finally",
            )

    @staticmethod
    def _owned(call: ast.Call, parent: ast.AST | None) -> bool:
        if parent is None:
            return True  # conservatively silent without context
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            return parent.value is call
        if isinstance(parent, ast.withitem):
            return parent.context_expr is call
        if isinstance(parent, ast.Return):
            return True  # a factory: the caller takes ownership
        return False
