"""Transaction & ROWID discipline.

The paper leans on Oracle-style *physical* ROWIDs for O(1) tree hops —
which only works if a ROWID is always a real storage address.  Hence
``rowid-mint``: :class:`RowId` may be constructed from raw integers only
inside the physical layer (``ordbms/rowid.py``; the heap file carries
per-line pragmas for the two places it mints addresses).

``private-mutation`` guards the transactional counterpart: nobody pokes
another object's ``_private`` state from outside, except the WAL /
executor machinery whose whole job is rewriting heap internals during
commit and rollback.  Constructor-style factories (``store =
cls.__new__(cls); store._x = ...``) are recognised and allowed — an
object wiring up *itself* is not a boundary violation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import FileContext, Violation


class RowIdMintRule:
    id = "rowid-mint"
    summary = "RowId construction only in the physical layer"

    def check(
        self, ctx: FileContext, config: AnalysisConfig
    ) -> Iterator[Violation]:
        if any(ctx.path_endswith(path) for path in config.rowid_minters):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name == "RowId":
                yield ctx.violation(
                    self.id, node,
                    "RowId minted outside ordbms/rowid.py; take rowids "
                    "from the storage layer or RowId.decode()",
                )


def _is_private(attr: str) -> bool:
    return attr.startswith("_") and not (
        attr.startswith("__") and attr.endswith("__")
    )


class PrivateMutationRule:
    id = "private-mutation"
    summary = "no cross-object mutation of _private state"

    def check(
        self, ctx: FileContext, config: AnalysisConfig
    ) -> Iterator[Violation]:
        if any(ctx.path_endswith(path) for path in config.mutation_exempt):
            return
        class_names = {
            node.name
            for node in ctx.tree.body
            if isinstance(node, ast.ClassDef)
        }
        yield from self._scan_scope(ctx, ctx.tree.body, class_names)

    # -- scope walking -------------------------------------------------------

    _SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef)

    def _scan_scope(
        self,
        ctx: FileContext,
        body: list[ast.stmt],
        class_names: set[str],
    ) -> Iterator[Violation]:
        statements = list(self._scope_statements(body))
        selflike = self._constructed_names(statements, class_names)
        for stmt in statements:
            yield from self._check_statement(ctx, stmt, selflike)
        for stmt in statements:
            if isinstance(stmt, self._SCOPES):
                yield from self._scan_scope(ctx, stmt.body, class_names)
            elif isinstance(stmt, ast.ClassDef):
                yield from self._scan_scope(ctx, stmt.body, class_names)

    def _scope_statements(
        self, body: list[ast.stmt]
    ) -> Iterator[ast.stmt]:
        """All statements of one scope, not descending into nested defs."""
        for stmt in body:
            yield stmt
            if isinstance(stmt, (*self._SCOPES, ast.ClassDef)):
                continue
            # iter_child_nodes flattens block fields (body/orelse/
            # finalbody), so nested statements of if/for/try arrive here.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    yield from self._scope_statements([child])

    def _constructed_names(
        self, statements: list[ast.stmt], class_names: set[str]
    ) -> set[str]:
        """Local names bound to a freshly constructed instance.

        ``x = cls(...)``, ``x = cls.__new__(cls)``, or ``x = Klass(...)``
        for a class defined in this module: mutating ``x._attr`` right
        after is constructor-style wiring, not a boundary violation.
        """
        names: set[str] = set()
        for stmt in statements:
            if not isinstance(stmt, ast.Assign):
                continue
            value = stmt.value
            if not isinstance(value, ast.Call):
                continue
            func = value.func
            fresh = (
                (isinstance(func, ast.Name) and func.id == "cls")
                or (
                    isinstance(func, ast.Attribute)
                    and func.attr == "__new__"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "cls"
                )
                or (
                    isinstance(func, ast.Name) and func.id in class_names
                )
            )
            if fresh:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _check_statement(
        self, ctx: FileContext, stmt: ast.stmt, selflike: set[str]
    ) -> Iterator[Violation]:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            yield from self._check_target(ctx, target, selflike)

    def _check_target(
        self, ctx: FileContext, target: ast.expr, selflike: set[str]
    ) -> Iterator[Violation]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._check_target(ctx, element, selflike)
            return
        if isinstance(target, ast.Starred):
            yield from self._check_target(ctx, target.value, selflike)
            return
        if not isinstance(target, ast.Attribute):
            return
        if not _is_private(target.attr):
            return
        receiver = target.value
        if isinstance(receiver, ast.Name) and (
            receiver.id in ("self", "cls") or receiver.id in selflike
        ):
            return
        yield ctx.violation(
            self.id, target,
            f"mutation of private attribute "
            f"{ast.unparse(receiver)}.{target.attr} from outside the "
            "owning object; add a method to the owner or route through "
            "ordbms/transaction.py",
        )
