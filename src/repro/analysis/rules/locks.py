"""Lock annotations and lock discipline.

* ``guarded-by`` (per-file) — a ``# repro: guarded-by(...)`` annotation
  is a structured claim; a malformed one, or one without a lock name or
  rationale, silently protects nothing.  Mirroring ``bad-pragma``, this
  rule makes the broken annotation itself the finding.
* ``lock-order`` (whole-program) — two functions that nest the same two
  locks in opposite orders are a deadlock the moment they run on
  different threads.  Acquisitions are ``with <lock>:`` statements whose
  context expression names a lock (a ``threading.Lock``-kind module
  variable, or any name whose last component contains ``lock``); the
  rule demands one global acquisition order across the project.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.callgraph import LOCK, ProjectIndex
from repro.analysis.config import AnalysisConfig
from repro.analysis.core import FileContext, Violation

#: A lock name: an identifier or dotted path (``gil``, ``self._lock``).
_LOCK_NAME_RE = re.compile(r"^[A-Za-z_][\w.]*$")
#: The pseudo-locks that declare "no lock needed, and here is why".
PSEUDO_LOCKS = frozenset({"gil", "import-time"})


class GuardedByRule:
    id = "guarded-by"
    summary = (
        "a guarded-by annotation must be "
        "'# repro: guarded-by(<lock>) <rationale>'"
    )

    def check(
        self, ctx: FileContext, config: AnalysisConfig
    ) -> Iterator[Violation]:
        for line in ctx.malformed_guard_lines:
            yield ctx.violation(
                self.id, line,
                "malformed annotation; expected "
                "'# repro: guarded-by(<lock>) <rationale>'",
            )
        for annotation in ctx.guarded:
            if not annotation.lock.strip():
                yield ctx.violation(
                    self.id, annotation.line,
                    "guarded-by needs a lock name: a lock attribute, "
                    "'gil', or 'import-time'",
                )
            elif not annotation.rationale.strip():
                yield ctx.violation(
                    self.id, annotation.line,
                    f"guarded-by({annotation.lock}) needs a non-empty "
                    "rationale, like a pragma reason",
                )
            elif (
                annotation.lock not in PSEUDO_LOCKS
                and not _LOCK_NAME_RE.match(annotation.lock)
            ):
                yield ctx.violation(
                    self.id, annotation.line,
                    f"guarded-by lock {annotation.lock!r} is not a lock "
                    "name, 'gil', or 'import-time'",
                )


def _lock_name(project: ProjectIndex, module: str,
               expr: ast.expr) -> str | None:
    """The lock a ``with`` item acquires, if it looks like one."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    dotted = ".".join(reversed(parts))
    tail = parts[0]
    if "lock" in tail.lower():
        return dotted
    if len(parts) == 1:
        resolved = project.resolve(module, tail)
        if resolved is not None and resolved[0] == "def":
            variable = project.variables.get(resolved[1])
            if variable is not None and variable.kind == LOCK:
                return resolved[1]
    return None


class LockOrderRule:
    id = "lock-order"
    summary = "nested lock acquisitions must follow one global order"

    def check_project(
        self, project: ProjectIndex, config: AnalysisConfig
    ) -> Iterator[Violation]:
        #: (outer, inner) -> first acquisition site seen.
        orders: dict[tuple[str, str], tuple[str, int, str]] = {}
        for qualname, function in sorted(project.functions.items()):
            info = project.modules[function.module]
            self._walk(
                project, info.id, info.ctx.path, qualname,
                function.node.body, [], orders,
            )
        reported: set[frozenset] = set()
        for (outer, inner), (path, line, func) in sorted(orders.items()):
            if (inner, outer) not in orders:
                continue
            pair = frozenset((outer, inner))
            if pair in reported:
                continue
            reported.add(pair)
            other_path, other_line, other_func = orders[(inner, outer)]
            yield Violation(
                path=path, line=line, column=0, rule=self.id,
                message=(
                    f"{func} acquires {inner!r} while holding {outer!r}, "
                    f"but {other_func} ({other_path}:{other_line}) nests "
                    "them in the opposite order; pick one global "
                    "acquisition order"
                ),
            )

    def _walk(
        self, project: ProjectIndex, module: str, path: str, func: str,
        stmts: list[ast.stmt], held: list[str],
        orders: dict[tuple[str, str], tuple[str, int, str]],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: list[str] = []
                for item in stmt.items:
                    name = _lock_name(project, module, item.context_expr)
                    if name is None:
                        continue
                    for outer in held + acquired:
                        if outer != name:
                            orders.setdefault(
                                (outer, name), (path, stmt.lineno, func)
                            )
                    acquired.append(name)
                self._walk(
                    project, module, path, func, stmt.body,
                    held + acquired, orders,
                )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs run later, with their own stack
            else:
                for body in (
                    getattr(stmt, "body", None),
                    getattr(stmt, "orelse", None),
                    getattr(stmt, "finalbody", None),
                ):
                    if isinstance(body, list):
                        self._walk(
                            project, module, path, func, body, held, orders
                        )
                for handler in getattr(stmt, "handlers", []):
                    self._walk(
                        project, module, path, func, handler.body, held,
                        orders,
                    )
                for case in getattr(stmt, "cases", []):
                    self._walk(
                        project, module, path, func, case.body, held, orders
                    )
