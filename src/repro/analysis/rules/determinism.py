"""Determinism: library code never reads the wall clock or global RNG.

The store's ROWID text form, snapshot format, and sibling ordering are
all documented as "stable across runs for identical insert sequences" —
a property one stray ``datetime.now()`` in a default argument would
destroy.  Timestamps enter the system as *data* (the VFS logical clock,
``file_date=`` parameters); randomness goes through an explicitly
seeded ``random.Random``.  Benchmarks are exempt: timing things is
their job.

Two rules:

* ``wallclock`` — ``time.time()`` / ``monotonic`` / ``perf_counter``
  family calls, ``datetime.now/utcnow``, ``date.today``, and
  ``from time import time``-style imports.
* ``unseeded-random`` — any use of the module-level ``random.*``
  functions (the interpreter-global, implicitly seeded generator);
  only the seedable ``random.Random`` class is allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import FileContext, Violation

_DATETIME_WALLCLOCK = {
    "datetime": {"now", "utcnow"},
    "date": {"today"},
}


def _exempt(ctx: FileContext, config: AnalysisConfig) -> bool:
    from pathlib import PurePosixPath

    parts = set(PurePosixPath(ctx.path).parts)
    return bool(parts & config.determinism_exempt_parts)


def _module_aliases(tree: ast.Module, module: str) -> set[str]:
    """Local names bound to ``import <module> [as alias]``."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _member_aliases(tree: ast.Module, module: str) -> dict[str, str]:
    """``from <module> import member [as alias]`` -> {alias: member}."""
    members: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                members[alias.asname or alias.name] = alias.name
    return members


class WallClockRule:
    id = "wallclock"
    summary = "no wall-clock reads in library code"

    def check(
        self, ctx: FileContext, config: AnalysisConfig
    ) -> Iterator[Violation]:
        if _exempt(ctx, config):
            return
        time_names = _module_aliases(ctx.tree, "time")
        datetime_names = _module_aliases(ctx.tree, "datetime")
        datetime_members = _member_aliases(ctx.tree, "datetime")
        # `from time import time` smuggles the clock in as a bare name;
        # flag the import itself.
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == "time"
            ):
                for alias in node.names:
                    if alias.name in config.wallclock_time_functions:
                        yield ctx.violation(
                            self.id, node,
                            f"from time import {alias.name}: wall-clock "
                            "reads are banned in library code; take "
                            "timestamps as parameters",
                        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            # time.time(), time.monotonic(), ...
            if (
                isinstance(base, ast.Name)
                and base.id in time_names
                and func.attr in config.wallclock_time_functions
            ):
                yield ctx.violation(
                    self.id, node,
                    f"{base.id}.{func.attr}() reads the wall clock; "
                    "take timestamps as parameters",
                )
            # datetime.datetime.now(), datetime.date.today()
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id in datetime_names
                and func.attr in _DATETIME_WALLCLOCK.get(base.attr, ())
            ):
                yield ctx.violation(
                    self.id, node,
                    f"{ast.unparse(func)}() reads the wall clock; "
                    "take timestamps as parameters",
                )
            # datetime.now() / date.today() via `from datetime import ...`
            elif (
                isinstance(base, ast.Name)
                and func.attr
                in _DATETIME_WALLCLOCK.get(
                    datetime_members.get(base.id, ""), ()
                )
            ):
                yield ctx.violation(
                    self.id, node,
                    f"{base.id}.{func.attr}() reads the wall clock; "
                    "take timestamps as parameters",
                )


class UnseededRandomRule:
    id = "unseeded-random"
    summary = "randomness must flow through a seeded random.Random"

    def check(
        self, ctx: FileContext, config: AnalysisConfig
    ) -> Iterator[Violation]:
        if _exempt(ctx, config):
            return
        random_names = _module_aliases(ctx.tree, "random")
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == "random"
            ):
                for alias in node.names:
                    if alias.name not in config.seeded_random_names:
                        yield ctx.violation(
                            self.id, node,
                            f"from random import {alias.name}: use an "
                            "explicitly seeded random.Random instance",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in random_names
                    and func.attr not in config.seeded_random_names
                ):
                    yield ctx.violation(
                        self.id, node,
                        f"{func.value.id}.{func.attr}() uses the global "
                        "unseeded generator; use a seeded random.Random",
                    )
