"""Cross-path shared state: writers on both the ingest and read paths.

The roadmap's concurrent front end will run the ingest daemon and query
serving on separate workers.  ``cross-path-state`` escalates the
shared-state findings that matter most for that split: a module-level
variable whose mutation sites are reachable from **both** a daemon
ingest root and a query read root (``config.ingest_roots`` /
``config.read_roots``) is contended state the moment those paths stop
sharing one thread.  The finding names one reaching root on each side
so the inventory doubles as the contention map for the MVCC work.

A ``# repro: guarded-by(<lock>) <why>`` annotation on the binding line
acknowledges the hazard and suppresses the finding (the annotation is
still inventoried in the ``--report dataflow`` JSON).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.annotations import guard_for_line
from repro.analysis.callgraph import ProjectIndex
from repro.analysis.config import AnalysisConfig
from repro.analysis.core import Violation


class CrossPathStateRule:
    id = "cross-path-state"
    summary = (
        "state mutated on both the ingest and query paths must declare "
        "its guard"
    )

    def check_project(
        self, project: ProjectIndex, config: AnalysisConfig
    ) -> Iterator[Violation]:
        per_root = {
            root: project.reachable([root])
            for root in sorted(config.ingest_roots | config.read_roots)
        }
        mutated_from: dict[str, dict[str, str]] = {}
        for site in project.mutations:
            if site.function is None:
                continue  # import-time population is single-threaded
            for root, reach in per_root.items():
                if site.function in reach:
                    mutated_from.setdefault(site.var, {})[root] = (
                        f"{site.path}:{site.line}"
                    )
        for qualname in sorted(mutated_from):
            roots = mutated_from[qualname]
            ingest = sorted(set(roots) & config.ingest_roots)
            read = sorted(set(roots) & config.read_roots)
            if not ingest or not read:
                continue
            variable = project.variables[qualname]
            ctx = project.context_of(variable.module)
            if ctx is None:
                continue
            if guard_for_line(ctx.guarded, variable.line) is not None:
                continue
            yield Violation(
                path=ctx.path, line=variable.line, column=0,
                rule=self.id,
                message=(
                    f"{qualname!r} is mutated on the ingest path "
                    f"(from {ingest[0]}, at {roots[ingest[0]]}) and on "
                    f"the query read path (from {read[0]}, at "
                    f"{roots[read[0]]}); this is contended state for "
                    "the concurrent front end — guard it and annotate "
                    "with '# repro: guarded-by(<lock>) <why>'"
                ),
            )
