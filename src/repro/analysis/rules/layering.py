"""Layering: the import DAG between ``repro.*`` units.

The paper's middleware stays lean because each tier only ever talks
downward — converters and the SGML parser feed the store, the store sits
on the ORDBMS substrate, and nothing below the application tier knows
the federation layer exists.  This rule pins that DAG: every
``import repro.X`` in unit ``U`` must satisfy ``X in layers[U]`` (self-
and ``errors``-imports are always allowed; ``apps`` and the package
facade are unrestricted).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import FileContext, Violation, module_id_of


class LayeringRule:
    id = "layering"
    summary = "imports must follow the repro.* layer DAG"

    def check(
        self, ctx: FileContext, config: AnalysisConfig
    ) -> Iterator[Violation]:
        unit = ctx.unit
        if unit is None or unit in config.unrestricted_units:
            return
        known = (
            set(config.layers)
            | config.unrestricted_units
            | config.universal_units
        )
        if unit not in known:
            yield ctx.violation(
                self.id, 1,
                f"unit {unit!r} is not in the layer map; add it to "
                "repro.analysis.config.DEFAULT_LAYERS",
            )
            return
        allowed = (
            config.layers.get(unit, frozenset())
            | config.universal_units
            | {unit}
        )
        for node, target in self._repro_imports(ctx.tree, known):
            if target not in allowed:
                yield ctx.violation(
                    self.id, node,
                    f"{unit} may not import repro.{target} "
                    f"(allowed: {', '.join(sorted(allowed))})",
                )

    def _repro_imports(
        self, tree: ast.Module, known_units: set[str]
    ) -> Iterator[tuple[ast.stmt, str]]:
        """Yield ``(node, unit)`` for every import of a ``repro`` unit.

        ``from repro import X`` resolves to the unit ``X`` when X is a
        known unit, else to the facade pseudo-unit ``__root__`` (which
        only unrestricted units may import).
        """
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = _unit_from_module(alias.name)
                    if target is not None:
                        yield node, target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    continue  # relative: stays inside the current unit
                target = _unit_from_module(node.module or "")
                if target == "__root__":
                    for alias in node.names:
                        yield node, (
                            alias.name
                            if alias.name in known_units
                            else "__root__"
                        )
                elif target is not None:
                    yield node, target


class ModuleLayeringRule:
    """Module-granular contracts inside units (``store.accessor`` etc.).

    The unit DAG says *store may import ordbms*; for the read-path hot
    spots that is too coarse — the batched accessor must not reach into
    composition, and the plan algebra must not import the engine that
    compiles into it.  :data:`~repro.analysis.config.DEFAULT_MODULE_LAYERS`
    names those modules and their exact grants; this rule enforces them.
    """

    id = "module-layering"
    summary = "hot-path modules must follow their module-granular contract"

    def check(
        self, ctx: FileContext, config: AnalysisConfig
    ) -> Iterator[Violation]:
        module_id = module_id_of(ctx.path)
        if module_id is None:
            return
        grants = config.module_layers.get(module_id)
        if grants is None:
            return
        allowed = set(grants) | config.universal_units | {module_id}
        for node, target in self._repro_modules(ctx.tree, allowed):
            if target in allowed:
                continue
            if target.split(".")[0] in allowed:
                continue  # whole-unit grant covers every module in it
            yield ctx.violation(
                self.id, node,
                f"{module_id} may not import repro.{target} "
                f"(granted: {', '.join(sorted(allowed))})",
            )

    @staticmethod
    def _repro_modules(
        tree: ast.Module, allowed: set[str]
    ) -> Iterator[tuple[ast.stmt, str]]:
        """Yield ``(node, dotted-target)`` for every ``repro`` import.

        ``from repro.store import schema`` is credited as the submodule
        ``store.schema`` when that exact grant exists, else as the unit
        ``store`` — an ungranted facade import stays a violation even
        when individual submodules are granted.  ``from repro import X``
        resolves to the unit ``X`` when that unit is granted (mirroring
        the unit-level rule, so ``from repro import obs`` works in
        module-contracted files too), else to ``__root__``.
        """
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = _dotted_target(alias.name)
                    if target is not None:
                        yield node, target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    continue  # relative: stays inside the current unit
                base = _dotted_target(node.module or "")
                if base is None:
                    continue
                if base == "__root__":
                    for alias in node.names:
                        yield node, (
                            alias.name if alias.name in allowed else base
                        )
                    continue
                for alias in node.names:
                    refined = f"{base}.{alias.name}"
                    yield node, (refined if refined in allowed else base)


def _unit_from_module(module: str) -> str | None:
    """Map a dotted module path to a repro unit name (None if foreign)."""
    if module == "repro":
        return "__root__"
    if not module.startswith("repro."):
        return None
    return module.split(".")[1]


def _dotted_target(module: str) -> str | None:
    """``repro.store.schema`` -> ``store.schema`` (None if foreign)."""
    if module == "repro":
        return "__root__"
    if not module.startswith("repro."):
        return None
    return module[len("repro."):]
