"""Hygiene: library code never writes to stdout.

``print`` in a library corrupts whatever stream the embedding process
owns (the WebDAV server speaks HTTP on it).  Results are *returned*;
diagnostics go through exceptions.  The analyzer's own CLI writes via
``sys.stdout.write`` for exactly this reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import FileContext, Violation


class PrintCallRule:
    id = "print-call"
    summary = "no print() in library code"

    def check(
        self, ctx: FileContext, config: AnalysisConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield ctx.violation(
                    self.id, node,
                    "print() in library code; return the value or raise",
                )
