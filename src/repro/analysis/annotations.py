"""Synchronization annotations: ``# repro: guarded-by(<lock>) <rationale>``.

The concurrency-readiness rules treat every mutable module-level or
class-level binding as a hazard for the upcoming multi-worker front end
— *unless* the code declares who guards it.  The declaration is a
structured comment on the binding's line (or the line directly above)::

    _REGISTRY = MetricsRegistry()  # repro: guarded-by(gil) swapped only by test harnesses before traffic

The ``<lock>`` names the synchronization device.  Real lock objects
(``threading.Lock`` attributes) are named by their attribute; two
conventional pseudo-locks are recognised for state that needs no lock:

* ``gil`` — single opcode-level reads/writes the GIL already serializes;
* ``import-time`` — populated during import, read-only afterwards.

The rationale is mandatory, exactly like lint-pragma reasons: an
annotation without one does not suppress and is itself reported
(rule id ``guarded-by``).  The full inventory of annotated state is the
audited shared-state list the MVCC work starts from — see the
``--report dataflow`` JSON output.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

#: A well-formed annotation: guarded-by(<lock>) <non-empty rationale>.
_GUARDED_RE = re.compile(
    r"#\s*repro:\s*guarded-by\(([^()]*)\)\s*(.*)", re.DOTALL
)
#: Anything that tries to be one, for malformed-annotation detection.
_ATTEMPT_RE = re.compile(r"#\s*repro:\s*guarded-by")


@dataclass(frozen=True)
class GuardedBy:
    """One guarded-by declaration."""

    lock: str
    rationale: str
    line: int

    @property
    def ok(self) -> bool:
        return bool(self.lock.strip()) and bool(self.rationale.strip())


def extract_guarded(source: str) -> tuple[list[GuardedBy], list[int]]:
    """Parse guarded-by annotations out of ``source``.

    Returns ``(annotations, malformed_lines)``.  Comments are found with
    :mod:`tokenize`, so annotation-looking text inside string literals is
    ignored (this module documents the syntax without declaring it).
    """
    annotations: list[GuardedBy] = []
    malformed: list[int] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return [], []
    for line, text in comments:
        match = _GUARDED_RE.search(text)
        if match:
            annotations.append(
                GuardedBy(
                    lock=match.group(1).strip(),
                    rationale=match.group(2).strip(),
                    line=line,
                )
            )
        elif _ATTEMPT_RE.search(text):
            malformed.append(line)
    return annotations, malformed


def guard_for_line(
    annotations: list[GuardedBy], line: int
) -> GuardedBy | None:
    """The declaration covering ``line``: same line, or the line above."""
    for annotation in annotations:
        if annotation.ok and annotation.line in (line, line - 1):
            return annotation
    return None
