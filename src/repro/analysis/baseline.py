"""The checked-in violation baseline.

Transitional debt — violations that predate a rule and are scheduled to
be burned down rather than pragma-blessed forever — lives in a JSON file
at the repository root (``analysis-baseline.json``)::

    {
      "version": 1,
      "entries": [
        {
          "rule": "layering",
          "path": "src/repro/costmodel/accounting.py",
          "content": "from repro.federation.databank import DatabankRegistry",
          "reason": "why this is tolerated, and the exit plan"
        }
      ]
    }

Matching is *content*-based: an entry suppresses a violation of ``rule``
in ``path`` whose source line (stripped) equals ``content``.  Line
numbers are deliberately absent so unrelated edits above the site do not
rot the baseline; moving or rewriting the offending line invalidates the
entry, which then surfaces as *stale* and fails the meta-test.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.core import Violation


@dataclass(frozen=True)
class BaselineEntry:
    """One tolerated violation."""

    rule: str
    path: str
    content: str
    reason: str

    def matches(self, violation: "Violation", line_content: str) -> bool:
        if violation.rule != self.rule:
            return False
        if line_content.strip() != self.content.strip():
            return False
        v_path = violation.path
        return v_path == self.path or v_path.endswith("/" + self.path)


@dataclass
class Baseline:
    """The full suppression set, with use-tracking for staleness."""

    entries: list[BaselineEntry] = field(default_factory=list)
    _used: set[int] = field(default_factory=set, repr=False)

    def suppresses(self, violation: "Violation", line_content: str) -> bool:
        """True (and mark the entry used) if any entry matches."""
        for index, entry in enumerate(self.entries):
            if entry.matches(violation, line_content):
                self._used.add(index)
                return True
        return False

    def stale_entries(self) -> list[BaselineEntry]:
        """Entries that suppressed nothing in the run just finished."""
        return [
            entry
            for index, entry in enumerate(self.entries)
            if index not in self._used
        ]

    def __len__(self) -> int:
        return len(self.entries)


def load_baseline(path: str | Path) -> Baseline:
    """Load and validate a baseline file.

    Raises
    ------
    AnalysisError
        If the file is unreadable, not JSON, or entries are missing a
        required field (including an empty ``reason`` — baselined debt
        must say why it is tolerated).
    """
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except OSError as error:
        raise AnalysisError(f"cannot read baseline {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise AnalysisError(
            f"baseline {path} is not valid JSON: {error}"
        ) from error
    entries = []
    for position, item in enumerate(raw.get("entries", [])):
        for key in ("rule", "path", "content", "reason"):
            if not str(item.get(key, "")).strip():
                raise AnalysisError(
                    f"baseline {path} entry {position} is missing {key!r}"
                )
        entries.append(
            BaselineEntry(
                rule=item["rule"],
                path=item["path"],
                content=item["content"],
                reason=item["reason"],
            )
        )
    return Baseline(entries=entries)


def dump_baseline(
    violations: list["Violation"],
    line_contents: dict[tuple[str, int], str],
    path: str | Path,
) -> None:
    """Write ``violations`` out as a fresh baseline (``--write-baseline``).

    Each generated entry carries a placeholder reason that the loader
    accepts but a human should replace before committing.
    """
    entries = [
        {
            "rule": violation.rule,
            "path": violation.path,
            "content": line_contents.get(
                (violation.path, violation.line), ""
            ).strip(),
            "reason": "TODO: justify or fix",
        }
        for violation in violations
    ]
    payload = {"version": 1, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
