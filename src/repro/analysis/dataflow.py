"""A generic forward-dataflow engine over :mod:`repro.analysis.cfg` graphs.

An analysis supplies three things — an entry state, a join, and a
per-node transfer function — and :func:`run_forward` iterates a worklist
to the least fixpoint.  States are ordinary Python values compared with
``==``; ``None`` is reserved as the engine's "unreached" bottom, so an
analysis must never produce it.

The engine is deliberately small: the rules built on it (resource
lifecycle today, the MVCC shared-state audit tomorrow) need union-style
may-analyses over sets, and a worklist over statement-grained CFGs is
plenty for a codebase this size.  Termination is the analysis's duty
(monotone transfer over a finite lattice); a generous iteration cap
turns an accidental non-monotone analysis into a diagnosable error
instead of a hang.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Protocol

from repro.analysis.cfg import Cfg, CfgNode
from repro.errors import AnalysisError


class ForwardAnalysis(Protocol):
    """The contract a forward analysis implements."""

    def initial(self) -> Any:
        """State on entry to the graph."""
        ...

    def join(self, left: Any, right: Any) -> Any:
        """Merge two states at a control-flow join."""
        ...

    def transfer(self, node: CfgNode, state: Any) -> Any:
        """State after executing ``node`` in ``state``."""
        ...


@dataclass
class DataflowResult:
    """Fixpoint states per node index (``None`` = node unreachable)."""

    before: list[Any]
    after: list[Any]

    def at_exit(self, cfg: Cfg) -> Any:
        """The state flowing into the synthetic exit node."""
        return self.before[cfg.exit]


def run_forward(cfg: Cfg, analysis: ForwardAnalysis) -> DataflowResult:
    """Iterate ``analysis`` over ``cfg`` to its least fixpoint."""
    count = len(cfg.nodes)
    before: list[Any] = [None] * count
    after: list[Any] = [None] * count
    preds = cfg.preds()

    before[cfg.entry] = analysis.initial()
    after[cfg.entry] = before[cfg.entry]

    worklist: deque[int] = deque(
        index for index in range(count) if index != cfg.entry
    )
    queued = set(worklist)
    # Every node can be revisited once per lattice step; anything past
    # |nodes|^2 * 64 means the transfer is not monotone.
    budget = max(1024, count * count * 64)
    steps = 0
    while worklist:
        steps += 1
        if steps > budget:
            raise AnalysisError(
                "dataflow did not converge; the analysis transfer "
                "function is not monotone"
            )
        index = worklist.popleft()
        queued.discard(index)

        merged: Any = None
        for pred in preds[index]:
            if after[pred] is None:
                continue
            merged = (
                after[pred]
                if merged is None
                else analysis.join(merged, after[pred])
            )
        if merged is None:
            continue  # unreachable so far
        node = cfg.nodes[index]
        new_after = (
            merged if node.stmt is None else analysis.transfer(node, merged)
        )
        if merged == before[index] and new_after == after[index]:
            continue
        before[index] = merged
        after[index] = new_after
        for succ in cfg.succs[index]:
            if succ not in queued:
                worklist.append(succ)
                queued.add(succ)
    return DataflowResult(before=before, after=after)
