"""Inline suppression pragmas.

A deliberate, permanent exception to a rule is annotated on the
offending line::

    except Exception:  # lint: allow-broad-except(federated rows lack local entries)

The general form is ``# lint: allow-<rule-id>(<reason>)``.  The reason
is mandatory — an empty or missing reason does *not* suppress and is
itself reported (rule id ``bad-pragma``), so suppressions stay
self-documenting.  A pragma suppresses violations of that rule reported
on its own line only.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

#: A well-formed pragma: allow-<rule>(<non-empty reason>).
_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow-([a-z0-9-]+)\s*\(([^()]*)\)")
#: Anything that *tries* to be a pragma, for malformed-pragma detection.
_ATTEMPT_RE = re.compile(r"#\s*lint:\s*allow-")


@dataclass(frozen=True)
class Pragma:
    """One ``# lint: allow-<rule>(<reason>)`` annotation."""

    rule: str
    reason: str
    line: int

    @property
    def ok(self) -> bool:
        return bool(self.reason.strip())


def extract_pragmas(source: str) -> tuple[list[Pragma], list[int]]:
    """Parse pragmas out of ``source``.

    Returns ``(pragmas, malformed_lines)`` where ``malformed_lines``
    lists lines carrying a ``lint: allow-`` comment that did not parse
    as a complete pragma (unclosed parenthesis, missing reason form).
    Comments are found with :mod:`tokenize`, so pragma-looking text in
    string literals is ignored.
    """
    pragmas: list[Pragma] = []
    malformed: list[int] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return [], []
    for line, text in comments:
        matches = list(_PRAGMA_RE.finditer(text))
        for match in matches:
            pragmas.append(
                Pragma(rule=match.group(1), reason=match.group(2), line=line)
            )
        if _ATTEMPT_RE.search(text) and not matches:
            malformed.append(line)
    return pragmas, malformed
