"""Anomaly Tracking (Table 1).

"An application that allows integrated querying of two NASA (web
accessible) data sources that are essentially anomaly tracking databases.
The application facilitates more sophisticated querying than provided by
either original source and also facilitates simultaneous querying of both
sources."

Assembly is one databank declaring the two trackers.  The vocabulary
mismatch between them (``Description``/``Severity`` versus
``Summary``/``Criticality``) is spanned the NETMARK way — context
alternatives in the query, no virtual views (§4's discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.federation.sources import Record, StructuredSource
from repro.netmark import Netmark
from repro.query.results import ResultSet, SectionMatch

#: The two trackers' names for the same concepts.
DESCRIPTION_FIELDS = ("Description", "Summary")
SEVERITY_FIELDS = ("Severity", "Criticality")

DATABANK = "anomalies"


@dataclass(frozen=True)
class AnomalyHit:
    """One anomaly surfaced by an integrated query."""

    tracker: str
    record_key: str
    description: str


class AnomalyTrackingApp:
    """Simultaneous querying over two anomaly trackers."""

    def __init__(
        self,
        tracker_a: list[Record],
        tracker_b: list[Record],
        netmark: Netmark | None = None,
    ) -> None:
        self.netmark = netmark or Netmark("anomaly-tracking")
        self.source_a = StructuredSource("tracker-a", tracker_a)
        self.source_b = StructuredSource("tracker-b", tracker_b)
        self.netmark.create_databank(DATABANK, "two anomaly trackers")
        self.netmark.add_source(DATABANK, self.source_a)
        self.netmark.add_source(DATABANK, self.source_b)

    def search_descriptions(self, keyword: str) -> list[AnomalyHit]:
        """Find anomalies whose description/summary mentions ``keyword``.

        This is the "more sophisticated querying than provided by either
        original source": one request, both vocabularies, both trackers.
        """
        query = (
            f"Context={'|'.join(DESCRIPTION_FIELDS)}"
            f"&Content={keyword}&databank={DATABANK}"
        )
        return [self._to_hit(match) for match in self.netmark.federated_search(query)]

    def all_with_severity(self, level: str) -> list[AnomalyHit]:
        """Anomalies at a given severity/criticality across both trackers."""
        query = (
            f"Context={'|'.join(SEVERITY_FIELDS)}"
            f"&Content={level}&databank={DATABANK}"
        )
        hits = []
        for match in self.netmark.federated_search(query):
            # The matched section is the severity field; surface the
            # record's description alongside for a useful answer.
            hits.append(
                AnomalyHit(
                    tracker=match.source,
                    record_key=match.file_name,
                    description=self._description_of(match),
                )
            )
        return hits

    def raw_search(self, query: str) -> ResultSet:
        """Escape hatch: any XDB query against the databank."""
        return self.netmark.federated_search(query, DATABANK)

    # -- internals ---------------------------------------------------------

    def _to_hit(self, match: SectionMatch) -> AnomalyHit:
        return AnomalyHit(
            tracker=match.source,
            record_key=match.file_name,
            description=match.content,
        )

    def _description_of(self, match: SectionMatch) -> str:
        source = self.source_a if match.source == "tracker-a" else self.source_b
        for record in source._records:
            if record.key == match.file_name:
                for name, value in record.fields:
                    if name in DESCRIPTION_FIELDS:
                        return value
        return match.content
