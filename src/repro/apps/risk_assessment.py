"""Risk Assessment (Table 1, ~1 day).

An application that surfaces risk-relevant material across a heterogeneous
document collection: it combines context search (explicit "Risk
Assessment" sections) with content search (risk vocabulary anywhere) and
ranks documents by how much risk-related material they contain.

Nothing here required new infrastructure — it is a thin ranking layer
over the same XDB queries, which is why the paper reports a one-day
assembly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netmark import Netmark
from repro.workloads.corpus import GeneratedFile

#: Content vocabulary treated as risk signals.
RISK_TERMS: tuple[str, ...] = ("risk", "anomaly", "safety", "margin")

#: Section headings that are explicit risk material.
RISK_CONTEXTS: tuple[str, ...] = ("Risk Assessment", "Lessons Learned")


@dataclass(frozen=True)
class RiskFinding:
    """One risk-relevant section."""

    file_name: str
    context: str
    excerpt: str
    explicit: bool  # from a risk section (True) or a content hit (False)


@dataclass
class RiskReport:
    findings: list[RiskFinding] = field(default_factory=list)

    def score_by_document(self) -> dict[str, int]:
        """Risk score: explicit sections weigh 3, content hits weigh 1."""
        scores: dict[str, int] = {}
        for finding in self.findings:
            weight = 3 if finding.explicit else 1
            scores[finding.file_name] = scores.get(finding.file_name, 0) + weight
        return dict(
            sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        )

    def top_documents(self, count: int = 5) -> list[str]:
        return list(self.score_by_document())[:count]


class RiskAssessmentApp:
    """Cross-collection risk surfacing."""

    def __init__(self, netmark: Netmark | None = None) -> None:
        self.netmark = netmark or Netmark("risk-assessment")

    def load_documents(self, files: list[GeneratedFile]) -> int:
        records = self.netmark.ingest_many(
            [(file.name, file.text) for file in files]
        )
        return sum(1 for record in records if record.ok)

    def build_report(self) -> RiskReport:
        report = RiskReport()
        seen: set[tuple[str, str]] = set()
        explicit_query = "Context=" + "|".join(RISK_CONTEXTS)
        for match in self.netmark.search(explicit_query):
            key = (match.file_name, match.context)
            seen.add(key)
            report.findings.append(
                RiskFinding(
                    file_name=match.file_name,
                    context=match.context,
                    excerpt=match.content[:160],
                    explicit=True,
                )
            )
        content_query = "Content=any:" + " ".join(RISK_TERMS)
        for match in self.netmark.search(content_query):
            key = (match.file_name, match.context)
            if key in seen:
                continue
            seen.add(key)
            report.findings.append(
                RiskFinding(
                    file_name=match.file_name,
                    context=match.context,
                    excerpt=match.content[:160],
                    explicit=False,
                )
            )
        return report
