"""Integrated Budget Performance Document (Table 1, ~1 week).

"The Integrated Budget Performance Document (IBPD) is an integrated
budget document which unifies previously disconnected budget documents.
While manual assembly of the IBPD can take several weeks, NETMARK was
used to extract and integrate information from thousands of NASA task
plans containing the required budget information and compose an
integrated IBPD document."

The pipeline here is the full Fig 7 flow: ingest task plans → XDB context
queries pull the Budget and Center sections → XSLT composes the
integrated document → the app additionally aggregates dollar totals per
center and fiscal year.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.netmark import Netmark
from repro.sgml.dom import Document
from repro.workloads.corpus import GeneratedFile
from repro.xslt.processor import transform
from repro.xslt.stylesheet import compile_stylesheet

_CENTER_RE = re.compile(r"executed at NASA ([A-Za-z ]+?)\.")
_FY_AMOUNT_RE = re.compile(r"(FY\d{2}) funding of \$([\d,]+)")

#: The composition stylesheet — one chapter per task plan's Budget section.
IBPD_STYLESHEET = """<xsl:stylesheet>
  <xsl:template match="/">
    <ibpd title="Integrated Budget Performance Document">
      <xsl:apply-templates select="/results/result">
        <xsl:sort select="@doc"/>
      </xsl:apply-templates>
      <coverage><xsl:value-of select="count(/results/result)"/></coverage>
    </ibpd>
  </xsl:template>
  <xsl:template match="result">
    <chapter plan="{@doc}">
      <xsl:value-of select="normalize-space(content)"/>
    </chapter>
  </xsl:template>
</xsl:stylesheet>"""


@dataclass
class BudgetLine:
    """One task plan's extracted budget facts."""

    file_name: str
    center: str
    amounts: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.amounts.values())


@dataclass
class IbpdResult:
    """Everything the IBPD run produced."""

    document: Document  # the composed integrated document
    lines: list[BudgetLine]

    def total_by_center(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for line in self.lines:
            totals[line.center] = totals.get(line.center, 0) + line.total
        return dict(sorted(totals.items()))

    def total_by_year(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for line in self.lines:
            for year, amount in line.amounts.items():
                totals[year] = totals.get(year, 0) + amount
        return dict(sorted(totals.items()))

    @property
    def grand_total(self) -> int:
        return sum(line.total for line in self.lines)

    @property
    def chapter_count(self) -> int:
        return len(self.document.find_all("chapter"))


class IbpdAssembler:
    """Assembles the IBPD from ingested task plans."""

    def __init__(self, netmark: Netmark | None = None) -> None:
        self.netmark = netmark or Netmark("ibpd")
        self.netmark.install_stylesheet("ibpd.xsl", IBPD_STYLESHEET)

    def load_task_plans(self, files: list[GeneratedFile]) -> int:
        records = self.netmark.ingest_many(
            [(file.name, file.text) for file in files]
        )
        return sum(1 for record in records if record.ok)

    def assemble(self) -> IbpdResult:
        """Extract, integrate and compose the IBPD."""
        budget_results = self.netmark.search("Context=Budget")
        center_results = {
            match.file_name: _search(_CENTER_RE, match.content)
            for match in self.netmark.search("Context=Center")
        }
        lines: list[BudgetLine] = []
        for match in budget_results:
            amounts = {
                year: int(amount.replace(",", ""))
                for year, amount in _FY_AMOUNT_RE.findall(match.content)
            }
            if not amounts:
                continue
            lines.append(
                BudgetLine(
                    file_name=match.file_name,
                    center=center_results.get(match.file_name, "Unknown"),
                    amounts=amounts,
                )
            )
        composed = transform(
            compile_stylesheet(IBPD_STYLESHEET), budget_results.to_xml()
        )
        return IbpdResult(document=composed, lines=lines)


def _search(pattern: re.Pattern[str], text: str) -> str:
    match = pattern.search(text)
    return match.group(1).strip() if match else ""
