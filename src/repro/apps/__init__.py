"""The NASA integration applications of Table 1."""

from repro.apps.anomaly_tracking import AnomalyHit, AnomalyTrackingApp
from repro.apps.ibpd import BudgetLine, IbpdAssembler, IbpdResult, IBPD_STYLESHEET
from repro.apps.proposal_financial import (
    ProposalFinancialManagement,
    ProposalRecord,
    ProposalReport,
)
from repro.apps.risk_assessment import (
    RISK_CONTEXTS,
    RISK_TERMS,
    RiskAssessmentApp,
    RiskFinding,
    RiskReport,
)

__all__ = [
    "AnomalyHit",
    "AnomalyTrackingApp",
    "BudgetLine",
    "IBPD_STYLESHEET",
    "IbpdAssembler",
    "IbpdResult",
    "ProposalFinancialManagement",
    "ProposalRecord",
    "ProposalReport",
    "RISK_CONTEXTS",
    "RISK_TERMS",
    "RiskAssessmentApp",
    "RiskFinding",
    "RiskReport",
]
