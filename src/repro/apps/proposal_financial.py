"""Proposal Financial Management (Table 1, assembled in ~1 hour).

An information system over submitted proposals (Word/PDF inputs) that
answers "aggregated and statistical information about the proposals such
as proposal numbers by NASA division type, dollar amounts requested etc."

Assembly is pure NETMARK usage — drop the documents, then ask context
queries; the only application code is two regexes that read facts out of
the returned sections.  That is why the paper could stand this up in an
hour.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.netmark import Netmark
from repro.workloads.corpus import GeneratedFile

_DIVISION_RE = re.compile(r"submitted by the ([A-Za-z ]+?) division")
_PI_RE = re.compile(r"principal investigator is ([A-Za-z .']+?)\.")
_AMOUNT_RE = re.compile(r"requests a total of \$([\d,]+)")
_PROPOSAL_ID_RE = re.compile(r"Proposal ([A-Z]+-\d+-\d+)")


@dataclass(frozen=True)
class ProposalRecord:
    """Facts extracted from one stored proposal."""

    file_name: str
    proposal_id: str
    division: str
    principal_investigator: str
    amount: int


@dataclass
class ProposalReport:
    """The application's aggregate answers."""

    records: list[ProposalRecord] = field(default_factory=list)

    @property
    def total_requested(self) -> int:
        return sum(record.amount for record in self.records)

    def count_by_division(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.division] = counts.get(record.division, 0) + 1
        return dict(sorted(counts.items()))

    def amount_by_division(self) -> dict[str, int]:
        amounts: dict[str, int] = {}
        for record in self.records:
            amounts[record.division] = (
                amounts.get(record.division, 0) + record.amount
            )
        return dict(sorted(amounts.items()))

    def over_threshold(self, threshold: int) -> list[ProposalRecord]:
        return sorted(
            (record for record in self.records if record.amount > threshold),
            key=lambda record: record.amount,
            reverse=True,
        )


class ProposalFinancialManagement:
    """The assembled application."""

    def __init__(self, netmark: Netmark | None = None) -> None:
        self.netmark = netmark or Netmark("proposal-financial")

    def load_proposals(self, files: list[GeneratedFile]) -> int:
        """Ingest the proposal documents through the daemon path."""
        records = self.netmark.ingest_many(
            [(file.name, file.text) for file in files]
        )
        return sum(1 for record in records if record.ok)

    def build_report(self) -> ProposalReport:
        """Extract facts via context queries and aggregate them."""
        admin_sections = {
            match.file_name: match.content
            for match in self.netmark.search("Context=Administrative Summary")
        }
        budget_sections = {
            match.file_name: match.content
            for match in self.netmark.search("Context=Budget")
        }
        report = ProposalReport()
        for file_name, admin_text in sorted(admin_sections.items()):
            budget_text = budget_sections.get(file_name, "")
            division = _search(_DIVISION_RE, admin_text)
            investigator = _search(_PI_RE, admin_text)
            proposal_id = _search(_PROPOSAL_ID_RE, admin_text)
            amount_text = _search(_AMOUNT_RE, budget_text)
            if not (division and amount_text):
                continue
            report.records.append(
                ProposalRecord(
                    file_name=file_name,
                    proposal_id=proposal_id or file_name,
                    division=division,
                    principal_investigator=investigator or "unknown",
                    amount=int(amount_text.replace(",", "")),
                )
            )
        return report


def _search(pattern: re.Pattern[str], text: str) -> str:
    match = pattern.search(text)
    return match.group(1).strip() if match else ""
